"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` works in offline environments where the
``wheel`` package (required by PEP 660 editable installs) is unavailable.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
