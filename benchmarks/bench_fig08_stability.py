"""Benchmark: paper Fig. 8 — stability sweeps across all six networks."""

import numpy as np

from conftest import emit

from repro.experiments import fig8_stability


def test_fig08_stability(benchmark, world):
    result = benchmark.pedantic(fig8_stability.run,
                                kwargs={"world": world}, rounds=1,
                                iterations=1)
    emit(fig8_stability.format_result(result))
    # Paper shape: "all backbones are very stable, always exceeding
    # .84" — we demand a high floor and NC comparable to DF.
    assert result.minimum_stability() > 0.6
    for name, by_method in result.sweeps.items():
        nc = np.nanmean(by_method["NC"].values)
        df = np.nanmean(by_method["DF"].values)
        assert nc > df - 0.05, (name, nc, df)
