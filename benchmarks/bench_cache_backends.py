"""Tier-2 perf smoke: the pluggable store backends on real workloads.

Scores the Fig. 7 trade network with every budgeted paper method
through each backend (directory, SQLite, in-memory KV) and asserts the
backend contract at paper scale:

* a warm store serves the whole scoring pass at least 5x faster than
  recomputing it from scratch, for *every* backend — persistence
  layers must never cost more than rescoring;
* every backend round-trips the scored tables bit-identically;
* ``migrate`` between the directory and SQLite layouts preserves
  payload bytes exactly, so a migrated cache keeps serving hits;
* GC respects its byte bound while keeping the most recently used
  entries servable.
"""

import numpy as np

from conftest import emit

from repro.backbones.registry import paper_methods
from repro.pipeline import ScoreStore
from repro.pipeline.backends import (DirectoryBackend, KVBackend,
                                     SQLiteBackend)
from repro.pipeline.executor import score_with_store
from repro.util.tables import format_table
from repro.util.timing import time_call

#: Required recompute/warm speedup per backend on the scoring workload.
MIN_WARM_SPEEDUP = 5.0


def _score_all(methods, table, store):
    return [score_with_store(method, table, store)
            for method in methods]


def _backends(tmp_path):
    return (
        ("directory", lambda: DirectoryBackend(tmp_path / "dir-cache")),
        ("sqlite", lambda: SQLiteBackend(tmp_path / "cache.sqlite")),
        ("kv", lambda: KVBackend()),
    )


def test_backends_speedup_and_identity(benchmark, world, tmp_path):
    table = world.network("trade", 0)
    methods = [method for method in paper_methods()
               if not method.parameter_free]

    def run():
        baseline_s, baseline = time_call(_score_all, methods, table, None)
        rows = []
        for name, factory in _backends(tmp_path):
            backend = factory()
            cold_store = ScoreStore(backend=backend)
            cold_s, cold = time_call(_score_all, methods, table,
                                     cold_store)
            # A fresh store over the same backend: the persistent tier
            # alone must carry the hits (no warm memory tier).
            warm_store = ScoreStore(backend=factory()
                                    if name != "kv" else backend)
            warm_s, warm = time_call(_score_all, methods, table,
                                     warm_store)
            rows.append((name, cold_s, warm_s, cold, warm,
                         warm_store.stats))
        return baseline_s, baseline, rows

    baseline_s, baseline, rows = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    emit(format_table(
        ("backend", "cold s", "warm s", "vs recompute"),
        [(name, f"{cold_s:.3f}", f"{warm_s:.3f}",
          f"{baseline_s / warm_s:.1f}x")
         for name, cold_s, warm_s, _, _, _ in rows],
        title=f"scoring {len(methods)} methods on the Fig. 7 trade "
              f"network (serial baseline {baseline_s:.3f}s)"))

    for name, cold_s, warm_s, cold, warm, stats in rows:
        assert stats.disk_hits == len(methods), \
            f"{name}: warm pass not served from the persistent tier"
        for computed, cached_cold, cached_warm in zip(baseline, cold,
                                                      warm):
            assert np.array_equal(computed.score, cached_cold.score), \
                f"{name}: cold pass perturbed scores"
            assert np.array_equal(computed.score, cached_warm.score), \
                f"{name}: warm pass perturbed scores"
        speedup = baseline_s / warm_s
        assert speedup >= MIN_WARM_SPEEDUP, \
            f"{name}: warm only {speedup:.1f}x faster than recomputing " \
            f"(need >= {MIN_WARM_SPEEDUP}x)"


def test_migrate_preserves_service(benchmark, world, tmp_path):
    table = world.network("trade", 0)
    methods = [method for method in paper_methods()
               if not method.parameter_free]

    def run():
        source = DirectoryBackend(tmp_path / "migrate-src")
        _score_all(methods, table, ScoreStore(backend=source))
        dest = SQLiteBackend(tmp_path / "migrate.sqlite")
        migrate_s, _ = time_call(
            lambda: [dest.put(key, source.get(key, touch=False))
                     for key in source.keys()])
        migrated = ScoreStore(backend=dest)
        warm_s, served = time_call(_score_all, methods, table, migrated)
        return migrate_s, warm_s, source, dest, served, migrated.stats

    migrate_s, warm_s, source, dest, served, stats = benchmark.pedantic(
        run, rounds=1, iterations=1)
    emit(f"migrated {len(source.keys())} entries in {migrate_s:.3f}s; "
         f"warm scoring from sqlite in {warm_s:.3f}s")
    assert stats.disk_hits == len(methods)
    for key in source.keys():
        assert source.get(key, touch=False).payload \
            == dest.get(key, touch=False).payload
    # GC down to the two most recent entries keeps the cache servable.
    result = ScoreStore(backend=dest).gc(max_entries=2)
    assert result.kept == 2
    assert len(dest.keys()) == 2
