"""Benchmark fixtures: shared paper-scale world, helpers, recording.

Every benchmark regenerates one of the paper's tables or figures,
prints the rows/series the paper reports (visible with ``-s`` and in
this file's captured output on failure), and asserts the qualitative
shape the paper claims.

Every benchmark module additionally leaves a machine-readable trace:
``BENCH_<name>.json`` in the repo root (``bench_serve_load.py`` →
``BENCH_serve_load.json``), holding the wall-clock seconds of each of
its tests plus an environment block — written automatically by the
hooks below, no per-benchmark code needed. Benchmarks that measure
something richer than "how long did the test take" (speedup ratios,
latency percentiles, store counters) add it with
:func:`record_bench`, and it lands in the same file under
``metrics``. Re-anchoring sessions diff these files to see the perf
trajectory instead of re-deriving it from CI logs.
"""

import contextlib
import json
import os
import platform
import sys
import time
from pathlib import Path

try:
    import resource
except ImportError:  # pragma: no cover - Windows has no getrusage
    resource = None

import pytest

from repro.generators import SyntheticWorld, generate_occupation_study

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Per-benchmark-module payloads accumulated over the session:
#: name -> {"timings_s": {test: seconds}, "metrics": {...}}.
_RESULTS = {}


def pytest_collection_modifyitems(items):
    """Every benchmark is tier-2: marked ``slow`` for CI selection."""
    for item in items:
        item.add_marker(pytest.mark.slow)


# ----------------------------------------------------------------------
# BENCH_<name>.json recording
# ----------------------------------------------------------------------

def _bench_name(module_name: str) -> str:
    short = module_name.rsplit(".", 1)[-1]
    return short[len("bench_"):] if short.startswith("bench_") \
        else short


def _payload_for(name: str) -> dict:
    return _RESULTS.setdefault(name, {"timings_s": {}, "metrics": {}})


def record_bench(name: str, **metrics) -> None:
    """Attach named metrics to this session's ``BENCH_<name>.json``.

    ``name`` is the benchmark's short name (``"serve_load"``, not the
    file name); values must be JSON-serializable. Call it as many
    times as convenient — keys merge, later calls win.
    """
    _payload_for(name)["metrics"].update(metrics)


def bench_environment() -> dict:
    """The environment block stamped into every results file."""
    import numpy
    try:
        import scipy
        scipy_version = scipy.__version__
    except ImportError:
        scipy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "scipy": scipy_version,
    }


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call":
        return
    name = _bench_name(item.module.__name__)
    _payload_for(name)["timings_s"][item.name] = round(
        report.duration, 6)
    if report.outcome != "passed":
        _payload_for(name)["metrics"]["failed"] = True


def max_rss_bytes():
    """Peak RSS of this process and its reaped children, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; children
    are included so subprocess-heavy benchmarks (worker fan-out,
    streaming RSS probes) report the true peak, not just the pytest
    process. ``None`` where ``resource`` is unavailable.
    """
    if resource is None:  # pragma: no cover
        return None
    peak = max(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
               resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    unit = 1 if sys.platform == "darwin" else 1024
    return int(peak) * unit


def pytest_sessionfinish(session, exitstatus):
    for name, payload in _RESULTS.items():
        if not payload["timings_s"] and not payload["metrics"]:
            continue
        peak = max_rss_bytes()
        if peak is not None:
            # Session-wide peak; benchmarks gating a tighter bound
            # record their own *_bytes metrics via record_bench.
            payload["metrics"].setdefault("max_rss_bytes", peak)
        out = {"bench": name,
               "recorded_unix": round(time.time(), 3),
               "argv": " ".join(sys.argv[:4]),
               "env": bench_environment()}
        out.update(payload)
        target = REPO_ROOT / f"BENCH_{name}.json"
        # A read-only checkout must not fail the bench run.
        with contextlib.suppress(OSError):
            target.write_text(json.dumps(out, indent=2, sort_keys=True)
                              + "\n")


@pytest.fixture(scope="session")
def world():
    """Paper-scale synthetic country world (shared across benchmarks)."""
    return SyntheticWorld(n_countries=120, n_years=3, seed=0)


@pytest.fixture(scope="session")
def occupation_study():
    """Paper-scale occupation case-study dataset."""
    return generate_occupation_study(n_occupations=220, n_skills=150,
                                     n_major_groups=8, seed=0)


def emit(text: str) -> None:
    """Print a rendered experiment table beneath the benchmark output."""
    print()
    print(text)
