"""Benchmark fixtures: shared paper-scale world and helpers.

Every benchmark regenerates one of the paper's tables or figures,
prints the rows/series the paper reports (visible with ``-s`` and in
this file's captured output on failure), and asserts the qualitative
shape the paper claims.
"""

import pytest

from repro.generators import SyntheticWorld, generate_occupation_study


def pytest_collection_modifyitems(items):
    """Every benchmark is tier-2: marked ``slow`` for CI selection."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def world():
    """Paper-scale synthetic country world (shared across benchmarks)."""
    return SyntheticWorld(n_countries=120, n_years=3, seed=0)


@pytest.fixture(scope="session")
def occupation_study():
    """Paper-scale occupation case-study dataset."""
    return generate_occupation_study(n_occupations=220, n_skills=150,
                                     n_major_groups=8, seed=0)


def emit(text: str) -> None:
    """Print a rendered experiment table beneath the benchmark output."""
    print()
    print(text)
