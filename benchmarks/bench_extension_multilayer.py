"""Extension bench: multilayer NC (paper future work, Section VII).

Backbones the Trade and Business layers jointly and measures how the
coupled null model changes the verdicts relative to treating the layers
independently. The asserted behaviour: the two nulls genuinely disagree,
and the coupled null discounts edges that ride on cross-layer hub
propensity.
"""

from conftest import emit

from repro.core import MultilayerNetwork, multilayer_noise_corrected
from repro.util import format_table


def run_extension(world):
    trade = world.network("trade", 0)
    business = world.network("business", 0)
    network = MultilayerNetwork({"trade": trade, "business": business})
    independent = multilayer_noise_corrected(network,
                                             null_model="independent")
    coupled = multilayer_noise_corrected(network, null_model="coupled")
    rows = []
    disagreement = {}
    for layer in network.layer_names():
        keys_independent = independent.backbone(1.64)[layer] \
            .edge_key_set()
        keys_coupled = coupled.backbone(1.64)[layer].edge_key_set()
        only_independent = len(keys_independent - keys_coupled)
        only_coupled = len(keys_coupled - keys_independent)
        disagreement[layer] = only_independent + only_coupled
        rows.append([layer, len(keys_independent), len(keys_coupled),
                     only_independent, only_coupled])
    return rows, disagreement


def test_extension_multilayer(benchmark, world):
    rows, disagreement = benchmark.pedantic(
        run_extension, args=(world,), rounds=1, iterations=1)
    emit(format_table(
        ["layer", "independent edges", "coupled edges",
         "only independent", "only coupled"], rows,
        title="Extension — multilayer NC: independent vs coupled null"))
    # The coupled null must actually change the backbone.
    assert all(count > 0 for count in disagreement.values())
