"""Extension bench: multi-year pooling and change detection.

The paper's future work asks whether real changes can be separated from
spurious ones. Three measurements:

1. pooling years shrinks per-edge score uncertainty, so at a *matched
   edge budget* the pooled backbone is at least as stable as the
   single-year one;
2. on two snapshots drawn from the *same* latent intensity (pure
   Poisson sampling noise) the change detector stays almost silent;
3. when a block of pair intensities is genuinely shifted 5x, the
   detector recovers most of the shifted pairs.
"""

import numpy as np

from conftest import emit

from repro.core import (NoiseCorrectedBackbone, pool_years,
                        significant_changes)
from repro.evaluation import average_stability
from repro.graph import EdgeTable
from repro.util import format_table


def run_extension(world):
    years = world.years("trade")
    single = NoiseCorrectedBackbone(delta=1.64).extract(years[0])
    pooled_scores = pool_years(years).as_scored_edges()
    pooled_matched = pooled_scores.top_k(single.m)
    stability_single = average_stability(years, single)
    stability_pooled = average_stability(years, pooled_matched)

    # Controlled change experiment: two draws from one latent intensity.
    rng = np.random.default_rng(7)
    lam = world.latent_intensity("trade")
    before = EdgeTable.from_dense(rng.poisson(lam).astype(float),
                                  directed=True)
    same = EdgeTable.from_dense(rng.poisson(lam).astype(float),
                                directed=True)
    null_changes = significant_changes(before, same, level=1e-4)
    false_rate = len(null_changes) / max(before.m, 1)

    # Plant a real 5x shift on 100 random heavy pairs.
    shifted = lam.copy()
    src, dst = np.nonzero(lam > np.quantile(lam[lam > 0], 0.8))
    pick = rng.choice(len(src), size=100, replace=False)
    planted = set(zip(src[pick].tolist(), dst[pick].tolist()))
    for u, v in planted:
        shifted[u, v] *= 5.0
    after = EdgeTable.from_dense(rng.poisson(shifted).astype(float),
                                 directed=True)
    detected = significant_changes(before, after, level=1e-4)
    detected_pairs = {(c.src, c.dst) for c in detected}
    recall = len(planted & detected_pairs) / len(planted)
    return (single.m, stability_single, stability_pooled, false_rate,
            recall)


def test_extension_pooling(benchmark, world):
    (budget, stability_single, stability_pooled, false_rate,
     recall) = benchmark.pedantic(run_extension, args=(world,),
                                  rounds=1, iterations=1)
    emit(format_table(
        ["measurement", "value"],
        [[f"single-year stability ({budget} edges)", stability_single],
         [f"pooled stability (same {budget} edges)", stability_pooled],
         ["spurious-change rate (same latent, level 1e-4)", false_rate],
         ["recall of planted 5x shifts (level 1e-4)", recall]],
        title="Extension — multi-year pooling and change detection"))
    # Pooling must not hurt stability at a matched budget...
    assert stability_pooled > stability_single - 0.02
    # ...the detector stays quiet under pure sampling noise...
    assert false_rate < 0.01
    # ...and catches most genuinely shifted pairs.
    assert recall > 0.6
