"""Tier-2 perf smoke: out-of-core streaming scoring (ISSUE 9).

Two claims, both against raw-dump scale inputs (the paper's Section
V-G scalability regime):

* **bit identity** — ``flow(npz, streaming=True)`` produces the exact
  bytes of the in-memory path on a millions-of-rows table, for every
  streamable method;
* **bounded memory** — a subprocess scoring a table ~4x larger than
  the RSS cap stays under the cap: peak RSS is O(nodes + block +
  backbone), not O(edges). The peak lands in ``BENCH_streaming.json``
  as
  ``stream_peak_rss_bytes`` and is gated by
  ``check_regressions.py`` (lower is better, 3x band).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from conftest import emit, record_bench

from repro.flow import flow
from repro.util.tables import format_table
from repro.util.timing import time_call

#: Complete-bipartite generator shape for the RSS probe:
#: RSS_SRC x RSS_DST unique sorted pairs = 40M rows, ~960 MB on disk.
RSS_SRC, RSS_DST = 8_000, 5_000

#: The streamed peak must stay under table_bytes / RSS_FACTOR.
RSS_FACTOR = 4

#: Identity-check table: 2M rows, every streamable method.
ID_SRC, ID_DST = 1_000, 2_000

#: Stream geometry for the RSS probe subprocess.
BLOCK_ROWS = 131_072
RUN_ROWS = 262_144

_PROBE = """\
import json, resource, sys
from repro.flow import flow

result = (flow(sys.argv[1], streaming=True).method("NC")
          .budget(share=0.01).run())


def peak_rss_bytes():
    # Linux ru_maxrss survives fork+exec (it would report the parent
    # bench process, generator arrays and all); VmHWM is per-process.
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) * (1 if sys.platform == "darwin" else 1024)


print(json.dumps({"peak_rss_bytes": peak_rss_bytes(),
                  "kept_m": int(result.backbone.m),
                  "base_m": int(result.base.m)}))
"""


def _write_bipartite_npz(path, n_src, n_dst, seed=0):
    """A canonical directed dump written without an EdgeTable.

    ``n_src x n_dst`` unique (src, dst) pairs in canonical order —
    ``np.savez`` with the exact member set ``write_edge_npz`` uses —
    so the generator never holds more than the three columns.
    """
    m = n_src * n_dst
    rng = np.random.default_rng(seed)
    arrays = {
        "format": np.array(1, dtype=np.int64),
        "src": np.repeat(np.arange(n_src, dtype=np.int64), n_dst),
        "dst": np.tile(np.arange(n_src, n_src + n_dst,
                                 dtype=np.int64), n_src),
        "weight": rng.integers(1, 1_000, m).astype(np.float64),
        "n_nodes": np.array(n_src + n_dst, dtype=np.int64),
        "directed": np.array(True, dtype=np.bool_),
    }
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
    return path.stat().st_size


def test_streaming_bit_identity_at_scale(benchmark, tmp_path):
    npz = tmp_path / "ident.npz"
    _write_bipartite_npz(npz, ID_SRC, ID_DST, seed=1)

    def run():
        timings = {}
        pairs = {}
        for code, budget in (("NC", {"share": 0.1}),
                             ("NCp", {"share": 0.1}),
                             ("DF", {"share": 0.1}),
                             ("NT", {"n_edges": 50_000})):
            mem_s, mem = time_call(
                lambda code=code, budget=budget:
                flow(str(npz), streaming=False).method(code)
                .budget(**budget).run())
            stream_s, streamed = time_call(
                lambda code=code, budget=budget:
                flow(str(npz), streaming=True).method(code)
                .budget(**budget).run())
            timings[code] = (mem_s, stream_s)
            pairs[code] = (mem, streamed)
        return timings, pairs

    timings, pairs = benchmark.pedantic(run, rounds=1, iterations=1)

    for code, (mem, streamed) in pairs.items():
        got, want = streamed.backbone, mem.backbone
        assert got.src.tobytes() == want.src.tobytes(), code
        assert got.dst.tobytes() == want.dst.tobytes(), code
        assert got.weight.tobytes() == want.weight.tobytes(), code
        assert got.m > 0

    rows = [(code, f"{mem_s:.3f}", f"{stream_s:.3f}")
            for code, (mem_s, stream_s) in timings.items()]
    emit(format_table(
        ["method", "in-memory s", "streamed s"], rows,
        title=f"Streaming bit identity: {ID_SRC * ID_DST:,} rows"))
    record_bench(
        "streaming",
        identity_in_memory_s=round(timings["NC"][0], 6),
        identity_streamed_s=round(timings["NC"][1], 6))


def test_streaming_peak_rss_bounded(benchmark, tmp_path):
    npz = tmp_path / "huge.npz"
    table_bytes = _write_bipartite_npz(npz, RSS_SRC, RSS_DST, seed=2)
    rss_cap = table_bytes // RSS_FACTOR

    def run():
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(__file__).resolve().parent.parent / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        env["REPRO_STREAM_BLOCK_ROWS"] = str(BLOCK_ROWS)
        env["REPRO_STREAM_RUN_ROWS"] = str(RUN_ROWS)
        probe = subprocess.run(
            [sys.executable, "-c", _PROBE, str(npz)],
            capture_output=True, text=True, env=env, check=True)
        return json.loads(probe.stdout)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    peak = report["peak_rss_bytes"]

    emit(format_table(
        ["quantity", "bytes"],
        [("table on disk", f"{table_bytes:,}"),
         (f"RSS cap (table/{RSS_FACTOR})", f"{rss_cap:,}"),
         ("streamed peak RSS", f"{peak:,}")],
        title=f"Streaming peak RSS: {RSS_SRC * RSS_DST:,}-row table"))
    record_bench(
        "streaming",
        stream_peak_rss_bytes=peak,
        rss_cap_bytes=rss_cap,
        table_bytes=table_bytes,
        table_over_peak_ratio=round(table_bytes / peak, 2))

    assert report["kept_m"] > 0
    assert report["base_m"] == RSS_SRC * RSS_DST
    assert peak <= rss_cap, (
        f"streamed peak RSS {peak:,} exceeds the cap {rss_cap:,} "
        f"(table is {table_bytes:,} bytes; streaming must stay "
        f"O(nodes + block + backbone))")
