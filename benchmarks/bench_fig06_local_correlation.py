"""Benchmark: paper Fig. 6 — local correlation of edge weights."""

from conftest import emit

from repro.experiments import fig6_local_correlation


def test_fig06_local_correlation(benchmark, world):
    result = benchmark.pedantic(fig6_local_correlation.run,
                                kwargs={"world": world}, rounds=1,
                                iterations=1)
    emit(fig6_local_correlation.format_result(result))
    # Paper shape: all clearly positive (theirs: 0.42 to 0.75).
    assert result.all_positive()
