"""Tier-2 perf smoke: chunked ingestion at raw-dump scale.

Builds a ~1M-row raw traffic dump — integer endpoints, integer
``N_ij`` counts, canonically sorted, exactly the shape of the large
edge dumps the paper's Section V-G scalability claim is about — and
asserts the ingestion contract:

* the chunked, vectorized reader loads it at least **10x** faster
  than the historical row-loop reader (kept verbatim as
  :func:`repro.graph.ingest.read_edge_csv_rows`), producing a
  bit-identical ``EdgeTable``;
* the binary ``.npz`` format loads at least **5x** faster than *any*
  CSV path (in practice it skips parsing entirely), again
  bit-identically;
* the decimal-weight fast path (C float parsing over gathered byte
  runs) still clears the legacy reader by a wide margin.
"""

import numpy as np

from conftest import emit

from repro.graph.ingest import (read_edge_csv_rows, read_edges,
                                write_edges)
from repro.util.tables import format_table
from repro.util.timing import time_call

#: Required speedups on the ~1M-row dump.
MIN_CHUNKED_SPEEDUP = 10.0
MIN_NPZ_SPEEDUP = 5.0

N_ROWS = 1_000_000
N_NODES = 50_000


def _write_dump(path, decimal_weights=False, seed=0):
    """A canonical raw dump: sorted unique int pairs, count weights."""
    rng = np.random.default_rng(seed)
    keys = rng.choice(N_NODES * N_NODES, size=N_ROWS, replace=False)
    keys.sort()
    src = keys // N_NODES
    dst = keys % N_NODES
    if decimal_weights:
        weight = (rng.random(N_ROWS) * 100).tolist()
        rows = (f"{u},{v},{w!r}" for u, v, w in
                zip(src.tolist(), dst.tolist(), weight))
    else:
        weight = rng.integers(1, 1_000, N_ROWS).tolist()
        rows = (f"{u},{v},{w}" for u, v, w in
                zip(src.tolist(), dst.tolist(), weight))
    with open(path, "w") as handle:
        handle.write("src,dst,weight\n")
        handle.write("\n".join(rows))
        handle.write("\n")


def _best_of(times, fn, *args):
    seconds = []
    result = None
    for _ in range(times):
        elapsed, result = time_call(fn, *args)
        seconds.append(elapsed)
    return min(seconds), result


def test_chunked_reader_and_npz_speedups(benchmark, tmp_path):
    csv_path = tmp_path / "dump.csv"
    _write_dump(csv_path)

    def run():
        legacy_s, legacy = _best_of(2, read_edge_csv_rows, csv_path)
        chunked_s, chunked = _best_of(3, read_edges, csv_path)
        npz_path = tmp_path / "dump.npz"
        write_edges(chunked, npz_path)
        npz_s, from_npz = _best_of(3, read_edges, npz_path)
        return legacy_s, chunked_s, npz_s, legacy, chunked, from_npz

    legacy_s, chunked_s, npz_s, legacy, chunked, from_npz = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ("legacy row loop", f"{legacy_s:.3f}", "1.0x"),
        ("chunked reader", f"{chunked_s:.3f}",
         f"{legacy_s / chunked_s:.1f}x"),
        ("npz load", f"{npz_s:.3f}", f"{legacy_s / npz_s:.1f}x"),
    ]
    emit(format_table(
        ["path", "seconds", "vs legacy"], rows,
        title=f"Ingest: {N_ROWS:,}-row count dump "
              f"({N_NODES:,} nodes)"))

    # Bit identity before speed: all three paths agree exactly.
    for other in (chunked, from_npz):
        assert np.array_equal(legacy.src, other.src)
        assert np.array_equal(legacy.dst, other.dst)
        assert np.array_equal(legacy.weight, other.weight)
        assert legacy.n_nodes == other.n_nodes

    chunked_speedup = legacy_s / chunked_s
    assert chunked_speedup >= MIN_CHUNKED_SPEEDUP, (
        f"chunked reader only {chunked_speedup:.1f}x over the legacy "
        f"row loop (need >= {MIN_CHUNKED_SPEEDUP}x)")
    npz_speedup = min(legacy_s, chunked_s) / npz_s
    assert npz_speedup >= MIN_NPZ_SPEEDUP, (
        f"npz load only {npz_speedup:.1f}x over the fastest CSV path "
        f"(need >= {MIN_NPZ_SPEEDUP}x)")


def test_decimal_weight_fast_path(benchmark, tmp_path):
    csv_path = tmp_path / "decimal.csv"
    _write_dump(csv_path, decimal_weights=True)

    def run():
        legacy_s, legacy = time_call(read_edge_csv_rows, csv_path)
        chunked_s, chunked = _best_of(2, read_edges, csv_path)
        return legacy_s, chunked_s, legacy, chunked

    legacy_s, chunked_s, legacy, chunked = benchmark.pedantic(
        run, rounds=1, iterations=1)
    emit(format_table(
        ["path", "seconds", "speedup"],
        [("legacy row loop", f"{legacy_s:.3f}", "1.0x"),
         ("chunked reader", f"{chunked_s:.3f}",
          f"{legacy_s / chunked_s:.1f}x")],
        title="Ingest: decimal-weight dump"))
    assert np.array_equal(legacy.weight, chunked.weight)
    assert legacy == chunked
    # The decimal path gives up SWAR integer parsing for the C float
    # parser; it must still beat the row loop comfortably.
    assert legacy_s / chunked_s >= 2.0
