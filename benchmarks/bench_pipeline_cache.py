"""Tier-2 perf smoke: the pipeline cache on the Fig. 7 workload.

Runs the full coverage sweep of paper Fig. 7 (six networks x six
methods x the paper's share grid) several ways — plain serial, cold
store, warm store (both tiers and disk-only), and sharded across two
workers — and asserts the contract of ISSUE 2:

* a warm store makes the sweep at least 5x faster than the cold run
  (scoring dominates, and the cache removes all of it);
* sharded ``workers=2`` execution returns *bit-identical* series to the
  serial path (parallelism is purely a wall-clock optimization);
* so do the cached paths (cache hits must not perturb results).
"""

from conftest import emit

from repro.experiments import fig7_topology
from repro.pipeline import ScoreStore
from repro.util.tables import format_table
from repro.util.timing import time_call

#: Required cold/warm speedup at the Fig. 7 workload.
MIN_WARM_SPEEDUP = 5.0


def _run_all_ways(world, cache_dir):
    serial_s, serial = time_call(fig7_topology.run, world=world)
    store = ScoreStore(cache_dir)
    cold_s, cold = time_call(fig7_topology.run, world=world, store=store)
    # Warm, both tiers live: the service scenario (same process reruns).
    # Best of two passes, so a scheduler hiccup can't fail the gate.
    warm_a_s, warm = time_call(fig7_topology.run, world=world, store=store)
    warm_b_s, _ = time_call(fig7_topology.run, world=world, store=store)
    warm_s = min(warm_a_s, warm_b_s)
    # Warm, disk tier only: what a fresh process pays.
    store.clear_memory()
    disk_s, disk = time_call(fig7_topology.run, world=world, store=store)
    sharded_s, sharded = time_call(fig7_topology.run, world=world,
                                   store=store, workers=2)
    timings = (("serial", serial_s), ("cold store", cold_s),
               ("warm store", warm_s), ("warm disk-only", disk_s),
               ("sharded x2", sharded_s))
    return timings, (serial, cold, warm, disk, sharded), store


def test_pipeline_cache_speedup_and_identity(benchmark, world, tmp_path):
    timings, results, store = benchmark.pedantic(
        _run_all_ways, args=(world, tmp_path / "cache"), rounds=1,
        iterations=1)
    by_name = dict(timings)
    emit(format_table(
        ("path", "seconds", "vs cold"),
        [(name, f"{seconds:.3f}",
          f"{by_name['cold store'] / seconds:.1f}x")
         for name, seconds in timings],
        title="Fig. 7 coverage sweep through the pipeline cache"))
    emit(store.stats.summary())

    serial, cold, warm, disk, sharded = results
    assert cold.sweeps == serial.sweeps, \
        "a cold cache perturbed the sweep results"
    assert warm.sweeps == serial.sweeps, \
        "memory-tier cache hits perturbed the sweep results"
    assert disk.sweeps == serial.sweeps, \
        "disk-tier cache hits perturbed the sweep results"
    assert sharded.sweeps == serial.sweeps, \
        "workers=2 sharded output diverged from the serial path"

    speedup = by_name["cold store"] / by_name["warm store"]
    assert speedup >= MIN_WARM_SPEEDUP, \
        f"warm store only {speedup:.1f}x faster than cold " \
        f"(need >= {MIN_WARM_SPEEDUP}x)"
