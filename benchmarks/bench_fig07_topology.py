"""Benchmark: paper Fig. 7 — coverage sweeps across all six networks."""

from conftest import emit

from repro.experiments import fig7_topology


def test_fig07_topology(benchmark, world):
    result = benchmark.pedantic(fig7_topology.run,
                                kwargs={"world": world}, rounds=1,
                                iterations=1)
    emit(fig7_topology.format_result(result))
    # Paper shape: at full share everyone covers; at strict shares NC
    # should never be the critical failure (DF was, on Ownership).
    for name in result.sweeps:
        for code in ("NT", "DF", "NC"):
            assert result.coverage_at(name, code, 1.0) >= 0.999
    strict = result.shares[0]
    for name in result.sweeps:
        nc = result.coverage_at(name, "NC", strict)
        nt = result.coverage_at(name, "NT", strict)
        assert nc >= nt - 0.05, (name, nc, nt)
