"""Benchmark: paper Fig. 5 — edge-weight CCDFs of the six networks."""

from conftest import emit

from repro.experiments import fig5_weights


def test_fig05_weights(benchmark, world):
    result = benchmark.pedantic(fig5_weights.run,
                                kwargs={"world": world}, rounds=1,
                                iterations=1)
    emit(fig5_weights.format_result(result))
    # Paper shape: broad distributions everywhere, with Country Space
    # the (possible) narrow exception.
    assert result.broad_distributions()
    spreads = {name: facts["orders_of_magnitude"]
               for name, facts in result.summary.items()}
    assert spreads["trade"] > spreads["country_space"]
