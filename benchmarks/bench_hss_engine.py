"""Tier-2 perf smoke: the batched SP engine vs the heap reference.

Times exact (all-roots) High-Salience Skeleton scoring at 2k and 8k
edges through both paths and asserts the engine's speedup, so the
BENCH_*.json trajectory captures regressions in the hot path. Scores
must also stay bit-identical — the speedup is worthless otherwise.
"""

import numpy as np
from conftest import emit

from repro.backbones.high_salience import (HighSalienceSkeleton,
                                           reference_salience_scores)
from repro.generators.erdos_renyi import erdos_renyi_gnm
from repro.util.tables import format_table
from repro.util.timing import time_call

#: Edge counts to probe (paper regime and one step past it).
EDGE_SIZES = (2_000, 8_000)
#: Required speedup of the engine over the reference path.
MIN_SPEEDUP = 3.0
AVERAGE_DEGREE = 3.0


def _exact_hss_timings(seed: int = 0):
    rows = []
    for n_edges in EDGE_SIZES:
        n_nodes = max(2, int(round(2.0 * n_edges / AVERAGE_DEGREE)))
        table = erdos_renyi_gnm(n_nodes, n_edges, seed=seed)
        engine_s, scored = time_call(HighSalienceSkeleton().score, table)
        reference_s, expected = time_call(reference_salience_scores, table)
        assert np.array_equal(scored.score, expected.score), \
            "engine salience diverged from the reference"
        rows.append((n_edges, engine_s, reference_s,
                     reference_s / engine_s))
    return rows


def test_hss_engine_speedup(benchmark):
    rows = benchmark.pedantic(_exact_hss_timings, rounds=1, iterations=1)
    emit(format_table(
        ("edges", "engine_s", "reference_s", "speedup"),
        [(e, f"{a:.3f}", f"{b:.3f}", f"{r:.1f}x") for e, a, b, r in rows],
        title="HSS exact scoring — batched engine vs heap reference"))
    for n_edges, _, _, speedup in rows:
        assert speedup >= MIN_SPEEDUP, \
            f"engine only {speedup:.1f}x faster at {n_edges} edges"
