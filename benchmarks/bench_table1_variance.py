"""Benchmark: paper Table I — validating the NC variance model."""

from conftest import emit

from repro.experiments import table1_variance


def test_table1_variance(benchmark, world):
    result = benchmark.pedantic(table1_variance.run,
                                kwargs={"world": world}, rounds=1,
                                iterations=1)
    emit(table1_variance.format_result(result))
    # Paper shape: every correlation positive and wildly significant
    # (paper: all p < 1e-9).
    assert result.all_positive_and_significant()
