"""Tier-2: the networked KV transport as a shared score cache.

The acceptance scenario of the ``repro.net`` redesign: one process
scores a paper-scale table into a ``kv://host:port`` store served by
a *separate server process*; a second, completely cold client then
requests the same plan and must

* get a store-verified warm hit (zero scoring passes, zero misses),
* materially beat recomputation (``>= 3x`` on the warm path), and
* produce bit-identical scores to the in-memory transport.

Wall-clock for the recompute/cold/warm phases plus the speedup land
in ``BENCH_remote_kv.json`` for cross-session regression tracking.
"""

import os
import subprocess
import sys
import time

import numpy as np
from conftest import REPO_ROOT, emit, record_bench

from repro.flow import flow
from repro.graph.edge_table import EdgeTable
from repro.graph.ingest import write_edges
from repro.pipeline import ScoreStore
from repro.pipeline.backends import InMemoryKVServer, KVBackend
from repro.util.tables import format_table

#: Workload size: HSS scoring (shortest-path salience, the most
#: compute-bound paper method) must dwarf one score round trip.
N_NODES, N_EDGES = 600, 20_000

#: Warm fetches timed (the steady-state remote-hit latency).
N_WARM = 5


def _write_workload(tmp_path):
    rng = np.random.default_rng(23)
    src = rng.integers(0, N_NODES, N_EDGES)
    dst = rng.integers(0, N_NODES, N_EDGES)
    weight = rng.integers(1, 500, N_EDGES).astype(float)
    table = EdgeTable(src, dst, weight, n_nodes=N_NODES,
                      directed=False)
    path = tmp_path / "edges.npz"
    write_edges(table, path)
    return str(path)


def _spawn_server():
    """``(process, address)`` of a KV server in its own process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.net", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    for _ in range(20):
        line = process.stdout.readline()
        if "listening on" in line:
            return process, line.strip().rsplit(" ", 1)[-1]
        if not line:
            break
    process.kill()
    raise RuntimeError("KV server failed to start")


def test_remote_warm_hit_beats_recompute(tmp_path):
    path = _write_workload(tmp_path)
    plan = flow(path).method("HSS").budget(share=0.1)

    # Baseline 1: recompute from scratch (no store at all).
    start = time.perf_counter()
    recomputed = plan.run()
    recompute_s = time.perf_counter() - start

    # Baseline 2: the in-memory transport (the parity reference).
    memory_store = ScoreStore(backend=KVBackend(InMemoryKVServer()))
    via_memory = plan.run(store=memory_store)

    process, address = _spawn_server()
    try:
        spec = f"kv://{address}"

        # Cold pass: score once, stream the entries over the wire.
        start = time.perf_counter()
        cold_store = ScoreStore(spec)
        cold = plan.run(store=cold_store)
        cold_s = time.perf_counter() - start
        assert cold_store.stats.misses >= 1
        assert cold_store.stats.puts >= 1

        # Warm passes: fresh client each time — every byte it knows
        # arrives from the server process.
        warm_samples = []
        for _ in range(N_WARM):
            warm_store = ScoreStore(spec)
            start = time.perf_counter()
            warm = plan.run(store=warm_store)
            warm_samples.append(time.perf_counter() - start)
            assert warm_store.stats.misses == 0, \
                warm_store.stats.summary()
            assert warm_store.stats.disk_hits >= 1
        warm_s = min(warm_samples)
    finally:
        process.kill()
        process.wait(timeout=10)

    # Bit-identical across every path.
    for other in (cold, warm, via_memory):
        assert other.cache_key == recomputed.cache_key
        assert np.array_equal(other.backbone.weight,
                              recomputed.backbone.weight)
        assert np.array_equal(other.backbone.src,
                              recomputed.backbone.src)

    speedup = recompute_s / warm_s
    emit(format_table(
        ("phase", "seconds"),
        [("recompute (no store)", f"{recompute_s:.4f}"),
         ("cold via kv:// (score + upload)", f"{cold_s:.4f}"),
         ("warm via kv:// (best of "
          f"{N_WARM})", f"{warm_s:.4f}")],
        title=f"remote KV cache: {N_EDGES}-edge HSS scoring"))
    emit(f"remote warm hit speedup over recompute: {speedup:.1f}x")

    record_bench(
        "remote_kv",
        n_edges=N_EDGES, n_nodes=N_NODES,
        recompute_s=round(recompute_s, 5),
        cold_kv_s=round(cold_s, 5),
        warm_hit_s=round(warm_s, 5),
        warm_speedup=round(speedup, 2))

    assert speedup >= 3.0, (
        f"remote warm hit only {speedup:.1f}x faster than recompute "
        f"({warm_s:.3f}s vs {recompute_s:.3f}s)")
