"""Tier-2 perf smoke: batched flow requests over one source.

The service regime of ISSUE 5: eight requests for the Noise-Corrected
backbone at eight delta strictnesses over the same edge file. Served
cold one by one, every request pays the full source-to-backbone cost
(hash + parse + score + filter); served as one ``run_many`` batch, the
flow compiler deduplicates the source resolution and the scoring pass,
leaving only the eight (cheap) delta filters. Asserts:

* the batch is at least 5x faster than the eight cold single runs;
* the batch performs exactly **one** scoring pass — store-verified
  (one miss, one put, one request against the shared store);
* every batched backbone is bit-identical to its cold single run and
  to the legacy ``method.extract`` path.
"""

import numpy as np
from conftest import emit, record_bench

from repro.core.noise_corrected import NoiseCorrectedBackbone
from repro.flow import flow
from repro.graph.edge_table import EdgeTable
from repro.graph.ingest import write_edges
from repro.pipeline import ScoreStore
from repro.util.tables import format_table
from repro.util.timing import time_call

#: Required batched/cold speedup for the eight-delta workload.
MIN_BATCH_SPEEDUP = 5.0

#: Eight strictness settings around the paper's defaults.
DELTAS = (0.5, 1.0, 1.28, 1.64, 2.0, 2.32, 3.0, 4.0)

#: Workload size: scoring and parsing both matter at this scale.
N_NODES, N_EDGES = 3_000, 300_000


def _write_workload(tmp_path):
    rng = np.random.default_rng(7)
    src = rng.integers(0, N_NODES, N_EDGES)
    dst = rng.integers(0, N_NODES, N_EDGES)
    weight = rng.integers(1, 500, N_EDGES).astype(float)
    table = EdgeTable(src, dst, weight, n_nodes=N_NODES, directed=False)
    path = tmp_path / "edges.csv"
    write_edges(table, path)
    return table, str(path)


def _run_both_ways(path):
    # Eight cold singles: fresh plan, no shared store — each request
    # pays hash + parse + score + filter, the "no flow layer" cost.
    def cold_singles():
        return [flow(path, directed=False).method("NC", delta=delta)
                .run() for delta in DELTAS]

    cold_s, cold = time_call(cold_singles)

    # One batch: everything shared. Best of two fresh batches so a
    # scheduler hiccup can't fail the gate (each uses its own store —
    # both passes are genuinely cold).
    def batch(store):
        return flow(path, directed=False).method("NC") \
            .run_many(store=store, delta=list(DELTAS))

    store_a, store_b = ScoreStore(), ScoreStore()
    batch_a_s, served = time_call(batch, store_a)
    batch_b_s, _ = time_call(batch, store_b)
    batch_s = min(batch_a_s, batch_b_s)
    return cold_s, batch_s, cold, served, store_a


def test_flow_batch_speedup_and_identity(benchmark, tmp_path):
    table, path = _write_workload(tmp_path)
    cold_s, batch_s, cold, served, store = benchmark.pedantic(
        _run_both_ways, args=(path,), rounds=1, iterations=1)

    emit(format_table(
        ("path", "seconds", "per request"),
        [("8 cold single runs", f"{cold_s:.3f}",
          f"{cold_s / len(DELTAS):.3f}"),
         ("1 batched run_many", f"{batch_s:.3f}",
          f"{batch_s / len(DELTAS):.3f}")],
        title=f"NC at {len(DELTAS)} deltas over one "
              f"{N_EDGES}-edge file"))
    emit(store.stats.summary())

    # Store-verified single scoring pass: the whole batch resolves to
    # one score request (deltas are extraction-only).
    assert store.stats.puts == 1, "batch scored more than once"
    assert store.stats.misses == 1 and store.stats.requests == 1, \
        "batch issued more than one score request"

    # Bit identity: batched == cold singles == legacy extract.
    for delta, one, many in zip(DELTAS, cold, served):
        assert many.backbone == one.backbone, \
            f"batched delta={delta} diverged from its cold single run"
    legacy = NoiseCorrectedBackbone(delta=DELTAS[0]).extract(table)
    assert served[0].backbone == legacy, \
        "batched extraction diverged from method.extract"

    speedup = cold_s / batch_s
    record_bench("flow_batch",
                 cold_singles_s=round(cold_s, 4),
                 batched_s=round(batch_s, 4),
                 speedup_batched_over_cold=round(speedup, 2),
                 deltas=len(DELTAS), n_edges=N_EDGES,
                 scoring_passes=store.stats.puts)
    assert speedup >= MIN_BATCH_SPEEDUP, \
        f"batched run_many only {speedup:.1f}x faster than cold " \
        f"singles (need >= {MIN_BATCH_SPEEDUP}x)"
