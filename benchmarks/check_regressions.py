"""Fail CI when a benchmark regresses badly against its committed
baseline.

Every benchmark module writes ``BENCH_<name>.json`` into the repo
root (see ``benchmarks/conftest.py``); the committed copies are the
performance record across sessions. This script compares the
working-tree files (just refreshed by a bench run) against the
committed baselines (``git show <ref>:BENCH_<name>.json``) and exits
non-zero when any tracked metric moved outside the tolerance band.

CI machines are noisy and differently sized, so the default band is
wide (``--tolerance 3.0``: a metric may be up to 3x worse before the
gate trips) — this is a tripwire for *large* regressions (an
accidentally quadratic path, a lost cache, a disabled fast path), not
a microbenchmark referee.

Metric classification, by key name:

- **lower is better** — keys ending in ``_s`` (wall-clock seconds:
  latency percentiles, phase timings) and keys ending in ``_bytes``
  (peak RSS, cache footprints). Baselines under ``MIN_SECONDS`` /
  ``MIN_BYTES`` are skipped: noise dominates there.
- **higher is better** — keys containing ``speedup`` or
  ``throughput``, or ending in ``_rps``.
- everything else (counts, flags) is ignored.

Run:  python benchmarks/check_regressions.py [--tolerance 3.0]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Wall-clock baselines below this many seconds are pure timer noise;
#: they are reported as skipped instead of gated.
MIN_SECONDS = 0.005

#: Byte baselines below this are allocator jitter, not a footprint.
MIN_BYTES = 1 << 20


def classify(key: str) -> Optional[str]:
    """``"lower"``, ``"higher"`` or ``None`` (untracked) for a key."""
    if "speedup" in key or "throughput" in key or key.endswith("_rps"):
        return "higher"
    if key.endswith("_s") or key.endswith("_bytes"):
        return "lower"
    return None


def _noise_floor(key: str) -> Tuple[float, str]:
    """(minimum gated baseline, unit suffix) for a lower-is-better key."""
    if key.endswith("_bytes"):
        return MIN_BYTES, "B"
    return MIN_SECONDS, "s"


def compare_metrics(name: str, old: Dict[str, object],
                    new: Dict[str, object],
                    tolerance: float) -> Tuple[List[str], List[str]]:
    """(regressions, skipped) between two ``metrics`` dicts.

    Each regression line names the benchmark, the key, both values
    and the allowed band; ``skipped`` records tracked keys that were
    not gated (tiny baselines, missing counterparts, non-numbers).
    """
    regressions: List[str] = []
    skipped: List[str] = []
    for key in sorted(old):
        direction = classify(key)
        if direction is None:
            continue
        if key not in new:
            skipped.append(f"{name}.{key}: missing from new run")
            continue
        old_value, new_value = old[key], new[key]
        if not all(isinstance(v, (int, float))
                   and not isinstance(v, bool)
                   for v in (old_value, new_value)):
            skipped.append(f"{name}.{key}: non-numeric")
            continue
        if direction == "lower":
            floor, unit = _noise_floor(key)
            if old_value < floor:
                skipped.append(f"{name}.{key}: baseline "
                               f"{old_value:g}{unit} below noise floor")
                continue
            if new_value > old_value * tolerance:
                regressions.append(
                    f"{name}.{key}: {new_value:g} vs baseline "
                    f"{old_value:g} (allowed <= "
                    f"{old_value * tolerance:g})")
        else:
            if old_value <= 0:
                skipped.append(f"{name}.{key}: non-positive baseline")
                continue
            if new_value < old_value / tolerance:
                regressions.append(
                    f"{name}.{key}: {new_value:g} vs baseline "
                    f"{old_value:g} (allowed >= "
                    f"{old_value / tolerance:g})")
    return regressions, skipped


def committed_metrics(path: Path, ref: str) -> Optional[Dict[str, object]]:
    """The ``metrics`` block of ``path`` at ``ref``, or ``None``."""
    try:
        shown = subprocess.run(
            ["git", "show", f"{ref}:{path.name}"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True).stdout
    except (subprocess.CalledProcessError, OSError):
        return None  # new benchmark: no baseline yet
    try:
        return json.loads(shown).get("metrics", {})
    except ValueError:
        return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate benchmark results against committed "
                    "baselines")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed worsening factor before the "
                             "gate trips (default 3.0)")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baselines "
                             "(default HEAD)")
    args = parser.parse_args(argv)
    if args.tolerance < 1.0:
        parser.error("tolerance must be >= 1.0")

    regressions: List[str] = []
    checked = 0
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        try:
            current = json.loads(path.read_text()).get("metrics", {})
        except (OSError, ValueError) as error:
            print(f"warning: cannot read {path.name}: {error}")
            continue
        baseline = committed_metrics(path, args.ref)
        if baseline is None:
            print(f"{path.name}: no committed baseline at "
                  f"{args.ref}; skipping")
            continue
        if current.get("failed") or baseline.get("failed"):
            print(f"{path.name}: a run is marked failed; skipping")
            continue
        name = path.stem[len("BENCH_"):]
        bad, skipped = compare_metrics(name, baseline, current,
                                       args.tolerance)
        regressions.extend(bad)
        checked += 1
        gated = sum(1 for key in baseline if classify(key))
        print(f"{path.name}: {gated} tracked metric(s), "
              f"{len(bad)} regression(s), {len(skipped)} skipped")
        for line in skipped:
            print(f"  skip {line}")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance}x tolerance:")
        for line in regressions:
            print(f"  FAIL {line}")
        return 1
    print(f"\nno regressions across {checked} benchmark file(s) "
          f"(tolerance {args.tolerance}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
