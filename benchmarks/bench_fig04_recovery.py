"""Benchmark: paper Fig. 4 — recovery of a planted BA backbone vs noise."""

from conftest import emit

from repro.experiments import fig4_synthetic


def test_fig04_recovery(benchmark):
    result = benchmark.pedantic(
        fig4_synthetic.run,
        kwargs={"n_nodes": 200, "repetitions": 1, "seed": 0},
        rounds=1, iterations=1)
    emit(fig4_synthetic.format_result(result))
    # Paper shape: NC most resilient overall; NT/DF strong only at the
    # lowest noise levels.
    assert result.best_at_high_noise() == "NC"
    assert result.series["NT"][0] > 0.95
    assert result.series["DF"][0] > 0.95
    assert result.series["NC"][-1] > result.series["DF"][-1]
    assert result.series["NC"][-1] > result.series["NT"][-1]
