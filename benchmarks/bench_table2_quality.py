"""Benchmark: paper Table II — backbone-restricted predictive quality."""

from conftest import emit

from repro.experiments import table2_quality


def test_table2_quality(benchmark, world):
    result = benchmark.pedantic(table2_quality.run,
                                kwargs={"world": world}, rounds=1,
                                iterations=1)
    emit(table2_quality.format_result(result))
    # Paper shape: NC is above 1.0 on every network (in the paper it is
    # the ONLY such method) and dominates the edge-budget-matched
    # competitors (NT, DF, HSS) on a clear majority of networks. The
    # parameter-free MST/DS points are not budget-comparable (the paper
    # reports DS as n/a on half the networks). On our synthetic world
    # the one deviation is Ownership, where the FDI covariate is close
    # to a direct proxy for the latent truth and HSS/DF edge ahead —
    # recorded in EXPERIMENTS.md.
    assert result.nc_always_above_one()
    assert result.nc_budgeted_win_share() >= 0.6
