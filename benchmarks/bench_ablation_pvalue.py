"""Ablation: the delta filter vs the footnote-2 binomial p-value variant.

The paper's footnote 2 offers an alternative NC formulation that skips
the lift transform and scores edges by direct binomial tail
probabilities. It sacrifices the standard-deviation machinery (no
confidence intervals, no edge-vs-edge tests). This ablation checks that
the two rankings broadly agree on what matters — recovery of a planted
backbone — while only the delta variant offers uncertainty output.
"""

from conftest import emit

from repro.core import NoiseCorrectedBackbone, NoiseCorrectedPValue
from repro.generators import add_noise, barabasi_albert
from repro.graph import jaccard_edge_similarity
from repro.util import format_table


def run_ablation():
    truth = barabasi_albert(150, 1.5, seed=5)
    rows = []
    overlaps = []
    for eta in (0.1, 0.2, 0.3):
        noisy = add_noise(truth, eta, seed=6)
        budget = noisy.n_true_edges
        delta_scored = NoiseCorrectedBackbone().score(noisy.observed)
        pvalue_scored = NoiseCorrectedPValue().score(noisy.observed)
        delta_backbone = delta_scored.top_k(budget)
        pvalue_backbone = pvalue_scored.top_k(budget)
        overlap = len(delta_backbone.edge_key_set()
                      & pvalue_backbone.edge_key_set()) / budget
        overlaps.append(overlap)
        rows.append([
            eta,
            jaccard_edge_similarity(delta_backbone, noisy.truth),
            jaccard_edge_similarity(pvalue_backbone, noisy.truth),
            overlap,
            delta_scored.sdev is not None,
            pvalue_scored.sdev is not None,
        ])
    return rows, overlaps


def test_ablation_pvalue(benchmark):
    rows, overlaps = benchmark.pedantic(run_ablation, rounds=1,
                                        iterations=1)
    emit(format_table(
        ["eta", "delta recovery", "p-value recovery", "top-k overlap",
         "delta has sdev", "p-value has sdev"], rows,
        title="Ablation — NC delta filter vs binomial p-value variant"))
    # The two NC formulations agree on most of the backbone...
    assert min(overlaps) > 0.6
    # ...but only the delta variant carries standard deviations.
    assert rows[0][4] is True
    assert rows[0][5] is False
