"""Ablation: the Bayesian posterior vs the plug-in probability estimate.

The paper's central modelling argument (Section IV): the plug-in
``P̂_ij = N_ij / N..`` assigns *zero* variance to zero-weight pairs,
pretending sparse measurements are noiseless. The beta-binomial
posterior keeps every variance strictly positive. This ablation
quantifies both the degeneracy and its downstream effect on recovery.
"""

import numpy as np

from conftest import emit

from repro.core import NoiseCorrectedBackbone, edge_weight_variance
from repro.generators import add_noise, barabasi_albert
from repro.graph import EdgeTable, jaccard_edge_similarity
from repro.util import format_table


def sparse_count_network(seed=0, n=150):
    """An integer-count network with many zero-weight pairs recorded."""
    rng = np.random.default_rng(seed)
    src, dst = np.triu_indices(n, k=1)
    lam = rng.exponential(0.8, len(src))
    weight = rng.poisson(lam).astype(float)
    return EdgeTable(src, dst, weight, n_nodes=n, directed=False,
                     coalesce=False)


def run_ablation():
    table = sparse_count_network()
    with_posterior = edge_weight_variance(table, use_posterior=True)
    plug_in = edge_weight_variance(table, use_posterior=False)
    degenerate_posterior = int((with_posterior == 0).sum())
    degenerate_plug_in = int((plug_in == 0).sum())

    truth = barabasi_albert(150, 1.5, seed=3)
    recoveries = {}
    for eta in (0.1, 0.2, 0.3):
        noisy = add_noise(truth, eta, seed=4)
        for use_posterior in (True, False):
            method = NoiseCorrectedBackbone(use_posterior=use_posterior)
            backbone = method.extract(noisy.observed,
                                      n_edges=noisy.n_true_edges)
            key = ("posterior" if use_posterior else "plug-in", eta)
            recoveries[key] = jaccard_edge_similarity(backbone,
                                                      noisy.truth)
    return degenerate_posterior, degenerate_plug_in, recoveries


def test_ablation_posterior(benchmark):
    degenerate_posterior, degenerate_plug_in, recoveries = \
        benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = [["posterior", degenerate_posterior]
            + [recoveries[("posterior", eta)] for eta in (0.1, 0.2, 0.3)],
            ["plug-in", degenerate_plug_in]
            + [recoveries[("plug-in", eta)] for eta in (0.1, 0.2, 0.3)]]
    emit(format_table(
        ["estimator", "zero-variance edges", "recovery eta=0.1",
         "recovery eta=0.2", "recovery eta=0.3"], rows,
        title="Ablation — beta-binomial posterior vs plug-in P_ij"))

    # The plug-in degenerates on the zero-weight pairs; the posterior
    # never does.
    assert degenerate_posterior == 0
    assert degenerate_plug_in > 1000
    # And the posterior's recovery is at least as good on average.
    posterior_mean = np.mean([recoveries[("posterior", eta)]
                              for eta in (0.1, 0.2, 0.3)])
    plug_in_mean = np.mean([recoveries[("plug-in", eta)]
                            for eta in (0.1, 0.2, 0.3)])
    assert posterior_mean >= plug_in_mean - 0.02
