"""Benchmark: paper Fig. 9 — running-time scaling of the methods."""

from conftest import emit

from repro.experiments import fig9_scalability


def test_fig09_scalability(benchmark):
    result = benchmark.pedantic(
        fig9_scalability.run,
        kwargs={"fast_sizes": (2_000, 8_000, 32_000, 128_000),
                "slow_sizes": (200, 400, 800),
                # The batched SP engine lets HSS run one ladder step past
                # the paper's "few thousand edges" ceiling (Section V-G).
                "hss_sizes": fig9_scalability.DEFAULT_HSS_SIZES,
                "repeats": 1},
        rounds=1, iterations=1)
    emit(fig9_scalability.format_result(result))
    # Paper shape: NC scales near-linearly (empirically |E|^1.14) and
    # HSS is orders of magnitude slower per edge — even on the batched
    # engine and even measured at 4x the edge count it used to run at.
    assert result.nc_near_linear()
    nc_rate = result.seconds["NC"][-1] / result.edge_counts["NC"][-1]
    hss_rate = result.seconds["HSS"][-1] / result.edge_counts["HSS"][-1]
    assert hss_rate > 10 * nc_rate
