"""Benchmark: paper Fig. 3 — the toy hub separating NC from DF."""

from conftest import emit

from repro.experiments import fig3_toy


def test_fig03_toy(benchmark):
    result = benchmark.pedantic(fig3_toy.run, rounds=1, iterations=1)
    emit(fig3_toy.format_result(result))
    assert result.nc_prefers_peripheral()
    assert fig3_toy.PERIPHERAL_EDGE in result.nc_kept
    assert fig3_toy.PERIPHERAL_EDGE not in result.df_kept
