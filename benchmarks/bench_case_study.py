"""Benchmark: paper Section VI — occupation skill-relatedness case study."""

from conftest import emit

from repro.experiments import case_study


def test_case_study(benchmark, occupation_study):
    result = benchmark.pedantic(case_study.run,
                                kwargs={"study": occupation_study},
                                rounds=1, iterations=1)
    emit(case_study.format_result(result))
    # Paper shape: every reported ordering favours NC over DF over the
    # unfiltered network.
    assert result.orderings_hold()
    assert result.nc.nmi_infomap_two_digit \
        >= result.df.nmi_infomap_two_digit - 1e-9
