"""Benchmark: paper Fig. 2 — delta shifts the NC acceptance boundary."""

from conftest import emit

from repro.experiments import fig2_threshold


def test_fig02_threshold(benchmark, world):
    result = benchmark.pedantic(fig2_threshold.run,
                                kwargs={"world": world}, rounds=1,
                                iterations=1)
    emit(fig2_threshold.format_result(result))
    assert fig2_threshold.monotone_in_delta(result)
