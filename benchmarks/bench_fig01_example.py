"""Benchmark: paper Fig. 1 — hairball to communities via the NC backbone."""

from conftest import emit

from repro.experiments import fig1_example


def test_fig01_example(benchmark):
    result = benchmark.pedantic(fig1_example.run, kwargs={"seed": 0},
                                rounds=1, iterations=1)
    emit(fig1_example.format_result(result))
    # The paper's claim: raw density collapses community discovery; the
    # backbone recovers the ground truth classes.
    assert result.communities_raw <= 2
    assert result.nmi_backbone > 0.9
