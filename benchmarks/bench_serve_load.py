"""Tier-2 load test: the backbone daemon under concurrent clients.

The service regime of ISSUE 6: one daemon, N concurrent HTTP clients,
each requesting the Noise-Corrected backbone at its own delta over the
same edge file. Asserts the daemon's two headline claims:

* **cross-client coalescing** — the admission window merges the
  concurrent requests so the store sees exactly one scoring pass for
  all N clients (store-verified, same counters as ``bench_flow_batch``
  uses in-process);
* **warm latency** — once the store is warm, request latency is pure
  protocol + extraction cost; p50/p99 over a burst of warm requests
  are measured and recorded to ``BENCH_serve_load.json`` so the
  latency trajectory is visible across sessions from day one.

Every result is checked bit-identical to an in-process ``plan.run()``.
"""

import json
import statistics
import threading
import time

import numpy as np
from conftest import emit, record_bench

from repro.flow import flow
from repro.graph.edge_table import EdgeTable
from repro.graph.ingest import write_edges
from repro.pipeline import ScoreStore
from repro.serve import BackboneDaemon, ServeClient
from repro.util.tables import format_table

#: Concurrent clients in the cold burst (one delta each).
N_CLIENTS = 8

#: Warm requests timed for the latency percentiles.
N_WARM = 60

#: Workload size: big enough that a second scoring pass would be
#: unmissable in the cold-burst wall clock.
N_NODES, N_EDGES = 2_000, 150_000

DELTAS = (0.5, 1.0, 1.28, 1.64, 2.0, 2.32, 3.0, 4.0)


def _write_workload(tmp_path):
    rng = np.random.default_rng(11)
    src = rng.integers(0, N_NODES, N_EDGES)
    dst = rng.integers(0, N_NODES, N_EDGES)
    weight = rng.integers(1, 500, N_EDGES).astype(float)
    table = EdgeTable(src, dst, weight, n_nodes=N_NODES, directed=False)
    path = tmp_path / "edges.csv"
    write_edges(table, path)
    return str(path)


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _cold_burst(port, path):
    """N concurrent clients, one delta each; returns replies+latency."""
    replies = [None] * len(DELTAS)
    latencies = [None] * len(DELTAS)

    def one(index, delta):
        client = ServeClient(port=port)
        plan = flow(path, directed=False).method("NC", delta=delta)
        start = time.perf_counter()
        replies[index] = client.run([plan.to_json()], deadline=120.0)
        latencies[index] = time.perf_counter() - start

    threads = [threading.Thread(target=one, args=(i, d))
               for i, d in enumerate(DELTAS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return replies, latencies


def _warm_burst(port, path):
    """Serial warm requests: protocol + extraction cost only."""
    client = ServeClient(port=port)
    artifacts = [flow(path, directed=False).method("NC", delta=d)
                 .to_json() for d in DELTAS]
    latencies = []
    for i in range(N_WARM):
        artifact = artifacts[i % len(artifacts)]
        start = time.perf_counter()
        reply = client.run([artifact], deadline=60.0)
        latencies.append(time.perf_counter() - start)
        assert reply["results"][0]["ok"]
    return latencies


def test_serve_load_coalescing_and_latency(benchmark, tmp_path):
    path = _write_workload(tmp_path)
    store = ScoreStore()

    with BackboneDaemon(port=0, store=store, batch_window=0.05,
                        default_deadline=120.0) as daemon:
        replies, cold = benchmark.pedantic(
            _cold_burst, args=(daemon.port, path), rounds=1,
            iterations=1)
        warm = _warm_burst(daemon.port, path)
        status = ServeClient(port=daemon.port).status()

    # Every client served, every result correct.
    assert all(r["results"][0]["ok"] for r in replies)
    local = {delta: flow(path, directed=False)
             .method("NC", delta=delta).run() for delta in DELTAS}
    for reply, delta in zip(replies, DELTAS):
        result = reply["results"][0]
        assert result["backbone"]["m"] == local[delta].backbone.m
        assert result["cache_key"] == local[delta].cache_key

    # Cross-client coalescing, store-verified: N clients, one scoring
    # pass (NC's delta is extraction-only, so one cache key).
    assert store.stats.puts == 1, store.stats.summary()
    assert store.stats.misses == 1, store.stats.summary()
    assert any(json.loads(json.dumps(r["batch"]))["clients"] >= 2
               for r in replies), \
        "no two clients shared a batch; admission window broken"

    p50_cold = _percentile(cold, 0.50)
    p99_cold = _percentile(cold, 0.99)
    p50_warm = _percentile(warm, 0.50)
    p99_warm = _percentile(warm, 0.99)
    throughput = N_WARM / sum(warm)

    emit(format_table(
        ("phase", "requests", "p50 (s)", "p99 (s)"),
        [("cold burst (concurrent)", str(len(cold)),
          f"{p50_cold:.4f}", f"{p99_cold:.4f}"),
         ("warm (serial)", str(N_WARM),
          f"{p50_warm:.4f}", f"{p99_warm:.4f}")],
        title=f"daemon load: {N_CLIENTS} clients, "
              f"{N_EDGES}-edge source"))
    emit(f"warm throughput: {throughput:.1f} req/s; "
         f"store: {store.stats.summary()}")

    record_bench(
        "serve_load",
        clients=N_CLIENTS, warm_requests=N_WARM, n_edges=N_EDGES,
        scoring_passes=store.stats.puts,
        coalesced_batches=status["daemon"]["coalesced_batches"],
        cold_p50_s=round(p50_cold, 5), cold_p99_s=round(p99_cold, 5),
        warm_p50_s=round(p50_warm, 5), warm_p99_s=round(p99_warm, 5),
        warm_mean_s=round(statistics.mean(warm), 5),
        warm_throughput_rps=round(throughput, 1))

    # Warm requests must be far cheaper than the cold scoring burst.
    assert p50_warm < p50_cold, \
        "warm requests are not benefiting from the warm store"
