"""Delta-method variance of the transformed lift.

Paper Section IV. With ``c_ij = (κ N_ij - 1) / (κ N_ij + 1)`` and κ a
function of ``N_ij`` through the marginals, the first-order delta method
gives

``V[c_ij] = V[N_ij] * ( 2 (κ + N_ij dκ/dN_ij) / (κ N_ij + 1)^2 )^2``

with ``V[N_ij] = N.. P_ij (1 - P_ij)`` evaluated at the posterior mean of
``P_ij`` so that sparse edges keep a strictly positive variance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.edge_table import EdgeTable
from ..stats.distributions import binomial_variance
from .lift import kappa, kappa_derivative
from .posterior import PosteriorResult, posterior_probability


def edge_weight_variance(table: EdgeTable,
                         posterior: Optional[PosteriorResult] = None,
                         use_posterior: bool = True) -> np.ndarray:
    """Binomial variance of ``N_ij`` (paper Eq. 2).

    ``use_posterior=False`` switches to the plug-in probability — the
    estimator the paper argues against — for ablation studies.
    """
    total = table.grand_total
    if use_posterior:
        if posterior is None:
            posterior = posterior_probability(table)
        probability = posterior.mean
    else:
        probability = table.weight / total
    return binomial_variance(total, probability)


def transformed_lift_variance(table: EdgeTable,
                              posterior: Optional[PosteriorResult] = None,
                              use_posterior: bool = True) -> np.ndarray:
    """``V[c_ij]``: the variance of the symmetric lift score.

    Rows with degenerate marginals (infinite κ) get zero variance; their
    score is pinned at the boundary and they are never selected by the
    δ filter anyway.
    """
    kappa_values = kappa(table)
    derivative = kappa_derivative(table)
    weight_variance = edge_weight_variance(table, posterior=posterior,
                                           use_posterior=use_posterior)
    finite = np.isfinite(kappa_values)
    numerator = 2.0 * (kappa_values + table.weight * derivative)
    denominator = (kappa_values * table.weight + 1.0) ** 2
    factor = np.zeros(table.m, dtype=np.float64)
    factor[finite] = numerator[finite] / denominator[finite]
    return weight_variance * factor ** 2


def transformed_lift_sdev(table: EdgeTable,
                          posterior: Optional[PosteriorResult] = None,
                          use_posterior: bool = True) -> np.ndarray:
    """Standard deviation of the transformed lift."""
    variance = transformed_lift_variance(table, posterior=posterior,
                                         use_posterior=use_posterior)
    return np.sqrt(np.clip(variance, 0.0, None))
