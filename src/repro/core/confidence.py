"""Confidence intervals and edge-comparison tests on NC scores.

The paper (Section I) highlights that, beyond pruning, the NC framework's
per-edge standard deviations "can also be used more generally, for
instance to determine whether two edges differ significantly from one
another in strength". This module provides exactly that API, which the
p-value variant (footnote 2) cannot offer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..stats.distributions import normal_quantile, normal_sf
from ..util.validation import require
from .noise_corrected import NoiseCorrectedScores


@dataclass(frozen=True)
class EdgeComparison:
    """Result of testing whether two edges differ in strength."""

    difference: float
    standard_error: float
    z_statistic: float
    p_value: float

    def significant(self, level: float = 0.05) -> bool:
        """Two-sided significance at the given level."""
        return bool(self.p_value < level)


def confidence_intervals(scores: NoiseCorrectedScores,
                         level: float = 0.95
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Normal-approximation CIs for every edge's transformed lift.

    Returns ``(lower, upper)`` arrays at the requested two-sided
    confidence ``level``.
    """
    require(0.0 < level < 1.0, f"level must be in (0, 1), got {level}")
    require(scores.sdev is not None, "scores must carry standard deviations")
    z = float(normal_quantile(0.5 + level / 2.0))
    margin = z * scores.sdev
    return scores.score - margin, scores.score + margin


def compare_edges(scores: NoiseCorrectedScores, first: int,
                  second: int) -> EdgeComparison:
    """Test whether edges ``first`` and ``second`` differ significantly.

    Treats the two transformed lifts as independent normals with the
    estimated standard deviations; the z-statistic is their difference
    over the pooled standard error.
    """
    require(scores.sdev is not None, "scores must carry standard deviations")
    m = scores.m
    for index in (first, second):
        require(0 <= index < m, f"edge index {index} out of range [0, {m})")
    difference = float(scores.score[first] - scores.score[second])
    standard_error = float(np.sqrt(scores.sdev[first] ** 2
                                   + scores.sdev[second] ** 2))
    if standard_error == 0.0:
        z = np.inf if difference != 0 else 0.0
    else:
        z = difference / standard_error
    p_value = float(2.0 * normal_sf(abs(z)))
    return EdgeComparison(difference=difference,
                          standard_error=standard_error,
                          z_statistic=float(z), p_value=min(p_value, 1.0))
