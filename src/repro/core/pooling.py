"""Multi-year pooling and change detection on NC scores.

The paper's conclusion sketches a future-work direction: "we plan to
study whether it is possible to distinguish real from spurious changes
in networks". The NC machinery already provides everything needed —
each yearly snapshot yields a score and a standard deviation per edge,
so changes can be z-tested and repeated measurements pooled by inverse
variance. This module implements that extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..backbones.base import ScoredEdges
from ..graph.edge_table import EdgeTable
from ..stats.distributions import normal_sf
from ..util.validation import require
from .noise_corrected import NoiseCorrectedBackbone


@dataclass(frozen=True)
class PooledScores:
    """Inverse-variance pooled NC scores across snapshots.

    ``score`` is the precision-weighted mean of the per-year transformed
    lifts; ``sdev`` is the pooled standard error. Pairs are the union of
    all years' edges (a year where the pair is absent contributes a
    boundary score of -1 with the variance of a zero-weight edge — i.e.
    honest uncertainty, not false confidence).
    """

    table: EdgeTable
    score: np.ndarray
    sdev: np.ndarray
    n_years: int

    def as_scored_edges(self) -> ScoredEdges:
        """Adapt to the common backbone interface."""
        return ScoredEdges(table=self.table, score=self.score,
                           method="Noise-Corrected (pooled)",
                           sdev=self.sdev)

    def backbone(self, delta: float = 1.64) -> EdgeTable:
        """Delta filter on the pooled scores."""
        require(delta >= 0, "delta must be non-negative")
        return self.table.subset(self.score - delta * self.sdev > 0)


def _aligned_scores(years: Sequence[EdgeTable]
                    ) -> Tuple[EdgeTable, np.ndarray, np.ndarray]:
    """Score every year over the union of observed pairs.

    Returns ``(union_table, scores, variances)`` with per-year rows
    stacked along axis 0.
    """
    require(len(years) >= 1, "need at least one snapshot")
    directed = years[0].directed
    n_nodes = years[0].n_nodes
    for year in years:
        require(year.directed == directed and year.n_nodes == n_nodes,
                "snapshots must share directedness and node universe")
    union = years[0].without_self_loops()
    for year in years[1:]:
        union = union.union(year.without_self_loops())
    src, dst = union.src, union.dst

    method = NoiseCorrectedBackbone()
    scores = np.empty((len(years), union.m))
    variances = np.empty((len(years), union.m))
    for row, year in enumerate(years):
        # Rebuild each year over the union pair set so every pair gets a
        # score (zero weight where absent).
        dense = year.to_dense()
        weights = dense[src, dst]
        aligned = EdgeTable(src, dst, weights, n_nodes=n_nodes,
                            directed=directed, coalesce=False)
        # score() keeps zero-weight rows (only self-loops are removed),
        # so row alignment with the union pair set is preserved.
        scored = method.score(aligned)
        scores[row] = scored.score
        variances[row] = np.maximum(scored.sdev, 1e-12) ** 2
    return union, scores, variances


def pool_years(years: Sequence[EdgeTable]) -> PooledScores:
    """Pool NC scores across snapshots by inverse-variance weighting."""
    require(len(years) >= 2, "pooling needs at least two snapshots")
    union, scores, variances = _aligned_scores(years)
    precision = 1.0 / variances
    pooled_variance = 1.0 / precision.sum(axis=0)
    pooled_score = (scores * precision).sum(axis=0) * pooled_variance
    return PooledScores(table=union, score=pooled_score,
                        sdev=np.sqrt(pooled_variance),
                        n_years=len(years))


@dataclass(frozen=True)
class EdgeChange:
    """A tested year-on-year edge change."""

    src: int
    dst: int
    score_before: float
    score_after: float
    z_statistic: float
    p_value: float

    @property
    def difference(self) -> float:
        return self.score_after - self.score_before


def significant_changes(before: EdgeTable, after: EdgeTable,
                        level: float = 0.05) -> List[EdgeChange]:
    """Edges whose NC score moved significantly between two snapshots.

    This is the "real vs spurious change" test: a weight jump only
    counts as a real change when it exceeds what the two years' pooled
    score uncertainty can explain.
    """
    union, scores, variances = _aligned_scores([before, after])
    standard_error = np.sqrt(variances[0] + variances[1])
    with np.errstate(divide="ignore", invalid="ignore"):
        z = (scores[1] - scores[0]) / standard_error
    z = np.where(standard_error > 0, z, 0.0)
    p_values = 2.0 * normal_sf(np.abs(z))
    out: List[EdgeChange] = []
    for row in np.flatnonzero(p_values < level):
        out.append(EdgeChange(src=int(union.src[row]),
                              dst=int(union.dst[row]),
                              score_before=float(scores[0, row]),
                              score_after=float(scores[1, row]),
                              z_statistic=float(z[row]),
                              p_value=float(p_values[row])))
    out.sort(key=lambda change: change.p_value)
    return out
