"""The paper's contribution: the Noise-Corrected backbone."""

from .confidence import (EdgeComparison, compare_edges,
                         confidence_intervals)
from .lift import (edge_marginals, expected_weights, kappa,
                   kappa_derivative, lift, transform_lift_values,
                   transformed_lift)
from .noise_corrected import (NoiseCorrectedBackbone,
                              NoiseCorrectedPValue, NoiseCorrectedScores)
from .multilayer import (MultilayerNetwork, MultilayerScores,
                         multilayer_noise_corrected)
from .pooling import (EdgeChange, PooledScores, pool_years,
                      significant_changes)
from .posterior import (PosteriorResult, plug_in_probability,
                        posterior_probability)
from .variance import (edge_weight_variance, transformed_lift_sdev,
                       transformed_lift_variance)

__all__ = [
    "EdgeChange",
    "EdgeComparison",
    "MultilayerNetwork",
    "MultilayerScores",
    "multilayer_noise_corrected",
    "NoiseCorrectedBackbone",
    "NoiseCorrectedPValue",
    "NoiseCorrectedScores",
    "PooledScores",
    "PosteriorResult",
    "pool_years",
    "significant_changes",
    "compare_edges",
    "confidence_intervals",
    "edge_marginals",
    "edge_weight_variance",
    "expected_weights",
    "kappa",
    "kappa_derivative",
    "lift",
    "plug_in_probability",
    "posterior_probability",
    "transform_lift_values",
    "transformed_lift",
    "transformed_lift_sdev",
    "transformed_lift_variance",
]
