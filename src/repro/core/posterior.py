"""Bayesian estimation of the interaction probability ``P_ij``.

Paper Section IV, Eqs. 3–8. The plug-in estimate ``P̂_ij = N_ij / N..``
degenerates for sparse data: zero-weight node pairs would get zero
variance, i.e. "no measurement error", exactly where information is
scarcest. The fix is a beta-binomial posterior whose prior moments come
from a hypergeometric edge-generation story (node ``i`` draws destination
nodes at random as its total weight grows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.edge_table import EdgeTable
from ..stats.distributions import hypergeometric_prior_moments
from .lift import edge_marginals


@dataclass(frozen=True)
class PosteriorResult:
    """Per-edge posterior for ``P_ij``.

    Attributes
    ----------
    mean:
        Posterior expectation of ``P_ij`` — always strictly positive, so
        downstream variance estimates never degenerate.
    alpha, beta:
        Posterior beta parameters ``(N_ij + α, N.. - N_ij + β)``.
    prior_mean, prior_variance:
        The hypergeometric prior moments.
    fallback:
        Boolean mask of edges where the prior was infeasible for a beta
        fit (degenerate marginals, e.g. one node holding all weight) and
        the clipped plug-in estimate was used instead.
    """

    mean: np.ndarray
    alpha: np.ndarray
    beta: np.ndarray
    prior_mean: np.ndarray
    prior_variance: np.ndarray
    fallback: np.ndarray

    def variance(self) -> np.ndarray:
        """Posterior variance of ``P_ij`` (beta variance, Eq. 6)."""
        total = self.alpha + self.beta
        with np.errstate(divide="ignore", invalid="ignore"):
            out = (self.alpha * self.beta) / (total ** 2 * (total + 1.0))
        return np.where(np.isfinite(out), out, 0.0)


def posterior_probability(table: EdgeTable) -> PosteriorResult:
    """Posterior of ``P_ij`` for every edge of ``table``.

    Implements Eqs. 4–8: prior moments from
    :func:`~repro.stats.distributions.hypergeometric_prior_moments`,
    method-of-moments ``(α, β)``, conjugate update with the observed
    ``N_ij`` successes out of ``N..`` trials.

    Edges whose prior moments cannot be matched by a beta distribution
    (prior variance not strictly inside ``(0, μ(1-μ))``) fall back to the
    plug-in frequency clipped away from {0, 1}; the ``fallback`` mask
    reports them. On connected count networks this never triggers.
    """
    ni, nj, total = edge_marginals(table)
    weight = table.weight
    prior_mean, prior_variance = hypergeometric_prior_moments(ni, nj, total)

    feasible = ((prior_mean > 0.0) & (prior_mean < 1.0)
                & (prior_variance > 0.0)
                & (prior_variance < prior_mean * (1.0 - prior_mean)))

    alpha_prior = np.zeros_like(prior_mean)
    beta_prior = np.zeros_like(prior_mean)
    mu = prior_mean[feasible]
    var = prior_variance[feasible]
    alpha_prior[feasible] = (mu ** 2 / var) * (1.0 - mu) - mu
    beta_prior[feasible] = mu * ((1.0 - mu) ** 2 / var + 1.0) - 1.0

    alpha_post = weight + alpha_prior
    beta_post = total - weight + beta_prior

    mean = np.empty_like(prior_mean)
    with np.errstate(divide="ignore", invalid="ignore"):
        mean[feasible] = (alpha_post[feasible]
                          / (alpha_post[feasible] + beta_post[feasible]))

    fallback = ~feasible
    if np.any(fallback):
        epsilon = 1.0 / (2.0 * total)
        plug_in = weight[fallback] / total
        mean[fallback] = np.clip(plug_in, epsilon, 1.0 - epsilon)
        alpha_post = np.where(fallback, np.nan, alpha_post)
        beta_post = np.where(fallback, np.nan, beta_post)

    return PosteriorResult(mean=mean, alpha=alpha_post, beta=beta_post,
                           prior_mean=prior_mean,
                           prior_variance=prior_variance,
                           fallback=fallback)


def plug_in_probability(table: EdgeTable) -> np.ndarray:
    """The naive estimator ``P̂_ij = N_ij / N..`` (for ablation).

    This is the estimator the paper *rejects*: it assigns zero variance
    to zero-weight pairs. Exposed so the ablation benchmark can quantify
    the difference.
    """
    return table.weight / table.grand_total
