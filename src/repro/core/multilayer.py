"""Multilayer Noise-Corrected backboning (paper future work, Section VII).

The paper closes with: "we can extend the NC methodology to consider
multilayer networks, where nodes in different layers are coupled
together and where these couplings influence the backbone structure."
This module implements that extension with two null models:

* **independent** — each layer is backboned on its own marginals, as if
  the other layers did not exist (the baseline);
* **coupled** — node propensities are pooled across layers and each
  layer only contributes its *activity share*:

  ``E[N_ij^l] = (N_i.^tot * N_.j^tot / N..^tot) * (N..^l / N..^tot)``

  Under the coupled null a node that is a hub in *any* layer is expected
  to attract weight in *every* layer, so an edge is only salient when it
  beats the node pair's cross-layer propensity — the "couplings
  influence the backbone" behaviour the paper anticipates.

Scores and variances reuse the single-layer NC machinery: within each
layer the coupled null rescales the marginals, then the transformed
lift and its delta-method variance follow unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from ..backbones.base import ScoredEdges
from ..graph.edge_table import EdgeTable
from ..stats.distributions import (binomial_variance,
                                   hypergeometric_prior_moments)
from ..util.validation import require


@dataclass(frozen=True)
class MultilayerScores:
    """Per-layer NC scores under a shared multilayer null model."""

    layers: Dict[str, ScoredEdges]
    null_model: str

    def backbone(self, delta: float = 1.64) -> Dict[str, EdgeTable]:
        """Per-layer δ-filtered backbones."""
        require(delta >= 0, "delta must be non-negative")
        out = {}
        for name, scored in self.layers.items():
            out[name] = scored.table.subset(
                scored.score - delta * scored.sdev > 0)
        return out

    def flattened_backbone(self, delta: float = 1.64) -> EdgeTable:
        """Union of the per-layer backbones over the shared node set."""
        backbones = list(self.backbone(delta).values())
        merged = backbones[0]
        for layer in backbones[1:]:
            merged = merged.union(layer)
        return merged


class MultilayerNetwork:
    """Edge tables per layer over one shared node universe."""

    def __init__(self, layers: Mapping[str, EdgeTable]):
        require(len(layers) >= 1, "need at least one layer")
        names = list(layers)
        first = layers[names[0]]
        for name in names:
            table = layers[name]
            require(table.n_nodes == first.n_nodes,
                    f"layer {name!r} has {table.n_nodes} nodes, expected "
                    f"{first.n_nodes}")
            require(table.directed == first.directed,
                    f"layer {name!r} directedness differs")
        self.layers: Dict[str, EdgeTable] = {
            name: layers[name].without_self_loops() for name in names}
        self.n_nodes = first.n_nodes
        self.directed = first.directed

    def layer_names(self) -> List[str]:
        return list(self.layers)

    def total_out_strength(self) -> np.ndarray:
        """Cross-layer pooled outgoing strength per node."""
        total = np.zeros(self.n_nodes)
        for table in self.layers.values():
            total += table.out_strength()
        return total

    def total_in_strength(self) -> np.ndarray:
        """Cross-layer pooled incoming strength per node."""
        total = np.zeros(self.n_nodes)
        for table in self.layers.values():
            total += table.in_strength()
        return total

    def grand_total(self) -> float:
        """Pooled ``N..`` over all layers."""
        return float(sum(table.grand_total
                         for table in self.layers.values()))


def multilayer_noise_corrected(network: MultilayerNetwork,
                               null_model: str = "coupled"
                               ) -> MultilayerScores:
    """Score every layer's edges under the chosen multilayer null.

    ``null_model="independent"`` reduces exactly to running the
    single-layer NC on each layer. ``"coupled"`` pools node propensities
    across layers (see module docstring).
    """
    require(null_model in ("independent", "coupled"),
            f"unknown null model {null_model!r}")
    scored_layers: Dict[str, ScoredEdges] = {}
    if null_model == "independent":
        from .noise_corrected import NoiseCorrectedBackbone

        method = NoiseCorrectedBackbone()
        for name, table in network.layers.items():
            scored_layers[name] = method.score(table)
        return MultilayerScores(layers=scored_layers,
                                null_model=null_model)

    pooled_out = network.total_out_strength()
    pooled_in = network.total_in_strength()
    pooled_total = network.grand_total()
    require(pooled_total > 1, "multilayer network has no weight")
    for name, table in network.layers.items():
        activity = table.grand_total / pooled_total
        scored_layers[name] = _score_with_marginals(
            table, pooled_out[table.src] * np.sqrt(activity),
            pooled_in[table.dst] * np.sqrt(activity), pooled_total,
            method_name=f"Noise-Corrected (coupled, layer={name})")
    return MultilayerScores(layers=scored_layers, null_model="coupled")


def _score_with_marginals(table: EdgeTable, ni: np.ndarray,
                          nj: np.ndarray, total: float,
                          method_name: str) -> ScoredEdges:
    """Single-layer NC scoring with externally supplied marginals.

    Reimplements the score/variance pipeline of
    :mod:`repro.core.noise_corrected` with ``(N_i., N_.j, N..)`` replaced
    by the coupled-null quantities. The expected weight becomes
    ``ni * nj / total`` and everything else follows the paper's Section
    IV formulas verbatim.
    """
    weight = table.weight
    product = ni * nj
    with np.errstate(divide="ignore"):
        kappa = np.where(product > 0, total / product, np.inf)
    finite = np.isfinite(kappa)
    score = np.full(table.m, -1.0)
    score[finite] = (kappa[finite] * weight[finite] - 1.0) \
        / (kappa[finite] * weight[finite] + 1.0)

    # Posterior for P_ij under the coupled marginals.
    prior_mean, prior_variance = hypergeometric_prior_moments(
        np.clip(ni, 1e-12, None), np.clip(nj, 1e-12, None), total)
    feasible = ((prior_mean > 0) & (prior_mean < 1)
                & (prior_variance > 0)
                & (prior_variance < prior_mean * (1 - prior_mean)))
    posterior_mean = np.clip(weight / total, 1.0 / (2 * total),
                             1 - 1.0 / (2 * total))
    mu = prior_mean[feasible]
    var = prior_variance[feasible]
    alpha = (mu ** 2 / var) * (1 - mu) - mu
    beta = mu * ((1 - mu) ** 2 / var + 1) - 1
    posterior_mean[feasible] = (weight[feasible] + alpha) \
        / (total + alpha + beta)
    weight_variance = binomial_variance(total, posterior_mean)

    derivative = np.zeros(table.m)
    derivative[finite] = (1.0 / product[finite]
                          - total * (ni[finite] + nj[finite])
                          / product[finite] ** 2)
    factor = np.zeros(table.m)
    factor[finite] = (2.0 * (kappa[finite] + weight[finite]
                             * derivative[finite])
                      / (kappa[finite] * weight[finite] + 1.0) ** 2)
    sdev = np.sqrt(np.clip(weight_variance * factor ** 2, 0, None))
    return ScoredEdges(table=table, score=score, method=method_name,
                       sdev=sdev)
