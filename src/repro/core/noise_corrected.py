"""The Noise-Corrected (NC) backbone — the paper's contribution.

The method runs in three steps (paper Section IV):

1. transform edge weights into deviations from their null expectation
   (the symmetric lift score of Eq. 1);
2. attach a standard deviation to each transformed weight via a
   beta-binomial posterior and the delta method;
3. keep an edge iff its score exceeds its expectation (zero) by at least
   ``δ`` standard deviations.

``δ`` is the method's only parameter; 1.28 / 1.64 / 2.32 approximate
one-tailed p-values of 0.1 / 0.05 / 0.01.

A p-value variant (the paper's footnote 2) skips the transformation and
scores edges by the upper tail of ``Binomial(N.., N_i. N_.j / N..²)``; it
cannot provide standard deviations (and therefore no edge-vs-edge
significance tests), which is why the δ formulation is the default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backbones.base import BackboneMethod, ScoredEdges, prepare_table
from ..graph.edge_table import EdgeTable
from .lift import edge_marginals, transformed_lift
from .posterior import PosteriorResult, posterior_probability
from .variance import transformed_lift_sdev


@dataclass(frozen=True)
class NoiseCorrectedScores(ScoredEdges):
    """NC scores plus the intermediate posterior (for diagnostics)."""

    posterior: Optional[PosteriorResult] = None


class NoiseCorrectedBackbone(BackboneMethod):
    """Noise-Corrected backbone with the δ filter.

    Parameters
    ----------
    delta:
        Number of standard deviations by which an edge's transformed
        weight must exceed its null expectation to stay in the backbone.
    use_posterior:
        When ``False``, the plug-in probability estimate replaces the
        beta-binomial posterior (ablation of the paper's Bayesian step).
    """

    name = "Noise-Corrected"
    code = "NC"
    # delta shapes only the filter phase; scores/sdev are delta-free.
    extraction_only_params = ("delta",)

    def __init__(self, delta: float = 1.64, use_posterior: bool = True):
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        self.delta = float(delta)
        self.use_posterior = bool(use_posterior)

    def score(self, table: EdgeTable) -> NoiseCorrectedScores:
        """Return the transformed lift and its standard deviation."""
        table = prepare_table(table)
        posterior = posterior_probability(table) if self.use_posterior \
            else None
        score = transformed_lift(table)
        sdev = transformed_lift_sdev(table, posterior=posterior,
                                     use_posterior=self.use_posterior)
        return NoiseCorrectedScores(table=table, score=score,
                                    method=self.name, sdev=sdev,
                                    posterior=posterior)

    def default_budget(self):
        """The paper's rule: keep ``(i, j)`` iff ``c_ij - δ·sd(c_ij) > 0``."""
        return {"threshold": 0.0}

    def extract_from_scores(self, scored: ScoredEdges,
                            threshold: Optional[float] = None,
                            share: Optional[float] = None,
                            n_edges: Optional[int] = None) -> EdgeTable:
        """δ-adjusted extraction on precomputed (possibly cached) scores.

        All budgets (and the default δ rule) rank by
        ``score - δ·sdev``, so edge-budget matched comparisons respect
        the NC ordering.
        """
        threshold, share, n_edges = self._resolve_budget(threshold, share,
                                                         n_edges)
        if scored.sdev is None:
            raise ValueError("NC extraction needs per-edge sdev; these "
                             "scores carry none")
        adjusted = scored.score - self.delta * scored.sdev
        ranked = ScoredEdges(table=scored.table, score=adjusted,
                             method=self.name, sdev=scored.sdev)
        if threshold is not None:
            return ranked.filter(threshold)
        if share is not None:
            return ranked.top_share(share)
        return ranked.top_k(n_edges)

    def adjusted_scores(self, table: EdgeTable) -> ScoredEdges:
        """Scores shifted by ``-δ·sd`` (the distribution of paper Fig. 2)."""
        scored = self.score(table)
        return ScoredEdges(table=scored.table,
                           score=scored.score - self.delta * scored.sdev,
                           method=self.name, sdev=scored.sdev)


class NoiseCorrectedPValue(BackboneMethod):
    """The footnote-2 variant: direct binomial p-values, no transform.

    Scores are ``1 - p`` so that "higher is more salient" holds across
    the library; ``extract(threshold=1 - p_cut)`` reproduces a p-value
    cut at ``p_cut``.

    Parameters
    ----------
    delta:
        Significance level expressed on the same scale as the δ
        formulation: with no explicit budget, :meth:`extract` keeps
        edges whose p-value is below the one-tailed normal tail of
        ``delta`` (1.28 / 1.64 / 2.32 map to p < 0.1 / 0.05 / 0.01), so
        the two NC variants share one strictness knob.
    """

    name = "Noise-Corrected (p-value)"
    code = "NCp"
    extraction_only_params = ("delta",)

    def __init__(self, delta: float = 1.64):
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        self.delta = float(delta)

    @property
    def p_cut(self) -> float:
        """One-tailed normal p-value equivalent of ``delta``."""
        return 0.5 * math.erfc(self.delta / math.sqrt(2.0))

    def default_budget(self):
        """With no explicit budget, keep edges with ``p < p_cut``."""
        return {"threshold": 1.0 - self.p_cut}

    def score(self, table: EdgeTable) -> ScoredEdges:
        from ..stats import special

        table = prepare_table(table)
        ni, nj, total = edge_marginals(table)
        probability = np.clip((ni * nj) / total ** 2, 0.0, 1.0)
        weight = table.weight
        # P(X >= k) = I_p(k, n - k + 1), valid for 0 < k <= n.
        inside = (weight > 0) & (weight <= total) & (probability > 0) \
            & (probability < 1)
        p_values = np.ones(table.m, dtype=np.float64)
        k = weight[inside]
        p_values[inside] = special.betainc(k, total - k + 1.0,
                                           probability[inside])
        # Degenerate rows: positive weight with zero null probability is
        # maximally surprising.
        p_values[(probability <= 0) & (weight > 0)] = 0.0
        return ScoredEdges(table=table, score=1.0 - p_values,
                           method=self.name)
