"""The Noise-Corrected (NC) backbone — the paper's contribution.

The method runs in three steps (paper Section IV):

1. transform edge weights into deviations from their null expectation
   (the symmetric lift score of Eq. 1);
2. attach a standard deviation to each transformed weight via a
   beta-binomial posterior and the delta method;
3. keep an edge iff its score exceeds its expectation (zero) by at least
   ``δ`` standard deviations.

``δ`` is the method's only parameter; 1.28 / 1.64 / 2.32 approximate
one-tailed p-values of 0.1 / 0.05 / 0.01.

A p-value variant (the paper's footnote 2) skips the transformation and
scores edges by the upper tail of ``Binomial(N.., N_i. N_.j / N..²)``; it
cannot provide standard deviations (and therefore no edge-vs-edge
significance tests), which is why the δ formulation is the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backbones.base import BackboneMethod, ScoredEdges, prepare_table
from ..graph.edge_table import EdgeTable
from .lift import edge_marginals, transformed_lift
from .posterior import PosteriorResult, posterior_probability
from .variance import transformed_lift_sdev


@dataclass(frozen=True)
class NoiseCorrectedScores(ScoredEdges):
    """NC scores plus the intermediate posterior (for diagnostics)."""

    posterior: Optional[PosteriorResult] = None


class NoiseCorrectedBackbone(BackboneMethod):
    """Noise-Corrected backbone with the δ filter.

    Parameters
    ----------
    delta:
        Number of standard deviations by which an edge's transformed
        weight must exceed its null expectation to stay in the backbone.
    use_posterior:
        When ``False``, the plug-in probability estimate replaces the
        beta-binomial posterior (ablation of the paper's Bayesian step).
    """

    name = "Noise-Corrected"
    code = "NC"

    def __init__(self, delta: float = 1.64, use_posterior: bool = True):
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        self.delta = float(delta)
        self.use_posterior = bool(use_posterior)

    def score(self, table: EdgeTable) -> NoiseCorrectedScores:
        """Return the transformed lift and its standard deviation."""
        table = prepare_table(table)
        posterior = posterior_probability(table) if self.use_posterior \
            else None
        score = transformed_lift(table)
        sdev = transformed_lift_sdev(table, posterior=posterior,
                                     use_posterior=self.use_posterior)
        return NoiseCorrectedScores(table=table, score=score,
                                    method=self.name, sdev=sdev,
                                    posterior=posterior)

    def extract(self, table: EdgeTable, threshold: Optional[float] = None,
                share: Optional[float] = None,
                n_edges: Optional[int] = None) -> EdgeTable:
        """Extract the backbone.

        With no explicit budget, applies the paper's rule: keep edge
        ``(i, j)`` iff ``c_ij - δ · sd(c_ij) > 0``. With ``share`` or
        ``n_edges``, ranks edges by the same δ-adjusted score so
        edge-budget matched comparisons respect the NC ordering.
        """
        chosen = [name for name, value in
                  (("threshold", threshold), ("share", share),
                   ("n_edges", n_edges)) if value is not None]
        if len(chosen) > 1:
            raise ValueError("give at most one of threshold/share/n_edges, "
                             f"got {chosen}")
        scored = self.score(table)
        adjusted = scored.score - self.delta * scored.sdev
        ranked = ScoredEdges(table=scored.table, score=adjusted,
                             method=self.name, sdev=scored.sdev)
        if not chosen:
            return ranked.filter(0.0)
        if threshold is not None:
            return ranked.filter(threshold)
        if share is not None:
            return ranked.top_share(share)
        return ranked.top_k(n_edges)

    def adjusted_scores(self, table: EdgeTable) -> ScoredEdges:
        """Scores shifted by ``-δ·sd`` (the distribution of paper Fig. 2)."""
        scored = self.score(table)
        return ScoredEdges(table=scored.table,
                           score=scored.score - self.delta * scored.sdev,
                           method=self.name, sdev=scored.sdev)


class NoiseCorrectedPValue(BackboneMethod):
    """The footnote-2 variant: direct binomial p-values, no transform.

    Scores are ``1 - p`` so that "higher is more salient" holds across
    the library; ``extract(threshold=1 - p_cut)`` reproduces a p-value
    cut at ``p_cut``.
    """

    name = "Noise-Corrected (p-value)"
    code = "NCp"

    def score(self, table: EdgeTable) -> ScoredEdges:
        from scipy import special

        table = prepare_table(table)
        ni, nj, total = edge_marginals(table)
        probability = np.clip((ni * nj) / total ** 2, 0.0, 1.0)
        weight = table.weight
        # P(X >= k) = I_p(k, n - k + 1), valid for 0 < k <= n.
        inside = (weight > 0) & (weight <= total) & (probability > 0) \
            & (probability < 1)
        p_values = np.ones(table.m, dtype=np.float64)
        k = weight[inside]
        p_values[inside] = special.betainc(k, total - k + 1.0,
                                           probability[inside])
        # Degenerate rows: positive weight with zero null probability is
        # maximally surprising.
        p_values[(probability <= 0) & (weight > 0)] = 0.0
        return ScoredEdges(table=table, score=1.0 - p_values,
                           method=self.name)
