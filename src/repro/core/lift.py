"""Expected edge weights and the (transformed) lift.

Paper Section IV. Under the null model, each of the ``N..`` unit
interactions leaving node ``i`` finds destination ``j`` with probability
equal to ``j``'s share of total incoming weight, so

``E[N_ij] = N_i. * N_.j / N..``

The *lift* ``L_ij = N_ij / E[N_ij]`` measures how unexpectedly strong an
edge is; Eq. 1 maps it onto the symmetric score
``(L - 1) / (L + 1) ∈ [-1, 1)`` centred on zero.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.edge_table import EdgeTable


def edge_marginals(table: EdgeTable
                   ) -> Tuple[np.ndarray, np.ndarray, float]:
    """Per-edge ``(N_i., N_.j)`` and the grand total ``N..``.

    For undirected tables the marginals are node strengths on the doubled
    representation, and ``N..`` is twice the stored weight — the same
    convention as the reference implementation.
    """
    out_strength = table.out_strength()
    in_strength = table.in_strength()
    return (out_strength[table.src], in_strength[table.dst],
            table.grand_total)


def expected_weights(table: EdgeTable) -> np.ndarray:
    """Null-model expectation ``E[N_ij]`` per edge."""
    ni, nj, total = edge_marginals(table)
    return ni * nj / total


def lift(table: EdgeTable) -> np.ndarray:
    """Observed over expected weight, ``L_ij``.

    Rows whose expectation is zero (possible only for zero-weight edges
    between otherwise isolated endpoints) get a lift of zero.
    """
    expectation = expected_weights(table)
    out = np.zeros(table.m, dtype=np.float64)
    positive = expectation > 0
    out[positive] = table.weight[positive] / expectation[positive]
    return out


def transformed_lift(table: EdgeTable) -> np.ndarray:
    """The symmetric score of Eq. 1: ``(L - 1) / (L + 1)``.

    A value of 0 means "exactly as expected"; +x and -x are equally far
    from the expectation on either side (the paper's example: lifts 0.1
    and 10 map to -0.81 and +0.81).
    """
    return transform_lift_values(lift(table))


def transform_lift_values(lift_values: np.ndarray) -> np.ndarray:
    """Apply Eq. 1 to raw lift values."""
    lift_values = np.asarray(lift_values, dtype=np.float64)
    return (lift_values - 1.0) / (lift_values + 1.0)


def transformed_lift_matrix(table: EdgeTable) -> np.ndarray:
    """Dense matrix of transformed lifts over *all* node pairs.

    Zero-weight pairs get the boundary score -1 (lift zero). Needed by
    the variance validation (paper Table I), which tracks how an edge's
    score moves across yearly snapshots — including years where the pair
    records no interactions. The diagonal is set to NaN.
    """
    dense = table.to_dense()
    out_strength = table.out_strength()
    in_strength = table.in_strength()
    total = table.grand_total
    expectation = np.outer(out_strength, in_strength) / total
    with np.errstate(divide="ignore", invalid="ignore"):
        lift_matrix = np.where(expectation > 0, dense / expectation, 0.0)
    scores = (lift_matrix - 1.0) / (lift_matrix + 1.0)
    np.fill_diagonal(scores, np.nan)
    return scores


def kappa(table: EdgeTable) -> np.ndarray:
    """The paper's ``κ = 1 / E[N_ij] = N.. / (N_i. N_.j)`` per edge.

    Rows with a zero marginal product get ``κ = inf`` (their lift is
    undefined; callers mask them out).
    """
    ni, nj, total = edge_marginals(table)
    product = ni * nj
    with np.errstate(divide="ignore"):
        return np.where(product > 0, total / product, np.inf)


def kappa_derivative(table: EdgeTable) -> np.ndarray:
    """``dκ/dN_ij`` used by the delta-method variance (paper Section IV).

    Raising ``N_ij`` by one unit raises ``N_i.``, ``N_.j`` and ``N..``
    each by one, hence

    ``dκ/dN_ij = 1/(N_i. N_.j) - N.. (N_i. + N_.j) / (N_i. N_.j)^2``
    """
    ni, nj, total = edge_marginals(table)
    product = ni * nj
    with np.errstate(divide="ignore", invalid="ignore"):
        value = 1.0 / product - total * (ni + nj) / product ** 2
    return np.where(product > 0, value, 0.0)
