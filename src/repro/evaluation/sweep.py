"""Share-of-edges sweeps (the x-axis of paper Figs. 7 and 8).

Each budgeted method is scored once; the sweep then re-filters the same
scores at every requested share. Parameter-free methods (MST, DS)
contribute a single point at their natural edge share, exactly as the
paper plots them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..backbones.base import BackboneMethod
from ..backbones.doubly_stochastic import SinkhornConvergenceError
from ..graph.edge_table import EdgeTable

Metric = Callable[[EdgeTable], float]

#: Default share grid (log-spaced, as in the paper's log-x plots).
DEFAULT_SHARES = (0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class SweepSeries:
    """One method's metric values across edge shares."""

    code: str
    shares: List[float]
    values: List[float]
    parameter_free: bool


def share_sweep(method: BackboneMethod, table: EdgeTable,
                metric: Metric,
                shares: Sequence[float] = DEFAULT_SHARES) -> SweepSeries:
    """Evaluate ``metric`` on the method's backbone at each share.

    Raises ``SinkhornConvergenceError`` through for the caller to map to
    the paper's "n/a" cells.
    """
    if method.parameter_free:
        backbone = method.extract(table)
        share = backbone.m / max(table.without_self_loops().m, 1)
        return SweepSeries(code=method.code, shares=[share],
                           values=[metric(backbone)], parameter_free=True)
    scored = method.score(table)
    values = [metric(backbone)
              for backbone in scored.top_share_many(shares)]
    return SweepSeries(code=method.code, shares=list(shares),
                       values=values, parameter_free=False)


def sweep_methods(methods: Sequence[BackboneMethod], table: EdgeTable,
                  metric: Metric,
                  shares: Sequence[float] = DEFAULT_SHARES,
                  store=None,
                  workers: Optional[int] = None
                  ) -> Dict[str, SweepSeries]:
    """Sweep every method; inapplicable ones map to an empty series.

    ``store`` (a :class:`repro.pipeline.ScoreStore`) serves scored
    tables from cache, and ``workers`` fans scoring out across
    processes. Either knob compiles the sweep into a
    :mod:`repro.flow` plan batch (one plan per method and share,
    served over the shared store); the result is bit-identical to the
    plain serial loop below (the contract asserted by
    ``benchmarks/bench_pipeline_cache.py``).
    """
    if store is not None or workers is not None:
        # Imported lazily: the flow subsystem builds on this module.
        from ..flow.sweep import run_sweep_plans
        return run_sweep_plans(methods, table, metric, shares=shares,
                               store=store, workers=workers)
    out: Dict[str, SweepSeries] = {}
    for method in methods:
        try:
            out[method.code] = share_sweep(method, table, metric,
                                           shares=shares)
        except SinkhornConvergenceError:
            out[method.code] = SweepSeries(code=method.code, shares=[],
                                           values=[],
                                           parameter_free=True)
    return out


def nc_sweep_uses_adjusted_scores(method: BackboneMethod) -> bool:
    """True when the method ranks by delta-adjusted scores in sweeps."""
    return getattr(method, "code", "") == "NC"
