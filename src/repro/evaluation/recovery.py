"""Recovery of a planted backbone under noise (paper Section V-A, Fig. 4).

Each method is given the same edge budget — the size of the true edge
set — and judged by the Jaccard coefficient between its backbone and the
planted edges.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..backbones.base import BackboneMethod
from ..backbones.doubly_stochastic import SinkhornConvergenceError
from ..generators.noise import NoisyNetwork
from ..graph.edge_table import EdgeTable
from ..graph.metrics import jaccard_edge_similarity


def recovery_jaccard(noisy: NoisyNetwork,
                     method: BackboneMethod) -> float:
    """Jaccard between the method's backbone and the planted truth.

    Budgeted methods are asked for exactly ``|E_true|`` edges;
    parameter-free methods (MST, DS) return their natural backbone, as
    in the paper.
    """
    backbone = extract_with_budget(method, noisy.observed,
                                   noisy.n_true_edges)
    return jaccard_edge_similarity(backbone, noisy.truth)


def extract_with_budget(method: BackboneMethod, table: EdgeTable,
                        n_edges: int) -> EdgeTable:
    """Extract a backbone honouring ``n_edges`` where the method allows."""
    if method.parameter_free:
        return method.extract(table)
    return method.extract(table, n_edges=n_edges)


def recovery_by_method(noisy: NoisyNetwork,
                       methods: Sequence[BackboneMethod]
                       ) -> Dict[str, float]:
    """Recovery scores keyed by method code; inapplicable methods get NaN."""
    out: Dict[str, float] = {}
    for method in methods:
        try:
            out[method.code] = recovery_jaccard(noisy, method)
        except SinkhornConvergenceError:
            out[method.code] = float("nan")
    return out
