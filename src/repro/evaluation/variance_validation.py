"""Validation of the NC variance model (paper Section V-C, Table I).

The NC backbone's central estimate is ``V[L̃_ij]``, the variance of each
edge's transformed weight. With several yearly snapshots of the same
network we can confront that prediction with reality: compute each
edge's *observed* variance of ``L̃_ij`` across years and correlate it
with the prediction from a reference year. Table I reports that Pearson
correlation per network.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.lift import transformed_lift_matrix
from ..core.variance import transformed_lift_variance
from ..graph.edge_table import EdgeTable
from ..stats.correlation import CorrelationResult, pearson_test
from ..util.validation import require


def predicted_vs_observed_variance(years: Sequence[EdgeTable],
                                   reference: int = 0
                                   ) -> CorrelationResult:
    """Correlate predicted score variance with the cross-year variance.

    Parameters
    ----------
    years:
        Yearly snapshots of one network (two or more).
    reference:
        Index of the snapshot whose edges define the comparison set and
        whose marginals produce the predictions.
    """
    require(len(years) >= 2, "need at least two yearly snapshots")
    require(0 <= reference < len(years), "reference year out of range")
    base = years[reference].without_self_loops()
    require(base.m >= 3, "reference year has too few edges")

    predicted = transformed_lift_variance(base)

    score_stack = np.stack([transformed_lift_matrix(year)
                            for year in years])
    per_pair_variance = score_stack.var(axis=0, ddof=1)
    observed = per_pair_variance[base.src, base.dst]

    keep = np.isfinite(observed) & np.isfinite(predicted)
    return pearson_test(predicted[keep], observed[keep])
