"""Evaluation harness: the paper's four success criteria."""

from .coverage import coverage
from .quality import (QualityResult, backbone_pair_mask, network_design,
                      pair_grid, quality_ratio)
from .recovery import (extract_with_budget, recovery_by_method,
                       recovery_jaccard)
from .stability import (average_stability, stability_spearman,
                        weights_for_pairs)
from .sweep import DEFAULT_SHARES, SweepSeries, share_sweep, sweep_methods
from .variance_validation import predicted_vs_observed_variance

__all__ = [
    "DEFAULT_SHARES",
    "QualityResult",
    "SweepSeries",
    "average_stability",
    "backbone_pair_mask",
    "coverage",
    "extract_with_budget",
    "network_design",
    "pair_grid",
    "predicted_vs_observed_variance",
    "quality_ratio",
    "recovery_by_method",
    "recovery_jaccard",
    "share_sweep",
    "stability_spearman",
    "sweep_methods",
    "weights_for_pairs",
]
