"""Coverage: the paper's Topology criterion (Section V-D).

``Coverage = (|V| - |I_bb|) / (|V| - |I_orig|)`` — the share of the
original network's non-isolated nodes that the backbone keeps connected.
Every node a backbone drops is a node network analysis can say nothing
about, so higher is better and 1.0 is perfect.
"""

from __future__ import annotations

from ..graph.edge_table import EdgeTable
from ..util.validation import require


def coverage(original: EdgeTable, backbone: EdgeTable) -> float:
    """Fraction of the original's non-isolated nodes kept non-isolated."""
    require(original.n_nodes == backbone.n_nodes,
            "backbone and original must share the node universe")
    base = original.non_isolated_count()
    if base == 0:
        return 1.0
    kept_nodes = backbone.non_isolated_count()
    return kept_nodes / base
