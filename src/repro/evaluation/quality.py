"""Quality: backbone-restricted prediction (paper Section V-E, Table II).

For each network an OLS model ``log(N_ij + 1) = beta X_ij + eps`` is fit
twice: on the complete set of node pairs, and restricted to pairs kept by
a backbone. Quality is the ratio ``R²_backbone / R²_full``; above 1 the
backbone *improved* the data's explainability by dropping noise.

The per-network regressor menus mirror the paper's Section V-E:
distance everywhere; populations for flows and stocks; trade for
Business; business for Trade; FDI for Ownership; language and history
for Migration; economic complexity for Country Space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..generators.world import SyntheticWorld
from ..graph.edge_table import EdgeTable
from ..stats.regression import ols
from ..util.validation import require


@dataclass(frozen=True)
class QualityResult:
    """R² of the full and restricted models and their ratio."""

    r2_full: float
    r2_backbone: float
    n_full: int
    n_backbone: int

    @property
    def ratio(self) -> float:
        if self.r2_full <= 0:
            return float("nan")
        return self.r2_backbone / self.r2_full


def pair_grid(n_nodes: int, directed: bool) -> Tuple[np.ndarray, np.ndarray]:
    """All off-diagonal node pairs (ordered when directed)."""
    if directed:
        src, dst = np.nonzero(~np.eye(n_nodes, dtype=bool))
    else:
        src, dst = np.triu_indices(n_nodes, k=1)
    return src.astype(np.int64), dst.astype(np.int64)


def quality_ratio(y: np.ndarray, X: np.ndarray,
                  backbone_mask: np.ndarray) -> QualityResult:
    """Fit the full and backbone-restricted models and compare R²."""
    y = np.asarray(y, dtype=np.float64)
    X = np.asarray(X, dtype=np.float64)
    backbone_mask = np.asarray(backbone_mask, dtype=bool)
    require(len(y) == len(X) == len(backbone_mask),
            "y, X and backbone_mask must align")
    require(backbone_mask.sum() > X.shape[1] + 2,
            "backbone keeps too few pairs to fit the model")
    full = ols(y, X)
    restricted = ols(y[backbone_mask], X[backbone_mask])
    return QualityResult(r2_full=full.r_squared,
                         r2_backbone=restricted.r_squared,
                         n_full=len(y),
                         n_backbone=int(backbone_mask.sum()))


def network_design(world: SyntheticWorld, name: str
                   ) -> Tuple[np.ndarray, np.ndarray, List[str],
                              np.ndarray, np.ndarray]:
    """Response, design matrix and pair indices for one network.

    Returns ``(y, X, names, src, dst)`` over all off-diagonal pairs of
    the network's year-0 snapshot.
    """
    table = world.network(name, 0)
    src, dst = pair_grid(table.n_nodes, table.directed)
    weights = table.to_dense()[src, dst]
    y = np.log1p(weights)
    columns = _design_columns(world, name, src, dst)
    names = list(columns)
    X = np.column_stack([columns[column] for column in names])
    return y, X, names, src, dst


def backbone_pair_mask(backbone: EdgeTable, src: np.ndarray,
                       dst: np.ndarray) -> np.ndarray:
    """Boolean mask of grid pairs present in the backbone.

    For undirected backbones pairs are compared canonically.
    """
    keys = backbone.edge_key_set()
    if backbone.directed:
        pairs = zip(src.tolist(), dst.tolist())
        return np.fromiter(((u, v) in keys for u, v in pairs),
                           dtype=bool, count=len(src))
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    pairs = zip(lo.tolist(), hi.tolist())
    return np.fromiter(((u, v) in keys for u, v in pairs), dtype=bool,
                       count=len(src))


def _design_columns(world: SyntheticWorld, name: str, src: np.ndarray,
                    dst: np.ndarray) -> Dict[str, np.ndarray]:
    cov = world.covariates
    log_distance = np.log(cov.distance_km[src, dst] + 50.0)
    log_pop_src = np.log(cov.population[src])
    log_pop_dst = np.log(cov.population[dst])
    columns: Dict[str, np.ndarray] = {"log_distance": log_distance}
    if name == "business":
        columns["log_pop_origin"] = log_pop_src
        columns["log_pop_destination"] = log_pop_dst
        trade = world.dense_weights("trade", 0)[src, dst]
        columns["log_trade"] = np.log1p(trade)
    elif name == "country_space":
        columns["eci_sum"] = cov.eci[src] + cov.eci[dst]
        columns["eci_gap"] = np.abs(cov.eci[src] - cov.eci[dst])
    elif name == "flight":
        columns["log_pop_origin"] = log_pop_src
        columns["log_pop_destination"] = log_pop_dst
    elif name == "migration":
        columns["log_pop_origin"] = log_pop_src
        columns["log_pop_destination"] = log_pop_dst
        columns["common_language"] = \
            cov.common_language[src, dst].astype(np.float64)
        columns["shared_history"] = \
            cov.shared_history[src, dst].astype(np.float64)
    elif name == "ownership":
        columns["log_fdi"] = np.log1p(cov.fdi[src, dst])
    elif name == "trade":
        columns["log_pop_origin"] = log_pop_src
        columns["log_pop_destination"] = log_pop_dst
        business = world.dense_weights("business", 0)[src, dst]
        columns["log_business"] = np.log1p(business)
    else:
        raise ValueError(f"unknown network {name!r}")
    return columns
