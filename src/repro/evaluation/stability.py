"""Stability: year-on-year persistence (paper Section V-F, Fig. 8).

The underlying phenomena change slowly, so wild weight fluctuations on
backbone edges signal imprecise measurement. Stability is the Spearman
correlation between an edge's weights at ``t`` and ``t+1``, computed over
the edges the backbone keeps (a pair absent in a year counts as weight
zero).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..graph.edge_table import EdgeTable
from ..stats.correlation import spearman
from ..util.validation import require


def weights_for_pairs(table: EdgeTable, src: np.ndarray,
                      dst: np.ndarray) -> np.ndarray:
    """Weights of the given pairs in ``table`` (0 for absent pairs)."""
    dense = table.to_dense()
    return dense[src, dst]


def stability_spearman(year_t: EdgeTable, year_next: EdgeTable,
                       backbone: EdgeTable) -> float:
    """Spearman correlation of backbone-edge weights across two years."""
    require(year_t.n_nodes == year_next.n_nodes == backbone.n_nodes,
            "tables must share the node universe")
    if backbone.m < 3:
        return float("nan")
    src, dst = backbone.src, backbone.dst
    first = weights_for_pairs(year_t, src, dst)
    second = weights_for_pairs(year_next, src, dst)
    return spearman(first, second)


def average_stability(years: Sequence[EdgeTable],
                      backbone: EdgeTable) -> float:
    """Mean Spearman stability over consecutive year pairs."""
    require(len(years) >= 2, "need at least two yearly snapshots")
    values: List[float] = []
    for year_t, year_next in zip(years, years[1:]):
        value = stability_spearman(year_t, year_next, backbone)
        if np.isfinite(value):
            values.append(value)
    if not values:
        return float("nan")
    return float(np.mean(values))
