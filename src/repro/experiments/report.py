"""Shared rendering and paper reference values for experiment output.

Every experiment module renders its result as ASCII rows mirroring the
paper's tables/figure series, with the paper's own numbers alongside
where the paper states them. Absolute agreement is not expected — the
substrate is synthetic — but orderings and magnitudes should correspond.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from ..util.tables import format_series, format_table

#: Paper Table I: correlation between predicted and observed variance.
PAPER_TABLE1 = {
    "business": 0.590,
    "country_space": 0.627,
    "flight": 0.613,
    "migration": 0.064,
    "ownership": 0.872,
    "trade": 0.162,
}

#: Paper Table II: quality ratios per method and network.
PAPER_TABLE2 = {
    "business": {"DS": None, "NT": 0.7766, "DF": 0.9315, "HSS": 1.1341,
                 "MST": 1.1183, "NC": 1.1767},
    "country_space": {"DS": 2.0975, "NT": 0.6834, "DF": 1.4082,
                      "HSS": 1.6549, "MST": 1.9180, "NC": 2.2437},
    "flight": {"DS": None, "NT": 0.5196, "DF": 0.8569, "HSS": 0.9447,
               "MST": 0.7981, "NC": 1.4676},
    "migration": {"DS": 1.5153, "NT": 1.1616, "DF": 2.0715, "HSS": 1.2597,
                  "MST": 1.0036, "NC": 2.1493},
    "ownership": {"DS": None, "NT": 1.2384, "DF": 0.5374, "HSS": 0.9744,
                  "MST": 0.9288, "NC": 1.4165},
    "trade": {"DS": 0.9287, "NT": 0.3935, "DF": 0.9024, "HSS": 0.8662,
              "MST": 0.9532, "NC": 1.1037},
}

#: Paper case-study numbers (Section VI).
PAPER_CASE_STUDY = {
    "flow_correlation_full": 0.390,
    "flow_correlation_df": 0.431,
    "flow_correlation_nc": 0.454,
    "infomap_compression_nc": 0.150,
    "infomap_compression_df": 0.093,
    "modularity_two_digit_nc": 0.192,
    "modularity_two_digit_df": 0.115,
    "nmi_two_digit_nc": 0.423,
    "nmi_two_digit_df": 0.401,
}

#: Paper Fig. 6: the quoted local-correlation extremes.
PAPER_FIG6_RANGE = (0.42, 0.75)

#: Paper Fig. 9: empirical scaling exponent of the NC implementation.
PAPER_FIG9_EXPONENT = 1.14


def comparison_table(title: str, rows: Iterable[Sequence],
                     headers: Sequence[str]) -> str:
    """Uniform experiment rendering."""
    return format_table(headers, rows, title=title)


def series_table(title: str, x_label: str, x_values: Sequence[float],
                 series: Mapping[str, Sequence[float]],
                 precision: int = 4) -> str:
    """Uniform figure-series rendering."""
    return format_series(series, x_label, x_values, title=title,
                         precision=precision)


def mark_best(values: Dict[str, Optional[float]]) -> str:
    """Code of the best (largest, non-None) entry, or '-'."""
    best_code = "-"
    best_value = float("-inf")
    for code, value in values.items():
        if value is not None and value == value and value > best_value:
            best_value = value
            best_code = code
    return best_code
