"""Table II: backbone-restricted prediction quality.

For each network, fix an edge budget (the paper uses the strict HSS
backbone's size), extract every method's backbone at that budget, and
compare the OLS fit on backbone pairs against the full-sample fit.

Expected shape (paper Table II): NC best in every network and the only
method always above 1.0; DS strong where applicable; NT weak; DF
failing badly on Ownership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..backbones.base import BackboneMethod
from ..backbones.doubly_stochastic import SinkhornConvergenceError
from ..backbones.registry import paper_methods
from ..evaluation.quality import (QualityResult, backbone_pair_mask,
                                  network_design, quality_ratio)
from ..generators.world import NETWORK_NAMES, SyntheticWorld
from .report import PAPER_TABLE2, comparison_table, mark_best


@dataclass(frozen=True)
class Table2Result:
    """Quality ratios per network and method (None = n/a)."""

    ratios: Dict[str, Dict[str, Optional[float]]]
    details: Dict[str, Dict[str, Optional[QualityResult]]]
    budgets: Dict[str, int]

    def winners(self) -> Dict[str, str]:
        """Best method per network."""
        return {name: mark_best(by_method)
                for name, by_method in self.ratios.items()}

    def nc_always_above_one(self) -> bool:
        """The paper's headline: NC ratio > 1 on every network."""
        return all((by_method.get("NC") or 0.0) > 1.0
                   for by_method in self.ratios.values())

    def nc_budgeted_win_share(self) -> float:
        """Share of networks where NC beats ALL budget-matched rivals.

        Budget-matched rivals are NT, DF and HSS; MST and DS are
        parameter-free points with far smaller backbones.
        """
        budgeted = ("NT", "DF", "HSS")
        wins = 0
        for by_method in self.ratios.values():
            nc = by_method.get("NC")
            if nc is None:
                continue
            rivals = [by_method.get(code) for code in budgeted]
            rivals = [value for value in rivals
                      if value is not None and value == value]
            if all(nc >= value for value in rivals):
                wins += 1
        return wins / max(len(self.ratios), 1)

    def nc_best_among_budgeted(self) -> bool:
        """NC beats every edge-budget-matched competitor (NT, DF, HSS).

        MST and DS are parameter-free and return far smaller backbones,
        so their ratios are not budget-comparable (the paper lists DS as
        n/a on half the networks).
        """
        budgeted = ("NT", "DF", "HSS")
        for by_method in self.ratios.values():
            nc = by_method.get("NC")
            if nc is None:
                return False
            for code in budgeted:
                other = by_method.get(code)
                if other is not None and other == other and other > nc:
                    return False
        return True


def run(world: Optional[SyntheticWorld] = None,
        networks: Sequence[str] = NETWORK_NAMES,
        methods: Optional[Sequence[BackboneMethod]] = None,
        budget_share: Optional[float] = None,
        store=None, workers: Optional[int] = None) -> Table2Result:
    """Regenerate Table II.

    ``budget_share`` overrides the HSS-derived edge budget with an
    explicit share of edges (useful for fast test runs that skip HSS).
    ``store``/``workers`` compile each network's extractions into a
    :mod:`repro.flow` plan batch served over one shared store: every
    method is scored at most once (optionally across worker
    processes), and every budget-matched extraction — including the
    HSS run that *sets* the budget — reuses those scores. A store
    shared with Fig. 7/8 skips rescoring here entirely (same tables,
    same methods).
    """
    if world is None:
        world = SyntheticWorld(seed=0)
    if methods is None:
        methods = paper_methods()
    by_code = {method.code: method for method in methods}
    use_flow = store is not None or workers is not None
    if use_flow:
        from ..flow import flow as make_flow
        from ..flow import serve
        from ..pipeline.store import ScoreStore
        if store is None:
            store = ScoreStore()  # batch-local deduplication

    ratios: Dict[str, Dict[str, Optional[float]]] = {}
    details: Dict[str, Dict[str, Optional[QualityResult]]] = {}
    budgets: Dict[str, int] = {}
    for name in networks:
        table = world.network(name, 0)
        base = make_flow(table) if use_flow else None

        def extract(method, **budget_kwargs):
            if not use_flow:
                return method.extract(table, **budget_kwargs)
            plan = base.method(method)
            if budget_kwargs:
                plan = plan.budget(**budget_kwargs)
            return plan.run(store=store, workers=workers).backbone

        y, X, _, src, dst = network_design(world, name)
        budget = _edge_budget(by_code, table, budget_share, extract)
        budgets[name] = budget
        backbones = _extract_all(by_code, budget, budget_share, extract,
                                 base, store, workers,
                                 None if not use_flow else serve)
        ratios[name] = {}
        details[name] = {}
        for code in by_code:
            outcome = backbones[code]
            try:
                if isinstance(outcome, Exception):
                    raise outcome
                mask = backbone_pair_mask(outcome, src, dst)
                result = quality_ratio(y, X, mask)
                ratios[name][code] = result.ratio
                details[name][code] = result
            except (SinkhornConvergenceError, ValueError):
                ratios[name][code] = None
                details[name][code] = None
    return Table2Result(ratios=ratios, details=details, budgets=budgets)


def _extract_all(by_code, budget, budget_share, extract, base, store,
                 workers, serve):
    """Every method's backbone (or the exception extraction raised).

    Without a pipeline this is the legacy per-method loop. With one,
    the extractions compile into a single flow plan batch: scoring is
    deduplicated against the store (warm from the budget stage) and
    cold methods fan out across workers.
    """

    def plan_kwargs(code, method):
        if method.parameter_free:
            return {}
        if code == "HSS" and budget_share is None:
            return {}  # its own threshold sets the budget
        return {"n_edges": budget}

    backbones: Dict[str, object] = {}
    if serve is None:
        for code, method in by_code.items():
            try:
                backbones[code] = extract(method, **plan_kwargs(code,
                                                               method))
            except (SinkhornConvergenceError, ValueError) as error:
                backbones[code] = error
        return backbones
    plans = []
    for code, method in by_code.items():
        plan = base.method(method)
        kwargs = plan_kwargs(code, method)
        if kwargs:
            plan = plan.budget(**kwargs)
        plans.append(plan)
    results = serve(plans, store=store, workers=workers)
    for code, result in zip(by_code, results):
        backbones[code] = result.error if result.error is not None \
            else result.backbone
    return backbones


def _edge_budget(by_code: Dict[str, BackboneMethod], table,
                 budget_share: Optional[float], extract) -> int:
    working = table.without_self_loops()
    if budget_share is not None:
        return max(10, int(round(budget_share * working.m)))
    if "HSS" in by_code:
        # The paper's convention: the strict HSS backbone sets the budget.
        hss_backbone = extract(by_code["HSS"])
        if hss_backbone.m >= 10:
            return hss_backbone.m
    return max(10, int(round(0.1 * working.m)))


def format_result(result: Table2Result) -> str:
    """Render ours-vs-paper quality ratios, one row per method."""
    networks = list(result.ratios)
    codes = sorted({code for by_method in result.ratios.values()
                    for code in by_method})
    rows = []
    for code in codes:
        row = [code]
        for name in networks:
            row.append(result.ratios[name].get(code))
        rows.append(row)
    rows.append(["(best)"] + [result.winners()[name]
                              for name in networks])
    paper_rows = []
    for code in codes:
        if code not in PAPER_TABLE2[networks[0]]:
            continue
        paper_rows.append([f"paper {code}"]
                          + [PAPER_TABLE2[name].get(code)
                             for name in networks])
    title = ("Table II — predictive quality ratio R2(backbone)/R2(full); "
             f"budgets per network: {result.budgets}")
    return comparison_table(title, rows + paper_rows,
                            ["method"] + networks)
