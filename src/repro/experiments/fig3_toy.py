"""Fig. 3: the toy hub example separating NC from the Disparity Filter.

A hub (node 1 in the paper, 0 here) is connected to five peripheral
nodes; two peripheral nodes share a weaker direct edge. The DF, judging
each edge from single-node perspectives, finds the hub spokes highly
significant; NC, judging node pairs, finds the weak peripheral edge the
most *unexpected* connection. We tabulate both methods' scores and what
each keeps at the same edge budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..backbones.disparity import DisparityFilter
from ..core.noise_corrected import NoiseCorrectedBackbone
from ..graph.edge_table import EdgeTable
from .report import comparison_table

#: Edge list of the toy graph (hub = 0, peripheral pair = 1 and 2).
TOY_EDGES = ((0, 1, 10.0), (0, 2, 10.0), (0, 3, 12.0), (0, 4, 12.0),
             (0, 5, 12.0), (1, 2, 4.0))
PERIPHERAL_EDGE = (1, 2)


@dataclass(frozen=True)
class Fig3Result:
    """Per-edge scores and keep decisions for NC and DF."""

    edges: List[Tuple[int, int, float]]
    nc_scores: Dict[Tuple[int, int], float]
    df_scores: Dict[Tuple[int, int], float]
    nc_kept: frozenset
    df_kept: frozenset
    budget: int

    def nc_prefers_peripheral(self) -> bool:
        """The figure's claim: NC keeps the 1-2 edge, DF prefers spokes."""
        nc_rank = _rank_of(self.nc_scores, PERIPHERAL_EDGE)
        df_rank = _rank_of(self.df_scores, PERIPHERAL_EDGE)
        return nc_rank < df_rank


def _rank_of(scores: Dict[Tuple[int, int], float],
             edge: Tuple[int, int]) -> int:
    ordered = sorted(scores, key=lambda key: -scores[key])
    return ordered.index(edge)


def run(budget: int = 3) -> Fig3Result:
    """Score the toy graph with both methods and keep ``budget`` edges."""
    table = EdgeTable.from_pairs(TOY_EDGES, directed=False)
    nc_scored = NoiseCorrectedBackbone().score(table)
    df_scored = DisparityFilter().score(table)

    def lookup(scored):
        return {(u, v): float(s) for (u, v, _), s
                in zip(scored.table.iter_edges(), scored.score)}

    return Fig3Result(
        edges=list(table.iter_edges()),
        nc_scores=lookup(nc_scored),
        df_scores=lookup(df_scored),
        nc_kept=frozenset(nc_scored.top_k(budget).edge_key_set()),
        df_kept=frozenset(df_scored.top_k(budget).edge_key_set()),
        budget=budget,
    )


def format_result(result: Fig3Result) -> str:
    """Render the per-edge comparison."""
    rows = []
    for u, v, w in result.edges:
        key = (u, v)
        rows.append([
            f"{u}-{v}", w,
            result.nc_scores[key], "yes" if key in result.nc_kept else "no",
            result.df_scores[key], "yes" if key in result.df_kept else "no",
        ])
    title = (f"Fig. 3 — toy hub: NC vs DF scores and keeps "
             f"(budget {result.budget} edges; hub=0, peripheral pair=1-2)")
    return comparison_table(
        title, rows,
        ["edge", "weight", "NC score", "NC keeps", "DF score", "DF keeps"])
