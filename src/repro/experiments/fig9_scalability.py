"""Fig. 9: running-time scaling of the backbone methods.

ER graphs with average degree 3 and uniform random weights are grown in
size; every method's full score-and-filter time is measured. The paper
reports NC scaling near-linearly (empirically ``O(|E|^1.14)``), matching
NT and DF up to a constant, while HSS and DS are orders of magnitude
slower and cannot run beyond a few thousand edges.

Since HSS moved onto the batched shortest-path engine
(:mod:`repro.graph.sp_engine`) it can be swept well past the paper's
ceiling: pass ``hss_sizes`` to time it on its own (larger) size ladder
while DS keeps the original ``slow_sizes``. The per-edge gap to NC is
still orders of magnitude — the asymptotics did not change, only the
constant — so the paper's qualitative claim is preserved and asserted in
``benchmarks/bench_fig09_scalability.py`` at the raised sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..backbones.registry import get_method
from ..generators.erdos_renyi import (average_degree_edges,
                                      erdos_renyi_gnm, erdos_renyi_gnp)
from ..stats.regression import ols
from ..util.timing import time_call
from .report import PAPER_FIG9_EXPONENT, series_table

#: Node counts for the fast methods (paper: 25k .. 6.5M nodes).
DEFAULT_FAST_SIZES = (2_000, 8_000, 32_000, 128_000)
#: Node counts for the slow methods (paper: a few thousand edges max).
DEFAULT_SLOW_SIZES = (200, 400, 800)
#: Node counts for HSS on the batched engine (one step past the paper's
#: "few thousand edges" ceiling; used when ``hss_sizes`` is requested).
DEFAULT_HSS_SIZES = (800, 1600, 3200)

FAST_CODES = ("NT", "MST", "DF", "NC")
SLOW_CODES = ("DS", "HSS")
#: DS requires total support, which sparse ER graphs lack; its timing
#: therefore uses complete weighted graphs (always balanceable), with
#: node counts chosen so edge counts stay in the few-thousands range —
#: exactly the regime the paper could still run DS/HSS in.
DENSE_CODES = ("DS",)


@dataclass(frozen=True)
class Fig9Result:
    """Timing series and fitted scaling exponents."""

    edge_counts: Dict[str, List[int]]
    seconds: Dict[str, List[float]]

    def exponent(self, code: str) -> float:
        """Fitted slope of log(time) on log(edges) for one method."""
        edges = np.asarray(self.edge_counts[code], dtype=np.float64)
        times = np.asarray(self.seconds[code], dtype=np.float64)
        keep = (edges > 0) & (times > 0)
        if keep.sum() < 2:
            return float("nan")
        fit = ols(np.log(times[keep]), np.log(edges[keep]))
        return float(fit.coefficients[1])

    def nc_near_linear(self, tolerance: float = 0.45) -> bool:
        """Check the paper's claim of ~O(|E|^1.14) scaling for NC."""
        value = self.exponent("NC")
        return bool(np.isfinite(value)
                    and abs(value - PAPER_FIG9_EXPONENT) < tolerance)


def run(fast_sizes: Sequence[int] = DEFAULT_FAST_SIZES,
        slow_sizes: Sequence[int] = DEFAULT_SLOW_SIZES,
        average_degree: float = 3.0, repeats: int = 1,
        seed: int = 0,
        delta: float = 1.64,
        hss_sizes: Optional[Sequence[int]] = None) -> Fig9Result:
    """Regenerate the Fig. 9 timings.

    ``hss_sizes`` optionally gives HSS its own (larger) node-count
    ladder now that it runs on the batched engine; when omitted, HSS
    shares ``slow_sizes`` with DS as in the original figure.
    """
    edge_counts: Dict[str, List[int]] = {}
    seconds: Dict[str, List[float]] = {}

    def record(code: str, sizes: Sequence[int]) -> None:
        method = get_method(code)
        edge_counts[code] = []
        seconds[code] = []
        for index, n_nodes in enumerate(sizes):
            if code in DENSE_CODES:
                # Complete weighted graph: guaranteed balanceable.
                table = erdos_renyi_gnp(n_nodes, 1.0, seed=seed + index)
                n_edges = table.m
            else:
                n_edges = average_degree_edges(n_nodes, average_degree)
                table = erdos_renyi_gnm(n_nodes, n_edges,
                                        seed=seed + index)

            def work():
                if method.parameter_free:
                    return method.extract(table)
                if code == "NC":
                    return method.extract(table, threshold=0.0)
                return method.extract(table, share=0.5)

            elapsed, _ = time_call(work, repeats=repeats)
            edge_counts[code].append(n_edges)
            seconds[code].append(elapsed)

    for code in FAST_CODES:
        record(code, fast_sizes)
    for code in SLOW_CODES:
        if code == "HSS" and hss_sizes is not None:
            record(code, hss_sizes)
        else:
            record(code, slow_sizes)
    return Fig9Result(edge_counts=edge_counts, seconds=seconds)


def format_result(result: Fig9Result) -> str:
    """Render timings and exponents."""
    blocks = []
    fast_edges = result.edge_counts[FAST_CODES[0]]
    fast_series = {code: result.seconds[code] for code in FAST_CODES}
    blocks.append(series_table(
        "Fig. 9 — seconds vs edges (fast methods)", "edges", fast_edges,
        fast_series, precision=5))
    for code in SLOW_CODES:
        blocks.append(series_table(
            f"Fig. 9 — seconds vs edges (slow method {code})", "edges",
            result.edge_counts[code], {code: result.seconds[code]},
            precision=5))
    exponents = ", ".join(
        f"{code}: {result.exponent(code):.2f}"
        for code in FAST_CODES)
    blocks.append(f"fitted scaling exponents: {exponents} "
                  f"(paper NC: ~{PAPER_FIG9_EXPONENT})")
    return "\n\n".join(blocks)
