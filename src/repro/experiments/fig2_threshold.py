"""Fig. 2: how the δ parameter shifts the NC acceptance boundary.

The paper plots, for the Country Space and Business networks, the
distribution of ``L̃_ij - δ·sd(L̃_ij)`` for δ in {1, 2, 3}: higher δ
shifts mass left of zero, shrinking the accepted edge set. We regenerate
the histogram series plus the acceptance share per δ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.noise_corrected import NoiseCorrectedBackbone
from ..generators.world import SyntheticWorld
from .report import comparison_table

DEFAULT_DELTAS = (1.0, 2.0, 3.0)
DEFAULT_NETWORKS = ("country_space", "business")


@dataclass(frozen=True)
class Fig2Result:
    """Adjusted-score distributions per network and δ."""

    deltas: List[float]
    histograms: Dict[str, Dict[float, Tuple[np.ndarray, np.ndarray]]]
    accepted_share: Dict[str, Dict[float, float]]


def run(world: Optional[SyntheticWorld] = None,
        networks: Sequence[str] = DEFAULT_NETWORKS,
        deltas: Sequence[float] = DEFAULT_DELTAS,
        n_bins: int = 30) -> Fig2Result:
    """Regenerate the Fig. 2 distributions."""
    if world is None:
        world = SyntheticWorld(seed=0)
    histograms: Dict[str, Dict[float, Tuple[np.ndarray, np.ndarray]]] = {}
    accepted: Dict[str, Dict[float, float]] = {}
    for name in networks:
        table = world.network(name, 0)
        histograms[name] = {}
        accepted[name] = {}
        for delta in deltas:
            scored = NoiseCorrectedBackbone(delta=delta) \
                .adjusted_scores(table)
            counts, edges = np.histogram(scored.score, bins=n_bins)
            share = counts / max(scored.m, 1)
            histograms[name][delta] = (edges, share)
            accepted[name][delta] = float((scored.score > 0).mean())
    return Fig2Result(deltas=list(deltas), histograms=histograms,
                      accepted_share=accepted)


def format_result(result: Fig2Result) -> str:
    """Render acceptance shares (the figure's take-away) per network."""
    rows = []
    for name, by_delta in result.accepted_share.items():
        for delta, share in by_delta.items():
            rows.append([name, delta, share])
    title = ("Fig. 2 — share of edges right of the acceptance boundary "
             "as delta grows (higher delta -> stricter backbone)")
    return comparison_table(title, rows,
                            ["network", "delta", "accepted share"])


def monotone_in_delta(result: Fig2Result) -> bool:
    """Check the figure's core claim: acceptance falls as δ rises."""
    for by_delta in result.accepted_share.values():
        shares = [by_delta[d] for d in sorted(by_delta)]
        if any(a < b - 1e-12 for a, b in zip(shares, shares[1:])):
            return False
    return True
