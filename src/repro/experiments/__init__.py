"""Experiment modules, one per table/figure of the paper.

===============  ===================================================
Module           Paper artifact
===============  ===================================================
fig1_example     Fig. 1 — hairball -> backbone -> communities
fig2_threshold   Fig. 2 — delta threshold distributions
fig3_toy         Fig. 3 — toy hub: NC vs DF
fig4_synthetic   Fig. 4 — recovery vs noise on BA networks
fig5_weights     Fig. 5 — edge weight CCDFs
fig6_local_...   Fig. 6 — local weight correlations
table1_variance  Table I — variance model validation
fig7_topology    Fig. 7 — coverage sweeps
fig8_stability   Fig. 8 — stability sweeps
table2_quality   Table II — OLS quality ratios
fig9_scalability Fig. 9 — running time scaling
case_study       Section VI — occupations and labor flows
runner           run everything, render the full report
===============  ===================================================
"""

from . import (case_study, fig1_example, fig2_threshold, fig3_toy,
               fig4_synthetic, fig5_weights, fig6_local_correlation,
               fig7_topology, fig8_stability, fig9_scalability, report,
               runner, table1_variance, table2_quality)

__all__ = [
    "case_study",
    "fig1_example",
    "fig2_threshold",
    "fig3_toy",
    "fig4_synthetic",
    "fig5_weights",
    "fig6_local_correlation",
    "fig7_topology",
    "fig8_stability",
    "fig9_scalability",
    "report",
    "runner",
    "table1_variance",
    "table2_quality",
]
