"""Fig. 1: backboning turns a hairball into recoverable communities.

The paper's opening example: a ~150-node network where nearly every pair
is connected; "the density of connections leads the community discovery
algorithm to classify all nodes into the same giant community", while on
the NC backbone the ground-truth classes re-emerge. Label propagation is
the community algorithm here — on the raw hairball it collapses exactly
as the paper describes, and on the backbone it recovers the planted
labels. We quantify with NMI before and after backboning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..community.label_propagation import label_propagation
from ..community.nmi import normalized_mutual_information
from ..community.partition import Partition
from ..core.noise_corrected import NoiseCorrectedBackbone
from ..generators.planted import planted_partition
from .report import comparison_table


@dataclass(frozen=True)
class Fig1Result:
    """Community recovery before and after NC backboning."""

    n_nodes: int
    edges_raw: int
    edges_backbone: int
    communities_raw: int
    communities_backbone: int
    nmi_raw: float
    nmi_backbone: float


def run(n_nodes: int = 151, n_communities: int = 5, delta: float = 2.32,
        seed: int = 0) -> Fig1Result:
    """Regenerate the Fig. 1 demonstration."""
    planted = planted_partition(n_nodes=n_nodes,
                                n_communities=n_communities, seed=seed)
    truth = Partition(planted.labels)
    raw_partition = label_propagation(planted.table, seed=seed)

    backbone = NoiseCorrectedBackbone(delta=delta).extract(planted.table)
    backbone_partition = label_propagation(backbone, seed=seed)

    return Fig1Result(
        n_nodes=n_nodes,
        edges_raw=planted.table.m,
        edges_backbone=backbone.m,
        communities_raw=raw_partition.n_communities,
        communities_backbone=backbone_partition.n_communities,
        nmi_raw=normalized_mutual_information(raw_partition, truth),
        nmi_backbone=normalized_mutual_information(backbone_partition,
                                                   truth),
    )


def format_result(result: Fig1Result) -> str:
    """Render the before/after comparison."""
    rows = [
        ["raw hairball", result.edges_raw, result.communities_raw,
         result.nmi_raw],
        ["NC backbone", result.edges_backbone,
         result.communities_backbone, result.nmi_backbone],
    ]
    title = (f"Fig. 1 — community recovery on a planted partition "
             f"(n={result.n_nodes}; NMI vs ground truth)")
    return comparison_table(title, rows,
                            ["network", "edges", "communities", "NMI"])
