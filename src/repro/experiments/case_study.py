"""Section VI case study: skill relatedness and occupational labor flows.

Pipeline, mirroring the paper:

1. build the occupation skill co-occurrence network (synthetic O*NET);
2. extract the NC backbone (δ filter) and a DF backbone of the same
   size ("roughly the same number of connections", as in the paper;
   HSS and DS are omitted — in the paper DS was not computable on this
   network and HSS did not finish);
3. compare topology (nodes kept), community structure (Infomap map
   equation compression, modularity and NMI against the expert two-digit
   classification);
4. fit the flow model ``F_ij = b1 C_ij + b2 S_i. + b3 S_.j`` on all
   pairs and restricted to each backbone's pairs, reporting the model
   correlation sqrt(R²).

Expected orderings (paper): NC keeps ~50 more nodes than DF; Infomap
compression 15.0% vs 9.3%; modularity .192 vs .115; NMI .423 vs .401;
flow correlation .390 (full) < .431 (DF) < .454 (NC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backbones.disparity import DisparityFilter
from ..community.infomap import compression_gain, infomap
from ..community.modularity import modularity
from ..community.nmi import normalized_mutual_information
from ..community.partition import Partition
from ..core.noise_corrected import NoiseCorrectedBackbone
from ..generators.occupations import (OccupationStudy,
                                      generate_occupation_study)
from ..graph.edge_table import EdgeTable
from ..stats.regression import ols
from .report import PAPER_CASE_STUDY, comparison_table


@dataclass(frozen=True)
class BackboneReport:
    """Per-backbone case-study metrics."""

    n_edges: int
    nodes_kept: int
    infomap_compression: float
    modularity_two_digit: float
    nmi_infomap_two_digit: float
    flow_correlation: float


@dataclass(frozen=True)
class CaseStudyResult:
    """Full case-study comparison."""

    n_occupations: int
    flow_correlation_full: float
    nc: BackboneReport
    df: BackboneReport

    def orderings_hold(self) -> bool:
        """The paper's qualitative claims as one boolean."""
        return (self.nc.nodes_kept >= self.df.nodes_kept
                and self.nc.infomap_compression
                > self.df.infomap_compression
                and self.nc.modularity_two_digit
                > self.df.modularity_two_digit
                and self.flow_correlation_full < self.df.flow_correlation
                and self.df.flow_correlation < self.nc.flow_correlation)


def run(study: Optional[OccupationStudy] = None, delta: float = 1.64,
        seed: int = 0) -> CaseStudyResult:
    """Run the full case study."""
    if study is None:
        study = generate_occupation_study(seed=seed)
    table = study.cooccurrence
    nc_backbone = NoiseCorrectedBackbone(delta=delta).extract(table)
    # "Roughly the same number of connections" for the DF comparison.
    df_backbone = DisparityFilter().extract(table,
                                            n_edges=nc_backbone.m)

    full_correlation = _flow_model_correlation(study, None)
    nc_report = _report(study, nc_backbone, seed)
    df_report = _report(study, df_backbone, seed)
    return CaseStudyResult(n_occupations=study.n_occupations,
                           flow_correlation_full=full_correlation,
                           nc=nc_report, df=df_report)


def _report(study: OccupationStudy, backbone: EdgeTable,
            seed: int) -> BackboneReport:
    two_digit = Partition(study.two_digit)
    communities = infomap(backbone, seed=seed)
    return BackboneReport(
        n_edges=backbone.m,
        nodes_kept=backbone.non_isolated_count(),
        infomap_compression=compression_gain(backbone, communities),
        modularity_two_digit=modularity(backbone, two_digit),
        nmi_infomap_two_digit=normalized_mutual_information(communities,
                                                            two_digit),
        flow_correlation=_flow_model_correlation(study, backbone),
    )


def _flow_model_correlation(study: OccupationStudy,
                            backbone: Optional[EdgeTable]) -> float:
    """sqrt(R²) of the paper's flow model, optionally restricted."""
    src, dst = study.flow_pairs()
    flows = study.flows[src, dst]
    common_skills = study.cooccurrence.to_dense()[src, dst]
    switch_out = study.flows.sum(axis=1) - np.diag(study.flows)
    switch_in = study.flows.sum(axis=0) - np.diag(study.flows)
    X = np.column_stack([common_skills, switch_out[src], switch_in[dst]])

    if backbone is None:
        mask = np.ones(len(src), dtype=bool)
    else:
        keys = backbone.edge_key_set()
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        mask = np.fromiter(((u, v) in keys
                            for u, v in zip(lo.tolist(), hi.tolist())),
                           dtype=bool, count=len(src))
    fit = ols(flows[mask], X[mask],
              names=["common_skills", "origin_size", "destination_size"])
    return float(np.sqrt(max(fit.r_squared, 0.0)))


def format_result(result: CaseStudyResult) -> str:
    """Render ours vs the paper's case-study numbers."""
    paper = PAPER_CASE_STUDY
    rows = [
        ["nodes kept", result.nc.nodes_kept, result.df.nodes_kept,
         "NC keeps ~50 more"],
        ["edges", result.nc.n_edges, result.df.n_edges, "matched"],
        ["infomap compression", result.nc.infomap_compression,
         result.df.infomap_compression,
         f"{paper['infomap_compression_nc']} vs "
         f"{paper['infomap_compression_df']}"],
        ["modularity (2-digit)", result.nc.modularity_two_digit,
         result.df.modularity_two_digit,
         f"{paper['modularity_two_digit_nc']} vs "
         f"{paper['modularity_two_digit_df']}"],
        ["NMI (infomap, 2-digit)", result.nc.nmi_infomap_two_digit,
         result.df.nmi_infomap_two_digit,
         f"{paper['nmi_two_digit_nc']} vs {paper['nmi_two_digit_df']}"],
        ["flow correlation", result.nc.flow_correlation,
         result.df.flow_correlation,
         f"{paper['flow_correlation_nc']} vs "
         f"{paper['flow_correlation_df']}"],
        ["flow correlation (full net)", result.flow_correlation_full,
         result.flow_correlation_full,
         str(paper["flow_correlation_full"])],
    ]
    title = (f"Case study — occupation skill relatedness "
             f"({result.n_occupations} occupations)")
    return comparison_table(title, rows,
                            ["metric", "NC", "DF", "paper"])
