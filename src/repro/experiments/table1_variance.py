"""Table I: validating the NC variance model against observed variance.

For each network, the predicted variance of every edge's transformed
weight (from the reference year) is correlated with the edge's observed
score variance across the yearly snapshots. The paper reports positive,
highly significant correlations for all six networks (0.064–0.872); the
reproduction must match the sign and significance, not the exact values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..evaluation.variance_validation import predicted_vs_observed_variance
from ..generators.world import NETWORK_NAMES, SyntheticWorld
from ..stats.correlation import CorrelationResult
from .report import PAPER_TABLE1, comparison_table


@dataclass(frozen=True)
class Table1Result:
    """Correlation per network, with p-values."""

    correlations: Dict[str, CorrelationResult]

    def all_positive_and_significant(self, level: float = 1e-6) -> bool:
        """The table's claim: every correlation > 0 with p < 1e-9."""
        return all(result.coefficient > 0 and result.p_value < level
                   for result in self.correlations.values())


def run(world: Optional[SyntheticWorld] = None) -> Table1Result:
    """Regenerate Table I on the synthetic world."""
    if world is None:
        world = SyntheticWorld(seed=0)
    correlations = {}
    for name in NETWORK_NAMES:
        correlations[name] = predicted_vs_observed_variance(
            world.years(name))
    return Table1Result(correlations=correlations)


def format_result(result: Table1Result) -> str:
    """Render ours vs the paper's correlations."""
    rows = []
    for name, corr in result.correlations.items():
        rows.append([name, corr.coefficient, corr.p_value,
                     PAPER_TABLE1[name]])
    title = ("Table I — correlation between predicted and observed "
             "edge-score variance (NC null model validation)")
    return comparison_table(title, rows,
                            ["network", "ours", "p-value", "paper"])
