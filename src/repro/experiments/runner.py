"""One-shot runner regenerating every table and figure of the paper.

``run_all`` executes each experiment with laptop-friendly settings and
returns the rendered report; ``python -m repro.experiments.runner``
prints it. Benchmarks call the individual experiment modules directly
with their own parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..generators.world import SyntheticWorld
from . import (case_study, fig1_example, fig2_threshold, fig3_toy,
               fig4_synthetic, fig5_weights, fig6_local_correlation,
               fig7_topology, fig8_stability, fig9_scalability,
               table1_variance, table2_quality)


@dataclass
class FullReport:
    """All experiment results plus their rendered text."""

    results: Dict[str, object]
    sections: Dict[str, str]

    def text(self) -> str:
        banner = ("Reproduction report — 'Network Backboning with Noisy "
                  "Data' (Coscia & Neffke, ICDE 2017)")
        parts = [banner, "=" * len(banner)]
        for section in self.sections.values():
            parts.append("")
            parts.append(section)
        return "\n".join(parts)


def run_all(seed: int = 0, world: Optional[SyntheticWorld] = None,
            quick: bool = True, tiny: bool = False,
            workers: Optional[int] = None,
            cache_dir: Optional[str] = None) -> FullReport:
    """Run every experiment.

    ``quick`` shrinks the heavy sweeps to laptop scale; ``tiny`` shrinks
    everything further to CI scale (used by the integration test).
    ``workers`` fans the sweep-shaped experiments (Figs. 7-8, Table II)
    out across processes, and ``cache_dir`` backs them with one shared
    scored-table store — Table II then reuses the tables Fig. 7 already
    scored. ``cache_dir`` accepts any backend spec
    (:func:`repro.pipeline.backends.open_backend`): a directory path,
    a ``.sqlite`` file, or ``sqlite://``/``kv://`` URLs. Neither knob
    changes any reported number.
    """
    if world is None:
        n_countries = 40 if tiny else (80 if quick else 120)
        world = SyntheticWorld(n_countries=n_countries, n_years=3,
                               seed=seed)
    store = None
    if cache_dir is not None:
        from ..pipeline.store import ScoreStore
        store = ScoreStore(cache_dir)
    elif workers is not None:
        from ..pipeline.store import ScoreStore
        store = ScoreStore()  # share in-process scores across experiments
    results: Dict[str, object] = {}
    sections: Dict[str, str] = {}

    def add(name, result, formatter):
        results[name] = result
        sections[name] = formatter(result)

    add("fig1", fig1_example.run(seed=seed), fig1_example.format_result)
    add("fig2", fig2_threshold.run(world=world),
        fig2_threshold.format_result)
    add("fig3", fig3_toy.run(), fig3_toy.format_result)
    if tiny:
        fig4_result = fig4_synthetic.run(n_nodes=60, repetitions=1,
                                         etas=(0.0, 0.2), seed=seed)
    else:
        fig4_result = fig4_synthetic.run(
            repetitions=1 if quick else 3, seed=seed)
    add("fig4", fig4_result, fig4_synthetic.format_result)
    add("fig5", fig5_weights.run(world=world), fig5_weights.format_result)
    add("fig6", fig6_local_correlation.run(world=world),
        fig6_local_correlation.format_result)
    add("table1", table1_variance.run(world=world),
        table1_variance.format_result)
    sweep_shares = (0.05, 0.5, 1.0) if tiny else None
    sweep_kwargs = {"world": world, "store": store, "workers": workers}
    if sweep_shares:
        sweep_kwargs["shares"] = sweep_shares
    add("fig7", fig7_topology.run(**sweep_kwargs),
        fig7_topology.format_result)
    add("fig8", fig8_stability.run(**sweep_kwargs),
        fig8_stability.format_result)
    add("table2",
        table2_quality.run(world=world,
                           budget_share=0.15 if tiny else None,
                           store=store, workers=workers),
        table2_quality.format_result)
    if tiny:
        fig9_result = fig9_scalability.run(fast_sizes=(500, 2_000),
                                           slow_sizes=(60, 120))
    elif quick:
        fig9_result = fig9_scalability.run(
            fast_sizes=(2_000, 8_000, 32_000), slow_sizes=(100, 200))
    else:
        fig9_result = fig9_scalability.run(
            fast_sizes=(2_000, 8_000, 32_000, 128_000, 512_000),
            slow_sizes=(200, 400, 800))
    add("fig9", fig9_result, fig9_scalability.format_result)
    add("case_study", case_study.run(seed=seed),
        case_study.format_result)
    return FullReport(results=results, sections=sections)


if __name__ == "__main__":
    print(run_all().text())
