"""Fig. 5: cumulative edge-weight distributions of the six networks.

The paper plots the CCDF of edge weights per network on log-log axes and
quotes two facts: the Ownership network's median non-zero weight is tiny
(1.5) while its top 1% exceed 50k, and Trade weights span ten orders of
magnitude. We regenerate the CCDF series and the summary facts for the
synthetic world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..generators.world import NETWORK_NAMES, SyntheticWorld
from ..stats.empirical import ccdf_points, weight_spread_summary
from .report import comparison_table


@dataclass(frozen=True)
class Fig5Result:
    """CCDF series and spread summaries per network."""

    ccdf: Dict[str, Tuple[np.ndarray, np.ndarray]]
    summary: Dict[str, Dict[str, float]]

    def broad_distributions(self, minimum_orders: float = 2.0) -> bool:
        """Check the figure's claim: most networks span many orders."""
        broad = sum(1 for name, facts in self.summary.items()
                    if facts["orders_of_magnitude"] >= minimum_orders)
        return broad >= len(self.summary) - 1  # Country Space may be narrow


def run(world: Optional[SyntheticWorld] = None,
        year: int = 0) -> Fig5Result:
    """Compute the Fig. 5 distributions."""
    if world is None:
        world = SyntheticWorld(seed=0)
    ccdf = {}
    summary = {}
    for name in NETWORK_NAMES:
        weight = world.network(name, year).weight
        ccdf[name] = ccdf_points(weight)
        summary[name] = weight_spread_summary(weight)
    return Fig5Result(ccdf=ccdf, summary=summary)


def format_result(result: Fig5Result) -> str:
    """Render the per-network weight-spread summary."""
    rows = []
    for name, facts in result.summary.items():
        rows.append([name, facts["median"], facts["top_1pct"],
                     facts["orders_of_magnitude"]])
    title = ("Fig. 5 — edge-weight distributions (median, top-1% weight, "
             "orders of magnitude spanned)")
    return comparison_table(
        title, rows, ["network", "median", "top 1%", "orders of magnitude"])
