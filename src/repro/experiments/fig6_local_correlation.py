"""Fig. 6: edge weights correlate with their neighborhoods.

For every edge the paper plots its weight against the average weight of
adjacent edges and reports the log-log Pearson correlation — between
0.42 (Flight) and 0.75 (Country Space) on the real data. This local
correlation is the reason naive global thresholds fail, motivating the
statistical backbones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..generators.world import NETWORK_NAMES, SyntheticWorld
from ..graph.metrics import neighbor_weight_profile
from ..stats.correlation import log_log_pearson
from .report import PAPER_FIG6_RANGE, comparison_table


@dataclass(frozen=True)
class Fig6Result:
    """Log-log local weight correlation per network."""

    correlations: Dict[str, float]

    def all_positive(self) -> bool:
        """The figure's core claim: correlations are all clearly positive."""
        return all(value > 0.2 for value in self.correlations.values())


def run(world: Optional[SyntheticWorld] = None,
        year: int = 0) -> Fig6Result:
    """Compute the Fig. 6 correlations."""
    if world is None:
        world = SyntheticWorld(seed=0)
    correlations = {}
    for name in NETWORK_NAMES:
        profile = neighbor_weight_profile(world.network(name, year))
        correlations[name] = log_log_pearson(profile["weight"],
                                             profile["neighbor_avg"])
    return Fig6Result(correlations=correlations)


def format_result(result: Fig6Result) -> str:
    """Render correlations with the paper's quoted range."""
    low, high = PAPER_FIG6_RANGE
    rows = [[name, value, f"{low}..{high}"]
            for name, value in result.correlations.items()]
    title = ("Fig. 6 — log-log correlation of edge weight with average "
             "neighbor edge weight")
    return comparison_table(title, rows,
                            ["network", "ours", "paper range"])
