"""Fig. 4: recovery of a planted BA backbone under rising noise.

Barabási–Albert networks (200 nodes, average degree 3) are buried in the
paper's noise model for ``η`` from 0 to 0.3; every method extracts a
backbone of exactly the planted size and is scored by Jaccard recovery.

Expected shape (paper Fig. 4): NT and DF excel at very low noise; NC is
the most resilient as noise grows and the best overall; MST/DS/HSS trail
throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..backbones.base import BackboneMethod
from ..backbones.registry import paper_methods
from ..evaluation.recovery import recovery_by_method
from ..generators.barabasi_albert import barabasi_albert
from ..generators.noise import add_noise
from ..generators.seeds import spawn_rngs
from .report import series_table

DEFAULT_ETAS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30)


@dataclass(frozen=True)
class Fig4Result:
    """Recovery series per method across noise levels."""

    etas: List[float]
    series: Dict[str, List[float]]
    n_nodes: int
    repetitions: int

    def best_at_high_noise(self) -> str:
        """Method with the best mean recovery over the top half of etas."""
        half = len(self.etas) // 2
        means = {code: float(np.nanmean(values[half:]))
                 for code, values in self.series.items()}
        return max(means, key=lambda code: means[code])


def run(n_nodes: int = 200, average_degree: float = 3.0,
        etas: Sequence[float] = DEFAULT_ETAS, repetitions: int = 3,
        seed: int = 0,
        methods: Optional[Sequence[BackboneMethod]] = None) -> Fig4Result:
    """Regenerate the Fig. 4 series."""
    if methods is None:
        methods = paper_methods()
    accumulator: Dict[str, List[List[float]]] = \
        {method.code: [[] for _ in etas] for method in methods}
    rngs = spawn_rngs(seed, repetitions)
    for _repetition, rng in enumerate(rngs):
        topology_seed = int(rng.integers(2 ** 31))
        noise_seed = int(rng.integers(2 ** 31))
        truth = barabasi_albert(n_nodes, average_degree / 2.0,
                                seed=topology_seed)
        for eta_index, eta in enumerate(etas):
            noisy = add_noise(truth, eta, seed=noise_seed + eta_index)
            scores = recovery_by_method(noisy, methods)
            for code, value in scores.items():
                accumulator[code][eta_index].append(value)
    series = {code: [_nanmean(values) for values in columns]
              for code, columns in accumulator.items()}
    return Fig4Result(etas=list(etas), series=series, n_nodes=n_nodes,
                      repetitions=repetitions)


def _nanmean(values: List[float]) -> float:
    finite = [value for value in values if value == value]
    if not finite:
        return float("nan")
    return float(np.mean(finite))


def format_result(result: Fig4Result) -> str:
    """Render the recovery series as the paper's figure data."""
    title = (f"Fig. 4 — backbone recovery vs noise "
             f"(BA n={result.n_nodes}, {result.repetitions} reps; "
             f"Jaccard with planted edges)")
    return series_table(title, "eta", result.etas, result.series)
