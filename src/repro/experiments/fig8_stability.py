"""Fig. 8: stability of backbone edge weights across years.

Same sweep structure as Fig. 7, but the metric is the average Spearman
correlation between consecutive years' weights on the backbone's edges.
The paper finds no clear winner: every method stays above ~0.84, with
NC comparable to DF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..backbones.base import BackboneMethod
from ..backbones.registry import paper_methods
from ..evaluation.sweep import DEFAULT_SHARES, SweepSeries, sweep_methods
from ..generators.world import NETWORK_NAMES, SyntheticWorld
from ..pipeline.tasks import StabilityMetric
from .report import series_table


@dataclass(frozen=True)
class Fig8Result:
    """Stability sweeps per network and method."""

    shares: List[float]
    sweeps: Dict[str, Dict[str, SweepSeries]]

    def minimum_stability(self) -> float:
        """Smallest stability across all methods/networks/shares."""
        values = []
        for by_method in self.sweeps.values():
            for sweep in by_method.values():
                values.extend(v for v in sweep.values if np.isfinite(v))
        return float(min(values)) if values else float("nan")


def run(world: Optional[SyntheticWorld] = None,
        shares: Sequence[float] = DEFAULT_SHARES,
        networks: Sequence[str] = NETWORK_NAMES,
        methods: Optional[Sequence[BackboneMethod]] = None,
        store=None, workers: Optional[int] = None) -> Fig8Result:
    """Regenerate the Fig. 8 sweeps.

    ``store``/``workers`` compile the sweeps into :mod:`repro.flow`
    plan batches (cached scored tables, process fan-out, identical
    values).
    """
    if world is None:
        world = SyntheticWorld(seed=0)
    if methods is None:
        methods = paper_methods()
    sweeps: Dict[str, Dict[str, SweepSeries]] = {}
    for name in networks:
        years = world.years(name)
        table = years[0]
        metric = StabilityMetric(tuple(years))
        sweeps[name] = sweep_methods(methods, table, metric,
                                     shares=shares, store=store,
                                     workers=workers)
    return Fig8Result(shares=list(shares), sweeps=sweeps)


def format_result(result: Fig8Result) -> str:
    """Render one stability table per network."""
    blocks = []
    for name, by_method in result.sweeps.items():
        series = {code: sweep.values
                  for code, sweep in by_method.items()
                  if not sweep.parameter_free}
        block = series_table(
            f"Fig. 8 — stability vs share of edges ({name})", "share",
            result.shares, series)
        points = [f"{code}: stability {sweep.values[0]:.4f}"
                  for code, sweep in by_method.items()
                  if sweep.parameter_free and sweep.shares]
        if points:
            block += "\n  parameter-free points: " + "; ".join(points)
        blocks.append(block)
    return "\n\n".join(blocks)
