"""Fig. 7: coverage as a function of the share of edges kept.

For each of the six networks and each method, sweep the kept-edge share
and measure coverage (non-isolated node retention). MST and DS appear as
single points (parameter-free); the paper's headline observations are
that MST/DS/HSS cover by construction, NC and DF trade blows, and DF
*underperforms the naive threshold* on Ownership — a critical failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..backbones.base import BackboneMethod
from ..backbones.registry import paper_methods
from ..evaluation.sweep import DEFAULT_SHARES, SweepSeries, sweep_methods
from ..generators.world import NETWORK_NAMES, SyntheticWorld
from ..pipeline.tasks import CoverageMetric
from .report import series_table


@dataclass(frozen=True)
class Fig7Result:
    """Coverage sweeps per network and method."""

    shares: List[float]
    sweeps: Dict[str, Dict[str, SweepSeries]]

    def coverage_at(self, network: str, code: str, share: float) -> float:
        """Coverage of one method at (approximately) one share."""
        series = self.sweeps[network][code]
        if not series.shares:
            return float("nan")
        index = int(np.argmin(np.abs(np.asarray(series.shares) - share)))
        return series.values[index]


def run(world: Optional[SyntheticWorld] = None,
        shares: Sequence[float] = DEFAULT_SHARES,
        networks: Sequence[str] = NETWORK_NAMES,
        methods: Optional[Sequence[BackboneMethod]] = None,
        store=None, workers: Optional[int] = None) -> Fig7Result:
    """Regenerate the Fig. 7 sweeps.

    ``store``/``workers`` compile each network's sweep into a
    :mod:`repro.flow` plan batch (via ``sweep_methods``): scored
    tables come from (and land in) the cache, and scoring fans out
    across processes, without changing any series value.
    """
    if world is None:
        world = SyntheticWorld(seed=0)
    if methods is None:
        methods = paper_methods()
    sweeps: Dict[str, Dict[str, SweepSeries]] = {}
    for name in networks:
        table = world.network(name, 0)
        metric = CoverageMetric(table)
        sweeps[name] = sweep_methods(methods, table, metric,
                                     shares=shares, store=store,
                                     workers=workers)
    return Fig7Result(shares=list(shares), sweeps=sweeps)


def format_result(result: Fig7Result) -> str:
    """Render one coverage table per network."""
    blocks = []
    for name, by_method in result.sweeps.items():
        series = {}
        for code, sweep in by_method.items():
            if sweep.parameter_free:
                continue
            series[code] = sweep.values
        block = series_table(
            f"Fig. 7 — coverage vs share of edges ({name})", "share",
            result.shares, series)
        points = [f"{code}: coverage {sweep.values[0]:.4f} at share "
                  f"{sweep.shares[0]:.4f}"
                  for code, sweep in by_method.items()
                  if sweep.parameter_free and sweep.shares]
        missing = [code for code, sweep in by_method.items()
                   if not sweep.shares]
        if points:
            block += "\n  parameter-free points: " + "; ".join(points)
        if missing:
            block += "\n  n/a (not balanceable): " + ", ".join(missing)
        blocks.append(block)
    return "\n\n".join(blocks)
