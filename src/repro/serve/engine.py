"""Compile-isolated batch execution: the daemon's request engine.

:func:`repro.flow.serve.serve` already isolates *execution* failures
per plan (scoring, filtering, metrics) — but it compiles the batch in
one call, so a single unreadable source or unknown method code would
fail every request in flight. A long-lived daemon cannot afford that:
one client's typo must not poison seven other clients' plans that
happen to share its admission window.

:func:`serve_isolated` therefore compiles defensively, in three rings:

1. **per plan** — method specs are built (registry lookups, parameter
   validation) individually, so an unknown code or bad parameter fails
   exactly one plan;
2. **per source group** — plans are grouped by source spec and each
   group is compiled on its own, so a missing file or a parse error
   fails the plans over that source and nobody else (while same-source
   plans still share one hash + parse, the PR 5 contract);
3. **per batch** — everything that compiled is handed to
   :func:`repro.flow.serve.serve_compiled` as *one* batch, so scoring
   deduplication (8 deltas over one source, one scoring pass) still
   spans every surviving plan across every client in the window.

The result list is aligned with the input plans: every slot holds a
:class:`~repro.flow.serve.FlowResult`, failed slots carrying the
exception in ``.error`` exactly like execution-time failures do.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..flow.compile import compile_plans
from ..flow.plan import Plan
from ..flow.serve import FlowResult, serve_compiled
from ..flow.spec import TableSource
from ..pipeline.store import ScoreStore


def serve_isolated(plans: Sequence[object],
                   store: Optional[ScoreStore] = None,
                   workers: Optional[int] = None) -> List[FlowResult]:
    """Serve a batch with per-plan compile *and* execution isolation.

    Accepts anything — objects that are not plans, plans without a
    method, plans over unreadable sources — and always returns one
    :class:`FlowResult` per input, in input order. Well-formed plans
    are served as a single deduplicated batch.
    """
    plans = list(plans)
    if store is None:
        store = ScoreStore()
    results: List[Optional[FlowResult]] = [None] * len(plans)

    # Ring 1: per-plan validation (type, method spec buildability).
    valid: List[int] = []
    for index, plan in enumerate(plans):
        try:
            if not isinstance(plan, Plan):
                raise TypeError("expected a Plan, got "
                                f"{type(plan).__name__}")
            if plan.method_spec is None:
                raise ValueError("plan has no method; call "
                                 ".method(code) before serving")
            plan.method_spec.build()
        except Exception as error:
            results[index] = FlowResult(plan=plan, cache_key="",
                                        error=error)
        else:
            valid.append(index)

    # Ring 2: compile per source group, preserving same-source sharing.
    groups: "Dict[object, List[int]]" = {}
    for index in valid:
        groups.setdefault(_source_key(plans[index]), []).append(index)
    compiled, compiled_indices = [], []
    for indices in groups.values():
        try:
            group = compile_plans([plans[i] for i in indices], store)
        except Exception as error:
            for i in indices:
                results[i] = FlowResult(plan=plans[i], cache_key="",
                                        error=error)
        else:
            compiled.extend(group)
            compiled_indices.extend(indices)

    # Ring 3: one batch for everything that survived — scoring dedup
    # and per-plan execution isolation both live in serve_compiled.
    for index, result in zip(compiled_indices,
                             serve_compiled(compiled, store, workers)):
        results[index] = result
    return results


def _source_key(plan: Plan) -> object:
    """Grouping key mirroring the compiler's source memoization."""
    if isinstance(plan.source, TableSource):
        return id(plan.source.table)
    return plan.source
