"""A tiny stdlib client for the backbone daemon.

:class:`ServeClient` speaks the daemon's JSON protocol over
``http.client`` — no dependencies, one connection per call (the daemon
is threaded; connection reuse buys nothing at this request rate and a
fresh connection can never be wedged by a previous failure).

>>> client = ServeClient("127.0.0.1", 8710)      # doctest: +SKIP
>>> reply = client.run([plan.to_json()])         # doctest: +SKIP
>>> reply["results"][0]["kept_share"]            # doctest: +SKIP
0.25
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Optional, Sequence, Union

from .daemon import DeadlineExceeded

__all__ = ["ServeClient", "ServeError", "DeadlineExceeded"]


class ServeError(RuntimeError):
    """The daemon answered with a request-level error.

    ``status`` is the HTTP status, ``kind`` the error type name from
    the response body (e.g. ``"BadRequest"``).
    """

    def __init__(self, status: int, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.status = status
        self.kind = kind


class ServeClient:
    """Talk to a running :class:`~repro.serve.BackboneDaemon`.

    ``timeout`` bounds each HTTP call at the socket level; give it
    headroom over the request deadline you pass to :meth:`run`, since
    the deadline is enforced (and reported precisely) by the daemon.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8710,
                 timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # -- protocol calls ------------------------------------------------

    def run(self, plans: Sequence[Union[str, Dict[str, object]]],
            deadline: Optional[float] = None,
            return_edges: bool = False,
            trace: bool = False) -> Dict[str, object]:
        """POST a batch of plan artifacts; return the decoded reply.

        ``plans`` holds :meth:`~repro.flow.Plan.to_json` strings or
        already-decoded artifact dicts. Raises :class:`DeadlineExceeded`
        when the daemon reports the deadline passed first, and
        :class:`ServeError` for any other request-level failure; plan-
        level failures come back inside ``reply["results"]``.

        ``trace=True`` asks the daemon to trace this request; the
        reply then carries a ``"trace"`` artifact (trace id, span
        tree, per-stage durations — see :mod:`repro.obs`).
        """
        body: Dict[str, object] = {
            "plans": [json.loads(p) if isinstance(p, str) else p
                      for p in plans],
            "return_edges": bool(return_edges),
        }
        if deadline is not None:
            body["deadline"] = float(deadline)
        if trace:
            body["trace"] = True
        return self._call("POST", "/v1/run", body)

    def status(self) -> Dict[str, object]:
        """Daemon counters, store stats and configuration."""
        return self._call("GET", "/v1/status")

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition (``/v1/metrics``)."""
        return self._call_text("GET", "/v1/metrics")

    def healthy(self) -> bool:
        """True when the daemon answers its health check."""
        try:
            return bool(self._call("GET", "/healthz").get("ok"))
        except (OSError, ServeError):
            return False

    def shutdown(self) -> bool:
        """Ask the daemon to stop; True when it acknowledged."""
        try:
            reply = self._call("POST", "/v1/shutdown")
        except (OSError, ServeError):
            return False
        return bool(reply.get("stopping"))

    # -- transport -----------------------------------------------------

    def _call(self, verb: str, path: str,
              body: Optional[Dict[str, object]] = None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            connection.request(verb, path, body=payload, headers=headers)
            response = connection.getresponse()
            decoded = json.loads(response.read().decode())
        finally:
            connection.close()
        if response.status >= 400:
            error = decoded.get("error", {}) \
                if isinstance(decoded, dict) else {}
            kind = str(error.get("type", "ServeError"))
            message = str(error.get("message", "request failed"))
            if kind == "DeadlineExceeded":
                raise DeadlineExceeded(message)
            raise ServeError(response.status, kind, message)
        return decoded

    def _call_text(self, verb: str, path: str) -> str:
        """Like :meth:`_call` for plain-text endpoints (no JSON)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request(verb, path)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
        finally:
            connection.close()
        if response.status >= 400:
            raise ServeError(response.status, "ServeError",
                             text.strip() or "request failed")
        return text


def collect_results(reply: Dict[str, object]) -> List[Dict[str, object]]:
    """The per-plan result list from a :meth:`ServeClient.run` reply."""
    results = reply.get("results", [])
    if not isinstance(results, list):
        raise ServeError(200, "Protocol", "reply has no result list")
    return results
