"""repro.serve — the long-lived backbone daemon and its resilience kit.

The flow layer (:mod:`repro.flow`) made a batch of backbone requests
one declarative, deduplicated call; this package keeps that machinery
*running*: :class:`BackboneDaemon` is a stdlib-only HTTP service with a
persistent warm :class:`~repro.pipeline.store.ScoreStore`, a worker
pool, and an admission window that coalesces concurrent requests from
different clients into single scoring passes. :class:`ServeClient`
talks to it; :func:`serve_isolated` is the compile-isolated batch
engine the daemon runs (usable standalone); :mod:`repro.serve.faults`
is the chaos harness that proves the degradation story:

===========================  =======================================
failure                      degradation
===========================  =======================================
cache backend unreachable    memory-only recompute, ``degraded`` flag
worker process killed        serial retry of the lost shards
one plan's scoring fails     structured error for that plan only
malformed plan artifact      structured error for that slot only
request deadline expires     504 to that client; batch still warms
                             the store; daemon unaffected
slow / stalled client        socket read timeout frees the handler
===========================  =======================================
"""

import sys
from types import ModuleType

from ..flow import serve as _serve_batch
from .client import ServeClient, ServeError
from .daemon import (PROTOCOL_VERSION, BackboneDaemon, DaemonStats,
                     DeadlineExceeded)
from .engine import serve_isolated

__all__ = [
    "BackboneDaemon", "DaemonStats", "DeadlineExceeded",
    "PROTOCOL_VERSION", "ServeClient", "ServeError", "serve_isolated",
]


class _CallableServeModule(ModuleType):
    """Keep ``from repro import serve; serve(plans)`` working.

    Importing this subpackage rebinds the ``serve`` attribute on the
    ``repro`` package from the flow-level batch function to this
    module (standard submodule-import behaviour), which would make
    the established entry point order-dependent. Making the module
    itself callable means both spellings hold at once:
    ``repro.serve(plans)`` executes a batch, ``repro.serve.
    BackboneDaemon`` keeps one running.
    """

    def __call__(self, plans, store=None, workers=None):
        return _serve_batch(plans, store=store, workers=workers)


sys.modules[__name__].__class__ = _CallableServeModule
