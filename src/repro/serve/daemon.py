"""The long-lived backbone daemon: warm store, batching, resilience.

:class:`BackboneDaemon` is a stdlib-only HTTP service
(``http.server.ThreadingHTTPServer``) that accepts Plan JSON artifacts
(:meth:`repro.flow.Plan.to_json` — the wire format since PR 5) and
answers with extracted backbones and metrics. What makes it a *daemon*
rather than a script is what it keeps warm and what it survives:

* **Warm state.** One :class:`~repro.pipeline.store.ScoreStore` and
  one ``workers=`` preference live across requests, so the second
  client to ask for a scored table gets it from cache, whichever
  client paid for it.
* **Admission window.** Requests arriving within ``batch_window``
  seconds are coalesced into a single
  :func:`~repro.serve.engine.serve_isolated` batch, which dedupes
  source parsing and scoring *across clients*: eight clients asking
  for eight NC deltas over one file trigger exactly one scoring pass.
* **Deadlines.** Every request carries a deadline (client-supplied or
  the daemon default). A request whose deadline passes while queued is
  cancelled without being served; one that expires mid-batch returns a
  structured timeout to its client while the batch completes and warms
  the store for the retry. The daemon stays healthy either way.
* **Degradation, not collapse.** Per-plan failures come back as
  structured errors for that plan only (see
  :mod:`repro.serve.engine`); a cache-backend outage flips the store
  to memory-only recompute and the response carries a ``degraded``
  flag; a worker process dying mid-batch is retried serially by the
  pool layer. A batch-level surprise marks every affected request
  failed and the daemon keeps serving.
* **Slow clients.** Handler sockets carry a read timeout, so a client
  that stalls mid-request occupies one handler thread for at most
  ``request_timeout`` seconds, not forever.

* **Observability** (:mod:`repro.obs`). Every counter goes through a
  threadsafe :class:`DaemonStats`; ``GET /v1/metrics`` serves the
  Prometheus text exposition over the daemon's registry *and* the
  process registry (pool retries, KV retries, store degradation);
  a request carrying ``"trace": true`` gets a JSON trace artifact —
  admission wait, compile, parse, scoring (worker spans included),
  extraction, store access — attached to its response; requests
  slower than ``slow_request_s`` are logged with their stage split;
  and a background ticker probes a degraded store back to health
  without waiting for client traffic.

Wire protocol (JSON over HTTP; all paths under ``/v1``):

``POST /v1/run``
    ``{"plans": [<plan artifact>, ...], "deadline": 5.0,
    "return_edges": false, "trace": false}`` → ``{"protocol": 1,
    "results": [...], "degraded": false, "batch": {"plans": N,
    "clients": K}[, "trace": {...}]}``; each result is ``{"ok":
    true, cache_key, kept_share, metrics, backbone: {m, n_nodes}
    [, edges]}`` or ``{"ok": false, "error": {"type", "message"}}``,
    aligned with the request's plan list.
``GET /v1/status``
    Uptime, request/batch/coalescing counters, store stats, config.
``GET /v1/metrics``
    Prometheus text exposition (version 0.0.4).
``POST /v1/shutdown``
    Acknowledges, then stops the daemon gracefully.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence

from ..flow.plan import Plan
from ..flow.serve import FlowResult
from ..obs.export import render_prometheus, trace_to_dict
from ..obs.metrics import MetricsRegistry, get_registry, make_family
from ..obs.trace import TRACER, Span, trace
from ..pipeline.store import PathLike, ScoreStore
from .engine import serve_isolated

logger = logging.getLogger(__name__)

#: Wire protocol version stamped into every response.
PROTOCOL_VERSION = 1

#: Hard cap on request body size (a plan artifact is a few hundred
#: bytes; anything near this is a confused or hostile client).
MAX_BODY_BYTES = 32 * 1024 * 1024


class DeadlineExceeded(RuntimeError):
    """A request's deadline passed before its results were ready."""


#: DaemonStats counter fields and their metric help text (each is
#: exported as ``repro_daemon_<field>_total``).
_STAT_HELP = {
    "requests": "POST /v1/run requests admitted.",
    "plans": "Plan slots served (structured errors included).",
    "plan_errors": "Plan slots answered with a structured error.",
    "batches": "serve_isolated batch executions.",
    "coalesced_batches": "Batches that merged two or more requests.",
    "cancelled":
        "Tickets dropped with an expired deadline while queued.",
    "deadline_misses": "Clients that timed out waiting for results.",
    "batch_failures": "Whole-batch engine failures survived.",
    "served": "Tickets answered with results.",
    "slow_requests":
        "Requests slower than the slow-request threshold.",
    "probe_rearms":
        "Store re-arms performed by the background probe ticker.",
}


class DaemonStats:
    """Threadsafe counters over one daemon lifetime.

    Handler threads, the batcher and the probe ticker all increment
    concurrently, so every mutation goes through :meth:`inc` under
    one lock — a bare ``+=`` from two threads can drop updates.
    Plain attribute reads (``stats.cancelled``) keep working.

    ``served`` and ``cancelled`` are the mutually exclusive per-ticket
    *outcomes* the batcher assigns, so once the queue is drained
    ``requests == served + cancelled`` holds exactly (the consistency
    contract the concurrent-clients test asserts).
    ``deadline_misses`` counts *clients* that stopped waiting and is
    orthogonal: a missed request's batch usually still serves its
    ticket and warms the store.
    """

    FIELDS = tuple(_STAT_HELP)

    def __init__(self):
        self.started = time.time()
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(self.FIELDS, 0)

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __getattr__(self, name: str):
        counts = self.__dict__.get("_counts")
        if counts is not None and name in counts:
            with self.__dict__["_lock"]:
                return counts[name]
        raise AttributeError(name)

    def payload(self) -> Dict[str, object]:
        snap = self.snapshot()
        snap["uptime_s"] = max(0.0, time.time() - self.started)
        return snap


class _Ticket:
    """One client request waiting for its slice of a batch."""

    __slots__ = ("plans", "deadline", "event", "results", "batch",
                 "trace", "enqueued_unix", "enqueued_pc", "artifact",
                 "outcome")

    def __init__(self, plans: List[Plan], deadline: float,
                 trace: bool = False):
        self.plans = plans
        self.deadline = deadline  # absolute, time.monotonic() scale
        self.event = threading.Event()
        self.results: Optional[List[FlowResult]] = None
        self.batch: Dict[str, int] = {}
        self.trace = trace
        self.enqueued_unix = time.time()
        self.enqueued_pc = time.perf_counter()
        self.artifact: Optional[Dict[str, Any]] = None
        #: "served" or "cancelled", assigned exactly once by the
        #: batcher (the client never claims an outcome).
        self.outcome: Optional[str] = None


class BackboneDaemon:
    """See the module docstring.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    store, cache_dir:
        The warm :class:`ScoreStore` (or a backend location to open
        one over). Defaults to a fresh memory-only store.
    workers:
        Process fan-out for cold scoring, as everywhere else.
    batch_window:
        Admission window in seconds: how long a batch waits for
        fellow-traveler requests before executing.
    default_deadline:
        Request deadline applied when the client sends none.
    request_timeout:
        Socket read timeout per request — the slow-client bound.
    slow_request_s:
        Log any request slower than this (seconds, end to end) with
        its queue/batch split; ``None`` disables the slow-request log.
    probe_interval:
        Seconds between background :meth:`ScoreStore.probe_backend`
        checks while the store is degraded, so an outage heals
        without client traffic; ``None`` or ``0`` disables the
        ticker.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 store: Optional[ScoreStore] = None,
                 cache_dir: Optional[PathLike] = None,
                 workers: Optional[int] = None,
                 batch_window: float = 0.05,
                 default_deadline: float = 30.0,
                 request_timeout: float = 10.0,
                 slow_request_s: Optional[float] = None,
                 probe_interval: Optional[float] = 5.0):
        if store is not None and cache_dir is not None:
            raise ValueError("pass either store or cache_dir, not both")
        if store is None:
            store = ScoreStore(cache_dir)
        self.store = store
        self.workers = workers
        self.batch_window = float(batch_window)
        self.default_deadline = float(default_deadline)
        self.request_timeout = float(request_timeout)
        self.slow_request_s = None if slow_request_s is None \
            else float(slow_request_s)
        self.probe_interval = None if not probe_interval \
            else float(probe_interval)
        self.stats = DaemonStats()
        self.registry = MetricsRegistry()
        self._queue_hist = self.registry.histogram(
            "repro_daemon_queue_wait_seconds",
            "Time requests spend queued in the admission window.")
        self._batch_hist = self.registry.histogram(
            "repro_daemon_batch_exec_seconds",
            "serve_isolated execution time per batch.")
        self._request_hist = self.registry.histogram(
            "repro_daemon_request_seconds",
            "Admission-to-results latency per served request.")
        self.registry.register_collector(self._collect_families)
        self._host, self._port = host, int(port)
        self._cond = threading.Condition()
        self._pending: List[_Ticket] = []
        self._stopping = False
        self._server: Optional[ThreadingHTTPServer] = None
        self._threads: List[threading.Thread] = []
        self._stopped = threading.Event()
        self._probe_stop = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._port

    def start(self) -> "BackboneDaemon":
        """Bind the socket and start the server + batcher threads."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((self._host, self._port),
                                           handler)
        self._server.daemon_threads = True
        with self._cond:
            self._stopping = False
        self._stopped.clear()
        self._probe_stop.clear()
        self._threads = [
            threading.Thread(target=self._server.serve_forever,
                             name="repro-serve-http", daemon=True),
            threading.Thread(target=self._batch_loop,
                             name="repro-serve-batcher", daemon=True),
        ]
        if self.probe_interval:
            self._threads.append(
                threading.Thread(target=self._probe_loop,
                                 name="repro-serve-probe", daemon=True))
        for thread in self._threads:
            thread.start()
        logger.info("backbone daemon listening on %s:%d",
                    self._host, self.port)
        return self

    def stop(self) -> None:
        """Stop accepting requests, flush the queue, release the port."""
        server, self._server = self._server, None
        self._probe_stop.set()
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if server is not None:
            server.shutdown()
            server.server_close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)
        self._threads = []
        self._stopped.set()

    def run_forever(self) -> None:
        """Block until the daemon is stopped (signal or /v1/shutdown)."""
        if self._server is None:
            self.start()
        try:
            self._stopped.wait()
        except KeyboardInterrupt:
            self.stop()

    def __enter__(self) -> "BackboneDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request admission / batching
    # ------------------------------------------------------------------

    def submit(self, plans: Sequence[Plan],
               deadline: Optional[float] = None) -> List[FlowResult]:
        """Admit one request's plans; block until served or deadline.

        Raises :class:`DeadlineExceeded` when the deadline passes
        first — the batch keeps running and warms the store, so a
        retry is cheap; the daemon is unaffected.
        """
        return self._await(self._admit(plans, deadline))

    def _admit(self, plans: Sequence[Plan],
               deadline: Optional[float],
               trace: bool = False) -> _Ticket:
        budget = self.default_deadline if deadline is None \
            else float(deadline)
        budget = max(0.0, budget)
        ticket = _Ticket(list(plans), time.monotonic() + budget,
                         trace=trace)
        with self._cond:
            if self._stopping:
                raise RuntimeError("daemon is shutting down")
            self._pending.append(ticket)
            self._cond.notify_all()
        self.stats.inc("requests")
        return ticket

    def _await(self, ticket: _Ticket) -> List[FlowResult]:
        budget = max(0.0, ticket.deadline - time.monotonic())
        if not ticket.event.wait(timeout=budget):
            self.stats.inc("deadline_misses")
            raise DeadlineExceeded(
                "request missed its deadline; the batch continues in "
                "the background and warms the cache for a retry")
        if ticket.results is None:  # cancelled while queued
            raise DeadlineExceeded(
                "request deadline expired before its batch started")
        return ticket.results

    def _batch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stopping:
                    self._cond.wait()
                if not self._pending and self._stopping:
                    return
            # Admission window: let same-window requests pile in.
            if self.batch_window > 0 and not self._stopping:
                time.sleep(self.batch_window)
            with self._cond:
                tickets, self._pending = self._pending, []
            if tickets:
                self._execute(tickets)

    def _execute(self, tickets: List[_Ticket]) -> None:
        now = time.monotonic()
        live: List[_Ticket] = []
        for ticket in tickets:
            if ticket.deadline <= now:
                # Cancelled: its plans are never served.
                ticket.outcome = "cancelled"
                self.stats.inc("cancelled")
                ticket.event.set()
            else:
                live.append(ticket)
        if not live:
            return
        plans = [plan for ticket in live for plan in ticket.plans]
        batch_info = {"plans": len(plans), "clients": len(live)}
        trace_root: Optional[Span] = None
        batch_spans: List[Span] = []
        exec_start_pc = time.perf_counter()
        try:
            if any(ticket.trace for ticket in live):
                with trace("serve.batch", plans=len(plans),
                           clients=len(live)) as trace_root:
                    results = serve_isolated(plans, store=self.store,
                                             workers=self.workers)
            else:
                results = serve_isolated(plans, store=self.store,
                                         workers=self.workers)
        except Exception:
            # serve_isolated isolates per plan; reaching here means a
            # genuine engine bug. Fail these requests, not the daemon.
            logger.exception("batch execution failed; failing %d "
                             "requests and continuing", len(live))
            self.stats.inc("batch_failures")
            results = None
        if trace_root is not None:
            batch_spans = TRACER.pop(trace_root.trace_id)
        end_pc = time.perf_counter()
        batch_s = end_pc - exec_start_pc
        self._batch_hist.observe(batch_s)
        self.stats.inc("batches")
        if len(live) > 1:
            self.stats.inc("coalesced_batches")
        self.stats.inc("plans", len(plans))
        cursor = 0
        for ticket in live:
            count = len(ticket.plans)
            if results is None:
                ticket.results = [
                    FlowResult(plan=plan, cache_key="",
                               error=RuntimeError("internal batch "
                                                  "failure"))
                    for plan in ticket.plans]
            else:
                ticket.results = results[cursor:cursor + count]
            cursor += count
            ticket.batch = batch_info
            errors = sum(1 for result in ticket.results
                         if not result.ok)
            if errors:
                self.stats.inc("plan_errors", errors)
            queue_wait = max(0.0, exec_start_pc - ticket.enqueued_pc)
            total_s = end_pc - ticket.enqueued_pc
            self._queue_hist.observe(queue_wait)
            self._request_hist.observe(total_s)
            if ticket.trace and trace_root is not None:
                ticket.artifact = _trace_artifact(
                    ticket, trace_root, batch_spans, queue_wait,
                    total_s, self.batch_window)
            ticket.outcome = "served"
            self.stats.inc("served")
            if self.slow_request_s is not None \
                    and total_s >= self.slow_request_s:
                self.stats.inc("slow_requests")
                logger.warning(
                    "slow request: %.3fs end to end (%.3fs queued, "
                    "%.3fs batch) for %d plan(s)",
                    total_s, queue_wait, batch_s, len(ticket.plans))
            ticket.event.set()

    def _probe_loop(self) -> None:
        # Re-arm a degraded store without waiting for client traffic;
        # probe_backend() is a no-op on a healthy store.
        while not self._probe_stop.wait(self.probe_interval):
            if self.store.degraded and self.store.probe_backend():
                self.stats.inc("probe_rearms")
                logger.info("background probe re-armed the score "
                            "store's backend")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def metrics_text(self) -> str:
        """The ``GET /v1/metrics`` Prometheus text exposition:
        the daemon's own registry layered over the process-wide one
        (pool, KV and store-degradation series)."""
        return render_prometheus([get_registry(), self.registry])

    def _collect_families(self):
        snap = self.stats.snapshot()
        families = [
            make_family("counter", f"repro_daemon_{name}_total",
                        _STAT_HELP[name], count)
            for name, count in snap.items()]
        families.append(make_family(
            "gauge", "repro_daemon_uptime_seconds",
            "Seconds since the daemon started.",
            max(0.0, time.time() - self.stats.started)))
        with self._cond:
            depth = len(self._pending)
        families.append(make_family(
            "gauge", "repro_daemon_pending_requests",
            "Requests queued in the admission window.", depth))
        stats = self.store.stats
        families.extend([
            make_family("counter", "repro_cache_hits_total",
                        "Score-store hits by tier.",
                        [({"tier": "memory"}, stats.memory_hits),
                         ({"tier": "disk"}, stats.disk_hits)]),
            make_family("counter", "repro_cache_misses_total",
                        "Score-store lookups answered by neither "
                        "tier.", stats.misses),
            make_family("counter", "repro_cache_puts_total",
                        "Scored tables inserted into the store.",
                        stats.puts),
            make_family("counter", "repro_cache_evictions_total",
                        "Entries evicted from either tier.",
                        stats.evictions),
            make_family("counter", "repro_cache_corrupt_total",
                        "Corrupt persistent entries detected.",
                        stats.corrupt),
            make_family("counter", "repro_cache_negative_hits_total",
                        "Lookups answered by a cached failure.",
                        stats.negative_hits),
            make_family("counter", "repro_cache_negative_puts_total",
                        "Deterministic failures recorded.",
                        stats.negative_puts),
            make_family("counter",
                        "repro_cache_backend_failures_total",
                        "Backend outages the store survived.",
                        stats.backend_failures),
            make_family("gauge", "repro_cache_degraded",
                        "1 while the store is memory-only degraded.",
                        1.0 if self.store.degraded else 0.0),
        ])
        return families

    def status(self) -> Dict[str, object]:
        """The ``GET /v1/status`` payload."""
        stats = self.store.stats
        return {
            "protocol": PROTOCOL_VERSION,
            "daemon": self.stats.payload(),
            "degraded": self.store.degraded,
            "store": {
                "summary": stats.summary(),
                "hits": stats.hits, "misses": stats.misses,
                "puts": stats.puts,
                "negative_hits": stats.negative_hits,
                "backend_failures": stats.backend_failures,
            },
            "config": {
                "workers": self.workers,
                "batch_window_s": self.batch_window,
                "default_deadline_s": self.default_deadline,
                "request_timeout_s": self.request_timeout,
                "slow_request_s": self.slow_request_s,
                "probe_interval_s": self.probe_interval,
                "backend": (None if self.store.backend is None
                            else self.store.backend.describe()),
            },
        }


def _trace_artifact(ticket: _Ticket, root: Span,
                    batch_spans: List[Span], queue_wait: float,
                    total_s: float,
                    batch_window: float) -> Dict[str, Any]:
    """One ticket's JSON trace artifact.

    The batch trace is shared by every coalesced client; each ticket
    gets its own synthetic ``serve.request`` root (admission to
    results) with an ``admission.wait`` child covering the queued
    stretch, and the recorded batch spans re-parented underneath —
    so a request's stage durations sum to its wall time.
    """
    trace_id = root.trace_id
    request = Span.finished(
        "serve.request", trace_id,
        start_unix=ticket.enqueued_unix, duration_s=total_s,
        attributes={"plans": len(ticket.plans)})
    wait = Span.finished(
        "admission.wait", trace_id, parent_id=request.span_id,
        start_unix=ticket.enqueued_unix, duration_s=queue_wait,
        attributes={"batch_window_s": batch_window})
    spans: List[Dict[str, Any]] = [request.to_dict(), wait.to_dict()]
    for recorded in batch_spans:
        node = recorded.to_dict()
        if node["parent_id"] is None:
            node["parent_id"] = request.span_id
        spans.append(node)
    return trace_to_dict(trace_id, spans)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------

def result_payload(result: FlowResult,
                   return_edges: bool = False) -> Dict[str, object]:
    """JSON-safe encoding of one :class:`FlowResult`."""
    if not result.ok:
        return {"ok": False,
                "error": {"type": type(result.error).__name__,
                          "message": str(result.error)}}
    backbone = result.backbone
    payload: Dict[str, object] = {
        "ok": True,
        "cache_key": result.cache_key,
        "kept_share": result.kept_share,
        "metrics": result.metrics,
        "backbone": {"m": backbone.m, "n_nodes": backbone.n_nodes},
    }
    if return_edges:
        payload["edges"] = [
            [backbone.label_of(u), backbone.label_of(v), float(w)]
            for u, v, w in backbone.iter_edges()]
    return payload


def _make_handler(daemon: BackboneDaemon):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        timeout = daemon.request_timeout  # slow-client read bound

        # -- plumbing --------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002 (stdlib name)
            logger.debug("%s %s", self.address_string(), format % args)

        def _reply(self, status: int, payload: Dict[str, object]) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _reply_text(self, status: int, text: str,
                        content_type: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _fail(self, status: int, kind: str, message: str) -> None:
            self._reply(status, {"protocol": PROTOCOL_VERSION,
                                 "error": {"type": kind,
                                           "message": message}})

        # -- routes ----------------------------------------------------

        def do_GET(self):
            if self.path in ("/v1/status", "/status"):
                self._reply(200, daemon.status())
            elif self.path in ("/v1/metrics", "/metrics"):
                self._reply_text(
                    200, daemon.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8")
            elif self.path == "/healthz":
                self._reply(200, {"ok": True})
            else:
                self._fail(404, "NotFound", f"unknown path {self.path}")

        def do_POST(self):
            if self.path in ("/v1/shutdown", "/shutdown"):
                self._reply(200, {"ok": True, "stopping": True})
                # stop() joins threads; run it off this handler thread.
                threading.Thread(target=daemon.stop, daemon=True).start()
                return
            if self.path not in ("/v1/run", "/run"):
                self._fail(404, "NotFound", f"unknown path {self.path}")
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                length = -1
            if not 0 < length <= MAX_BODY_BYTES:
                self._fail(400, "BadRequest",
                           "missing, malformed or oversized body")
                return
            try:
                body = json.loads(self.rfile.read(length))
            except (ValueError, UnicodeDecodeError) as error:
                self._fail(400, "BadRequest",
                           f"body is not valid JSON: {error}")
                return
            if not isinstance(body, dict) \
                    or not isinstance(body.get("plans"), list) \
                    or not body["plans"]:
                self._fail(400, "BadRequest",
                           'body must be {"plans": [<plan>, ...], ...}')
                return
            try:
                deadline = None if body.get("deadline") is None \
                    else float(body["deadline"])
            except (TypeError, ValueError):
                self._fail(400, "BadRequest", "deadline must be a number")
                return

            # Per-plan parse isolation: a malformed artifact fails its
            # slot; well-formed fellow plans are still served.
            slots: List[Optional[Dict[str, object]]] = []
            plans: List[Plan] = []
            for item in body["plans"]:
                try:
                    plans.append(Plan.from_json(json.dumps(item)))
                    slots.append(None)
                except Exception as error:
                    slots.append({"ok": False,
                                  "error": {"type": type(error).__name__,
                                            "message": str(error)}})
            want_trace = bool(body.get("trace", False))
            batch: Dict[str, int] = {"plans": 0, "clients": 0}
            results: List[FlowResult] = []
            artifact = None
            if plans:
                try:
                    ticket = daemon._admit(plans, deadline,
                                           trace=want_trace)
                    results = daemon._await(ticket)
                    batch = ticket.batch
                    artifact = ticket.artifact
                except DeadlineExceeded as error:
                    self._fail(504, "DeadlineExceeded", str(error))
                    return
                except RuntimeError as error:
                    self._fail(503, "Unavailable", str(error))
                    return
            return_edges = bool(body.get("return_edges", False))
            encoded = iter([result_payload(result, return_edges)
                            for result in results])
            payload = [slot if slot is not None else next(encoded)
                       for slot in slots]
            reply: Dict[str, object] = {
                "protocol": PROTOCOL_VERSION,
                "results": payload,
                "degraded": daemon.store.degraded,
                "batch": batch,
            }
            if want_trace:
                reply["trace"] = artifact
            self._reply(200, reply)

    return Handler
