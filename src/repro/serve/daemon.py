"""The long-lived backbone daemon: warm store, batching, resilience.

:class:`BackboneDaemon` is a stdlib-only HTTP service
(``http.server.ThreadingHTTPServer``) that accepts Plan JSON artifacts
(:meth:`repro.flow.Plan.to_json` — the wire format since PR 5) and
answers with extracted backbones and metrics. What makes it a *daemon*
rather than a script is what it keeps warm and what it survives:

* **Warm state.** One :class:`~repro.pipeline.store.ScoreStore` and
  one ``workers=`` preference live across requests, so the second
  client to ask for a scored table gets it from cache, whichever
  client paid for it.
* **Admission window.** Requests arriving within ``batch_window``
  seconds are coalesced into a single
  :func:`~repro.serve.engine.serve_isolated` batch, which dedupes
  source parsing and scoring *across clients*: eight clients asking
  for eight NC deltas over one file trigger exactly one scoring pass.
* **Deadlines.** Every request carries a deadline (client-supplied or
  the daemon default). A request whose deadline passes while queued is
  cancelled without being served; one that expires mid-batch returns a
  structured timeout to its client while the batch completes and warms
  the store for the retry. The daemon stays healthy either way.
* **Degradation, not collapse.** Per-plan failures come back as
  structured errors for that plan only (see
  :mod:`repro.serve.engine`); a cache-backend outage flips the store
  to memory-only recompute and the response carries a ``degraded``
  flag; a worker process dying mid-batch is retried serially by the
  pool layer. A batch-level surprise marks every affected request
  failed and the daemon keeps serving.
* **Slow clients.** Handler sockets carry a read timeout, so a client
  that stalls mid-request occupies one handler thread for at most
  ``request_timeout`` seconds, not forever.

Wire protocol (JSON over HTTP; all paths under ``/v1``):

``POST /v1/run``
    ``{"plans": [<plan artifact>, ...], "deadline": 5.0,
    "return_edges": false}`` → ``{"protocol": 1, "results": [...],
    "degraded": false, "batch": {"plans": N, "clients": K}}``; each
    result is ``{"ok": true, cache_key, kept_share, metrics,
    backbone: {m, n_nodes}[, edges]}`` or ``{"ok": false, "error":
    {"type", "message"}}``, aligned with the request's plan list.
``GET /v1/status``
    Uptime, request/batch/coalescing counters, store stats, config.
``POST /v1/shutdown``
    Acknowledges, then stops the daemon gracefully.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence

from ..flow.plan import Plan
from ..flow.serve import FlowResult
from ..pipeline.store import PathLike, ScoreStore
from .engine import serve_isolated

logger = logging.getLogger(__name__)

#: Wire protocol version stamped into every response.
PROTOCOL_VERSION = 1

#: Hard cap on request body size (a plan artifact is a few hundred
#: bytes; anything near this is a confused or hostile client).
MAX_BODY_BYTES = 32 * 1024 * 1024


class DeadlineExceeded(RuntimeError):
    """A request's deadline passed before its results were ready."""


@dataclass
class DaemonStats:
    """Counters over one daemon lifetime (all mutated under the
    daemon's condition lock except ``started``)."""

    started: float = field(default_factory=time.time)
    requests: int = 0          # POST /v1/run calls admitted
    plans: int = 0             # plan slots served (errors included)
    plan_errors: int = 0       # slots answered with a structured error
    batches: int = 0           # serve_isolated executions
    coalesced_batches: int = 0  # batches that merged >= 2 requests
    cancelled: int = 0         # tickets dropped with an expired deadline
    deadline_misses: int = 0   # clients that timed out waiting
    batch_failures: int = 0    # whole-batch surprises survived

    def payload(self) -> Dict[str, object]:
        return {
            "uptime_s": max(0.0, time.time() - self.started),
            "requests": self.requests, "plans": self.plans,
            "plan_errors": self.plan_errors, "batches": self.batches,
            "coalesced_batches": self.coalesced_batches,
            "cancelled": self.cancelled,
            "deadline_misses": self.deadline_misses,
            "batch_failures": self.batch_failures,
        }


class _Ticket:
    """One client request waiting for its slice of a batch."""

    __slots__ = ("plans", "deadline", "event", "results", "batch")

    def __init__(self, plans: List[Plan], deadline: float):
        self.plans = plans
        self.deadline = deadline  # absolute, time.monotonic() scale
        self.event = threading.Event()
        self.results: Optional[List[FlowResult]] = None
        self.batch: Dict[str, int] = {}


class BackboneDaemon:
    """See the module docstring.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    store, cache_dir:
        The warm :class:`ScoreStore` (or a backend location to open
        one over). Defaults to a fresh memory-only store.
    workers:
        Process fan-out for cold scoring, as everywhere else.
    batch_window:
        Admission window in seconds: how long a batch waits for
        fellow-traveler requests before executing.
    default_deadline:
        Request deadline applied when the client sends none.
    request_timeout:
        Socket read timeout per request — the slow-client bound.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 store: Optional[ScoreStore] = None,
                 cache_dir: Optional[PathLike] = None,
                 workers: Optional[int] = None,
                 batch_window: float = 0.05,
                 default_deadline: float = 30.0,
                 request_timeout: float = 10.0):
        if store is not None and cache_dir is not None:
            raise ValueError("pass either store or cache_dir, not both")
        if store is None:
            store = ScoreStore(cache_dir)
        self.store = store
        self.workers = workers
        self.batch_window = float(batch_window)
        self.default_deadline = float(default_deadline)
        self.request_timeout = float(request_timeout)
        self.stats = DaemonStats()
        self._host, self._port = host, int(port)
        self._cond = threading.Condition()
        self._pending: List[_Ticket] = []
        self._stopping = False
        self._server: Optional[ThreadingHTTPServer] = None
        self._threads: List[threading.Thread] = []
        self._stopped = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._port

    def start(self) -> "BackboneDaemon":
        """Bind the socket and start the server + batcher threads."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((self._host, self._port),
                                           handler)
        self._server.daemon_threads = True
        self._stopping = False
        self._stopped.clear()
        self._threads = [
            threading.Thread(target=self._server.serve_forever,
                             name="repro-serve-http", daemon=True),
            threading.Thread(target=self._batch_loop,
                             name="repro-serve-batcher", daemon=True),
        ]
        for thread in self._threads:
            thread.start()
        logger.info("backbone daemon listening on %s:%d",
                    self._host, self.port)
        return self

    def stop(self) -> None:
        """Stop accepting requests, flush the queue, release the port."""
        server, self._server = self._server, None
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if server is not None:
            server.shutdown()
            server.server_close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)
        self._threads = []
        self._stopped.set()

    def run_forever(self) -> None:
        """Block until the daemon is stopped (signal or /v1/shutdown)."""
        if self._server is None:
            self.start()
        try:
            self._stopped.wait()
        except KeyboardInterrupt:
            self.stop()

    def __enter__(self) -> "BackboneDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request admission / batching
    # ------------------------------------------------------------------

    def submit(self, plans: Sequence[Plan],
               deadline: Optional[float] = None) -> List[FlowResult]:
        """Admit one request's plans; block until served or deadline.

        Raises :class:`DeadlineExceeded` when the deadline passes
        first — the batch keeps running and warms the store, so a
        retry is cheap; the daemon is unaffected.
        """
        return self._await(self._admit(plans, deadline))

    def _admit(self, plans: Sequence[Plan],
               deadline: Optional[float]) -> _Ticket:
        budget = self.default_deadline if deadline is None \
            else float(deadline)
        budget = max(0.0, budget)
        ticket = _Ticket(list(plans), time.monotonic() + budget)
        with self._cond:
            if self._stopping:
                raise RuntimeError("daemon is shutting down")
            self.stats.requests += 1
            self._pending.append(ticket)
            self._cond.notify_all()
        return ticket

    def _await(self, ticket: _Ticket) -> List[FlowResult]:
        budget = max(0.0, ticket.deadline - time.monotonic())
        if not ticket.event.wait(timeout=budget):
            with self._cond:
                self.stats.deadline_misses += 1
            raise DeadlineExceeded(
                "request missed its deadline; the batch continues in "
                "the background and warms the cache for a retry")
        if ticket.results is None:  # cancelled while queued
            raise DeadlineExceeded(
                "request deadline expired before its batch started")
        return ticket.results

    def _batch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stopping:
                    self._cond.wait()
                if not self._pending and self._stopping:
                    return
            # Admission window: let same-window requests pile in.
            if self.batch_window > 0 and not self._stopping:
                time.sleep(self.batch_window)
            with self._cond:
                tickets, self._pending = self._pending, []
            if tickets:
                self._execute(tickets)

    def _execute(self, tickets: List[_Ticket]) -> None:
        now = time.monotonic()
        live: List[_Ticket] = []
        for ticket in tickets:
            if ticket.deadline <= now:
                # Cancelled: its plans are never served.
                with self._cond:
                    self.stats.cancelled += 1
                ticket.event.set()
            else:
                live.append(ticket)
        if not live:
            return
        plans = [plan for ticket in live for plan in ticket.plans]
        batch_info = {"plans": len(plans), "clients": len(live)}
        try:
            results = serve_isolated(plans, store=self.store,
                                     workers=self.workers)
        except Exception:
            # serve_isolated isolates per plan; reaching here means a
            # genuine engine bug. Fail these requests, not the daemon.
            logger.exception("batch execution failed; failing %d "
                             "requests and continuing", len(live))
            with self._cond:
                self.stats.batch_failures += 1
            results = None
        with self._cond:
            self.stats.batches += 1
            if len(live) > 1:
                self.stats.coalesced_batches += 1
            self.stats.plans += len(plans)
        cursor = 0
        for ticket in live:
            count = len(ticket.plans)
            if results is None:
                ticket.results = [
                    FlowResult(plan=plan, cache_key="",
                               error=RuntimeError("internal batch "
                                                  "failure"))
                    for plan in ticket.plans]
            else:
                ticket.results = results[cursor:cursor + count]
            cursor += count
            ticket.batch = batch_info
            with self._cond:
                self.stats.plan_errors += sum(
                    1 for result in ticket.results if not result.ok)
            ticket.event.set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """The ``GET /v1/status`` payload."""
        stats = self.store.stats
        return {
            "protocol": PROTOCOL_VERSION,
            "daemon": self.stats.payload(),
            "degraded": self.store.degraded,
            "store": {
                "summary": stats.summary(),
                "hits": stats.hits, "misses": stats.misses,
                "puts": stats.puts,
                "negative_hits": stats.negative_hits,
                "backend_failures": stats.backend_failures,
            },
            "config": {
                "workers": self.workers,
                "batch_window_s": self.batch_window,
                "default_deadline_s": self.default_deadline,
                "request_timeout_s": self.request_timeout,
                "backend": (None if self.store.backend is None
                            else self.store.backend.describe()),
            },
        }


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------

def result_payload(result: FlowResult,
                   return_edges: bool = False) -> Dict[str, object]:
    """JSON-safe encoding of one :class:`FlowResult`."""
    if not result.ok:
        return {"ok": False,
                "error": {"type": type(result.error).__name__,
                          "message": str(result.error)}}
    backbone = result.backbone
    payload: Dict[str, object] = {
        "ok": True,
        "cache_key": result.cache_key,
        "kept_share": result.kept_share,
        "metrics": result.metrics,
        "backbone": {"m": backbone.m, "n_nodes": backbone.n_nodes},
    }
    if return_edges:
        payload["edges"] = [
            [backbone.label_of(u), backbone.label_of(v), float(w)]
            for u, v, w in backbone.iter_edges()]
    return payload


def _make_handler(daemon: BackboneDaemon):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        timeout = daemon.request_timeout  # slow-client read bound

        # -- plumbing --------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002 (stdlib name)
            logger.debug("%s %s", self.address_string(), format % args)

        def _reply(self, status: int, payload: Dict[str, object]) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _fail(self, status: int, kind: str, message: str) -> None:
            self._reply(status, {"protocol": PROTOCOL_VERSION,
                                 "error": {"type": kind,
                                           "message": message}})

        # -- routes ----------------------------------------------------

        def do_GET(self):
            if self.path in ("/v1/status", "/status"):
                self._reply(200, daemon.status())
            elif self.path == "/healthz":
                self._reply(200, {"ok": True})
            else:
                self._fail(404, "NotFound", f"unknown path {self.path}")

        def do_POST(self):
            if self.path in ("/v1/shutdown", "/shutdown"):
                self._reply(200, {"ok": True, "stopping": True})
                # stop() joins threads; run it off this handler thread.
                threading.Thread(target=daemon.stop, daemon=True).start()
                return
            if self.path not in ("/v1/run", "/run"):
                self._fail(404, "NotFound", f"unknown path {self.path}")
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                length = -1
            if not 0 < length <= MAX_BODY_BYTES:
                self._fail(400, "BadRequest",
                           "missing, malformed or oversized body")
                return
            try:
                body = json.loads(self.rfile.read(length))
            except (ValueError, UnicodeDecodeError) as error:
                self._fail(400, "BadRequest",
                           f"body is not valid JSON: {error}")
                return
            if not isinstance(body, dict) \
                    or not isinstance(body.get("plans"), list) \
                    or not body["plans"]:
                self._fail(400, "BadRequest",
                           'body must be {"plans": [<plan>, ...], ...}')
                return
            try:
                deadline = None if body.get("deadline") is None \
                    else float(body["deadline"])
            except (TypeError, ValueError):
                self._fail(400, "BadRequest", "deadline must be a number")
                return

            # Per-plan parse isolation: a malformed artifact fails its
            # slot; well-formed fellow plans are still served.
            slots: List[Optional[Dict[str, object]]] = []
            plans: List[Plan] = []
            for item in body["plans"]:
                try:
                    plans.append(Plan.from_json(json.dumps(item)))
                    slots.append(None)
                except Exception as error:
                    slots.append({"ok": False,
                                  "error": {"type": type(error).__name__,
                                            "message": str(error)}})
            batch: Dict[str, int] = {"plans": 0, "clients": 0}
            results: List[FlowResult] = []
            if plans:
                try:
                    ticket = daemon._admit(plans, deadline)
                    results = daemon._await(ticket)
                    batch = ticket.batch
                except DeadlineExceeded as error:
                    self._fail(504, "DeadlineExceeded", str(error))
                    return
                except RuntimeError as error:
                    self._fail(503, "Unavailable", str(error))
                    return
            return_edges = bool(body.get("return_edges", False))
            encoded = iter([result_payload(result, return_edges)
                            for result in results])
            payload = [slot if slot is not None else next(encoded)
                       for slot in slots]
            self._reply(200, {
                "protocol": PROTOCOL_VERSION,
                "results": payload,
                "degraded": daemon.store.degraded,
                "batch": batch,
            })

    return Handler
