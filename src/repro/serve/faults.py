"""Deterministic chaos: injectable faults for every degradation path.

The resilience claims of :mod:`repro.serve` are only worth what their
tests can prove, so every failure mode the daemon degrades around has
an injectable, *deterministic* stand-in here:

* :class:`FlakyBackend` wraps any
  :class:`~repro.pipeline.backends.StoreBackend` and raises queued
  transport faults (or a permanent outage) from its operations —
  the store-degradation path (``ScoreStore.degraded``) becomes a unit
  test instead of an incident. It mirrors the semantics of
  :meth:`~repro.pipeline.backends.InMemoryKVServer.inject_faults`:
  queued faults fire once each, on any operation, in order.
* :class:`ChaosMethod` wraps any backbone method and runs picklable
  hooks before scoring: :class:`Sleep` (slow scoring → deadline
  expiry), :class:`RaiseOnce` (a per-plan scoring failure),
  :class:`KillWorkerOnce` (``os._exit`` inside a worker process → the
  pool's serial-retry path). The *Once* hooks coordinate through a
  flag file so they fire exactly once across processes — the retry
  must succeed, in whatever process it runs.

Nothing here sleeps or kills unless explicitly configured; importing
the module is free of side effects.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional

from ..backbones.base import BackboneMethod, ScoredEdges
from ..graph.edge_table import EdgeTable
from ..pipeline.backends import (EntryInfo, KVUnavailableError, RawEntry,
                                 StoreBackend)
from ..pipeline.fingerprint import fingerprint_method


class ChaosFailure(RuntimeError):
    """The failure a :class:`RaiseOnce` hook injects."""


# ----------------------------------------------------------------------
# Backend chaos
# ----------------------------------------------------------------------

class FlakyBackend(StoreBackend):
    """A backend whose faults are scripted by the test.

    Wraps an inner backend; :meth:`inject` queues exceptions that are
    raised (one per operation, in order) before the operation reaches
    the inner backend, and :meth:`outage` switches every operation to
    raising :class:`~repro.pipeline.backends.KVUnavailableError` until
    :meth:`restore` is called. ``latency`` seconds of real sleep per
    operation simulate a slow store.
    """

    scheme = "chaos"

    def __init__(self, inner: StoreBackend, latency: float = 0.0,
                 sleep=time.sleep):
        self.inner = inner
        self.latency = float(latency)
        self.calls: List[str] = []
        self._sleep = sleep
        self._fault_queue: List[Exception] = []
        self._outage: Optional[Exception] = None

    def inject(self, *errors: Exception) -> None:
        """Queue faults raised before the next operations, in order."""
        self._fault_queue.extend(errors)

    def outage(self, error: Optional[Exception] = None) -> None:
        """Every operation fails until :meth:`restore` — a dead service."""
        self._outage = error if error is not None \
            else KVUnavailableError("injected permanent outage")

    def restore(self) -> None:
        """End a permanent outage."""
        self._outage = None

    def _enter(self, op: str) -> None:
        self.calls.append(op)
        if self.latency:
            self._sleep(self.latency)
        if self._outage is not None:
            raise self._outage
        if self._fault_queue:
            raise self._fault_queue.pop(0)

    # -- StoreBackend interface ----------------------------------------

    def get(self, key: str, touch: bool = True) -> Optional[RawEntry]:
        self._enter("get")
        return self.inner.get(key, touch=touch)

    def put(self, key: str, entry: RawEntry) -> None:
        self._enter("put")
        self.inner.put(key, entry)

    def contains(self, key: str) -> bool:
        self._enter("contains")
        return self.inner.contains(key)

    def delete(self, key: str) -> bool:
        self._enter("delete")
        return self.inner.delete(key)

    def keys(self) -> List[str]:
        self._enter("keys")
        return self.inner.keys()

    def entries(self) -> List[EntryInfo]:
        self._enter("entries")
        return self.inner.entries()

    def spec(self) -> Optional[str]:
        return None  # faults are process-local; workers ship results back

    def describe(self) -> str:
        return f"chaos({self.inner.describe()})"


# ----------------------------------------------------------------------
# Scoring chaos
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Sleep:
    """Hook: slow scoring down by ``seconds`` (deadline-expiry tests)."""

    seconds: float

    def __call__(self) -> None:
        time.sleep(self.seconds)


@dataclass(frozen=True)
class RaiseOnce:
    """Hook: raise :class:`ChaosFailure` the first time it fires.

    ``flag_path`` names a file used as the cross-process "already
    fired" marker, so a retried computation succeeds wherever it runs.
    """

    flag_path: str
    message: str = "injected scoring failure"

    def __call__(self) -> None:
        if _trip(self.flag_path):
            raise ChaosFailure(self.message)


@dataclass(frozen=True)
class KillWorkerOnce:
    """Hook: hard-kill the hosting process the first time it fires.

    ``os._exit`` skips every handler — exactly what a SIGKILLed or
    OOM-killed worker looks like to the pool. The flag file guarantees
    the serial retry (parent process or replacement worker) proceeds.
    """

    flag_path: str
    exit_code: int = 13

    def __call__(self) -> None:
        if _trip(self.flag_path):
            os._exit(self.exit_code)


def _trip(flag_path: str) -> bool:
    """Atomically create ``flag_path``; True when this call created it."""
    try:
        # repro: ignore[RPA004] raw fd closed on the next statement;
        # O_CREAT|O_EXCL is the atomic create-once idiom and nothing
        # between open and close can raise
        fd = os.open(flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


class ChaosMethod(BackboneMethod):
    """A backbone method whose scoring runs fault hooks first.

    Wraps a real method; scores (and extraction, budgets, metadata)
    are the inner method's, so once the hooks have fired the results
    are bit-identical to the unwrapped method. Picklable as long as
    the inner method and hooks are, which every shipped hook is.
    """

    def __init__(self, inner: BackboneMethod, hooks=()):
        self._inner = inner
        self._hooks = tuple(hooks)
        # Public (non-underscore) attributes land in the method config
        # the cache fingerprints, keeping distinct wrapped methods on
        # distinct score-cache keys.
        self.name = f"chaos({inner.name})"
        self.code = inner.code
        self.parameter_free = inner.parameter_free
        self.extraction_only_params = tuple(inner.extraction_only_params)
        self.wraps = fingerprint_method(inner)

    @property
    def inner(self) -> BackboneMethod:
        return self._inner

    def score(self, table: EdgeTable) -> ScoredEdges:
        for hook in self._hooks:
            hook()
        return self._inner.score(table)

    def extract_from_scores(self, scored: ScoredEdges, **budget):
        return self._inner.extract_from_scores(scored, **budget)

    def default_budget(self):
        return self._inner.default_budget()
