"""k-core decomposition backbone (Seidman 1983).

One of the "classic ways to do network backboning" the paper's related
work lists: recursively strip nodes of degree below ``k``; the k-core is
the maximal subgraph where every node keeps at least ``k`` neighbors.
Included as an additional structural baseline beyond the paper's main
five — useful for sanity comparisons in examples and tests.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from ..graph.edge_table import EdgeTable
from ..graph.graph import Graph
from .base import BackboneMethod, ScoredEdges, prepare_table


def core_numbers(table: EdgeTable) -> np.ndarray:
    """Core number per node via min-degree peeling.

    The core number of a node is the largest ``k`` such that the node
    belongs to the k-core. Directed tables are treated as undirected.
    """
    working = table if not table.directed else table.symmetrized("sum")
    working = working.without_self_loops()
    graph = Graph(working)
    n = working.n_nodes
    degree_work = working.degree().astype(np.int64)
    core = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    heap: List[Tuple[int, int]] = [(int(d), v)
                                   for v, d in enumerate(degree_work)]
    heapq.heapify(heap)
    peel_level = 0
    while heap:
        d, node = heapq.heappop(heap)
        if removed[node] or d != degree_work[node]:
            continue  # stale heap entry
        removed[node] = True
        peel_level = max(peel_level, d)
        core[node] = peel_level
        neighbors, _ = graph.neighbors_of(node)
        for neighbor in neighbors.tolist():
            if not removed[neighbor]:
                degree_work[neighbor] -= 1
                heapq.heappush(heap, (int(degree_work[neighbor]),
                                      neighbor))
    return core


class KCore(BackboneMethod):
    """Backbone keeping edges inside the k-core.

    ``score(edge) = min(core(u), core(v))``: thresholding at ``k - 0.5``
    keeps exactly the k-core's edges.
    """

    name = "k-core"
    code = "KC"
    # Core numbers are scored for every k; k only sets the default cut.
    extraction_only_params = ("k",)

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.k = int(k)

    def score(self, table: EdgeTable) -> ScoredEdges:
        table = prepare_table(table)
        working = table if not table.directed \
            else table.symmetrized("sum")
        core = core_numbers(working)
        score = np.minimum(core[working.src],
                           core[working.dst]).astype(np.float64)
        return ScoredEdges(table=working, score=score, method=self.name)

    def default_budget(self):
        """With no explicit budget, keep the configured k-core."""
        return {"threshold": self.k - 0.5}
