"""Name-indexed access to every backbone method.

The experiment harness iterates "all six methods of the paper" in many
places; this registry is the single source of that list.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.noise_corrected import (NoiseCorrectedBackbone,
                                    NoiseCorrectedPValue)
from .base import BackboneMethod
from .disparity import DisparityFilter
from .doubly_stochastic import DoublyStochastic
from .high_salience import HighSalienceSkeleton
from .kcore import KCore
from .mst import MaximumSpanningTree
from .naive import NaiveThreshold

_FACTORIES: Dict[str, Callable[[], BackboneMethod]] = {
    "NT": NaiveThreshold,
    "MST": MaximumSpanningTree,
    "DS": DoublyStochastic,
    "HSS": HighSalienceSkeleton,
    "DF": DisparityFilter,
    "NC": NoiseCorrectedBackbone,
    "NCp": NoiseCorrectedPValue,
    "KC": KCore,
}

#: Method order used in the paper's figures and tables.
PAPER_METHOD_CODES = ("NT", "MST", "DS", "HSS", "DF", "NC")


def get_method(code: str, **kwargs) -> BackboneMethod:
    """Instantiate a backbone method by its short code (e.g. ``"NC"``)."""
    try:
        factory = _FACTORIES[code]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown backbone code {code!r}; "
                         f"known codes: {known}") from None
    return factory(**kwargs)


def paper_methods() -> List[BackboneMethod]:
    """The six methods of the paper's evaluation, in paper order."""
    return [get_method(code) for code in PAPER_METHOD_CODES]


def method_codes() -> List[str]:
    """All registered short codes."""
    return sorted(_FACTORIES)
