"""Naive thresholding — keep the heaviest edges.

The baseline the paper criticises (Section III-B): with broadly
distributed, locally correlated weights there is no characteristic scale,
so a global weight cut-off either floods the backbone with hub edges or
disconnects the periphery. It is nevertheless the reference point every
sweep includes.
"""

from __future__ import annotations

from ..graph.edge_table import EdgeTable
from .base import BackboneMethod, ScoredEdges, prepare_table


class NaiveThreshold(BackboneMethod):
    """Score each edge by its raw weight."""

    name = "Naive Threshold"
    code = "NT"

    def score(self, table: EdgeTable) -> ScoredEdges:
        table = prepare_table(table)
        return ScoredEdges(table=table, score=table.weight.copy(),
                           method=self.name)
