"""Maximum Spanning Tree backbone (Kruskal, paper Section III-B).

The MST keeps, among all spanning trees, the one with the largest total
weight; it guarantees full node coverage but destroys transitivity and
communities (it is a tree by construction). Directed networks are
symmetrized by summing the two orientations before the tree is built,
and disconnected networks yield a maximum spanning *forest*.
"""

from __future__ import annotations

import numpy as np

from ..graph.edge_table import EdgeTable
from ..graph.union_find import UnionFind
from .base import BackboneMethod, ScoredEdges, prepare_table


class MaximumSpanningTree(BackboneMethod):
    """Parameter-free maximum spanning tree/forest."""

    name = "Maximum Spanning Tree"
    code = "MST"
    parameter_free = True

    def score(self, table: EdgeTable) -> ScoredEdges:
        """Score 1 for edges in the tree, 0 otherwise.

        Kruskal with deterministic tie-breaking: equal weights are taken
        in (src, dst) order, so repeated runs return the same tree even
        when multiple MSTs exist (the ambiguity the paper notes).
        """
        table = prepare_table(table)
        working = table if not table.directed else table.symmetrized("sum")
        order = np.lexsort((working.dst, working.src, -working.weight))
        ds = UnionFind(working.n_nodes)
        in_tree = np.zeros(working.m, dtype=bool)
        for row in order:
            if ds.union(int(working.src[row]), int(working.dst[row])):
                in_tree[row] = True
        return ScoredEdges(table=working,
                           score=in_tree.astype(np.float64),
                           method=self.name)

    def extract_from_scores(self, scored: ScoredEdges, threshold=None,
                            share=None, n_edges=None) -> EdgeTable:
        """Return the tree edges (budget arguments are rejected)."""
        self._resolve_budget(threshold, share, n_edges)
        return scored.table.subset(scored.score > 0.5)
