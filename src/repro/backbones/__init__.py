"""Backbone methods: the shared interface and the paper's five baselines.

The Noise-Corrected method itself lives in :mod:`repro.core`; it shares
the :class:`BackboneMethod` interface defined here and is reachable
through the registry.
"""

from .base import BackboneMethod, ScoredEdges, prepare_table
from .disparity import DisparityFilter
from .doubly_stochastic import (DoublyStochastic, SinkhornConvergenceError,
                                sinkhorn_knopp)
from .high_salience import HighSalienceSkeleton
from .kcore import KCore, core_numbers
from .mst import MaximumSpanningTree
from .naive import NaiveThreshold
from .registry import (PAPER_METHOD_CODES, get_method, method_codes,
                       paper_methods)

__all__ = [
    "BackboneMethod",
    "DisparityFilter",
    "DoublyStochastic",
    "HighSalienceSkeleton",
    "KCore",
    "MaximumSpanningTree",
    "NaiveThreshold",
    "core_numbers",
    "PAPER_METHOD_CODES",
    "ScoredEdges",
    "SinkhornConvergenceError",
    "get_method",
    "method_codes",
    "paper_methods",
    "prepare_table",
    "sinkhorn_knopp",
]
