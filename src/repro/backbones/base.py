"""Common interface shared by all backbone methods.

Every method — the paper's Noise-Corrected contribution and the five
baselines — follows the same two-phase shape:

1. ``score(table)`` assigns each edge a significance score (higher means
   more salient) without dropping anything;
2. a filter keeps edges by score threshold, by share of edges, or by an
   exact edge budget.

Separating the phases is what allows the paper's edge-budget-matched
comparisons (Sections V-D/E/F): every method is asked for the same number
of edges and only the *ranking* differs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..graph.edge_table import EdgeTable
from ..util.validation import require


@dataclass(frozen=True)
class ScoredEdges:
    """Edges with per-edge significance scores.

    Attributes
    ----------
    table:
        The scored edges (self-loops removed).
    score:
        Per-edge significance; higher is more salient.
    method:
        Name of the producing method.
    sdev:
        Optional per-edge standard deviation of the score. Only the
        Noise-Corrected method provides it; it enables the δ filter and
        confidence intervals.
    info:
        Optional method-specific metadata about how the scores were
        produced (e.g. the High-Salience Skeleton records its root
        sample: ``n_roots``, ``root_fraction``, ``exact``, ``seed``).
    """

    table: EdgeTable
    score: np.ndarray
    method: str
    sdev: Optional[np.ndarray] = field(default=None)
    info: Optional[Dict[str, object]] = field(default=None)

    def __post_init__(self):
        require(len(self.score) == self.table.m,
                "score must have one entry per edge")
        if self.sdev is not None:
            require(len(self.sdev) == self.table.m,
                    "sdev must have one entry per edge")

    @property
    def m(self) -> int:
        """Number of scored edges."""
        return self.table.m

    def filter(self, threshold: float) -> EdgeTable:
        """Keep edges whose score strictly exceeds ``threshold``."""
        return self.table.subset(self.score > threshold)

    def top_k(self, k: int) -> EdgeTable:
        """Keep exactly the ``k`` highest-scoring edges (deterministic)."""
        return self.table.top_k_by(self.score, min(int(k), self.m))

    def share_to_k(self, share: float) -> int:
        """Edge budget equivalent to ``share`` — the single rounding rule.

        Every share-based filter (:meth:`top_share`,
        :meth:`top_share_many`, :meth:`threshold_for_share`) derives its
        ``k`` from this method, so a share maps to the same edge count
        everywhere; at tiny shares ``round`` may yield ``k = 0`` (an
        empty backbone), which the threshold form mirrors exactly.
        """
        require(0.0 <= share <= 1.0, f"share must be in [0, 1], got {share}")
        return min(int(round(share * self.m)), self.m)

    def top_share(self, share: float) -> EdgeTable:
        """Keep the top ``share`` fraction of edges by score."""
        return self.top_k(self.share_to_k(share))

    def top_share_many(self, shares) -> list:
        """Backbones at several shares, ranking the edges only once.

        Output is bit-identical to ``[self.top_share(s) for s in shares]``
        (same sort keys, same tie-breaking); the shared ranking just
        removes the per-share ``lexsort`` that dominates sweep filtering.
        """
        order = np.lexsort((np.arange(self.m), -self.table.weight,
                            -self.score))
        backbones = []
        for share in shares:
            k = self.share_to_k(share)
            backbones.append(self.table.subset(np.sort(order[:k])))
        return backbones

    def threshold_for_share(self, share: float) -> float:
        """Score threshold approximating the ``share_to_k`` edge budget.

        Derives ``k`` exactly like :meth:`top_share` (they used to
        disagree at tiny shares: ``int(round(...))`` vs
        ``max(1, ...)``) and returns the ``k``-th highest score, so
        the strict ``score > threshold`` cut keeps at most ``k`` edges
        (``k - 1`` when scores are distinct — the filter has always
        been strict). When the share rounds to ``k = 0``, the maximum
        score is returned and the cut keeps nothing, mirroring the
        empty ``top_share`` backbone.
        """
        require(self.m > 0,
                "threshold_for_share needs at least one scored edge")
        k = self.share_to_k(share)
        ordered = np.sort(self.score)[::-1]
        return float(ordered[max(k, 1) - 1])


class BackboneMethod(ABC):
    """Abstract backbone extraction method."""

    #: Human-readable method name (matches the paper's terminology).
    name: str = "abstract"
    #: Short code used in tables (NT, MST, DS, HSS, DF, NC).
    code: str = "??"
    #: Parameter-free methods (MST, DS) ignore thresholds/budgets and
    #: appear as single points in the paper's sweeps.
    parameter_free: bool = False
    #: Instance attributes that influence only :meth:`extract` (never
    #: :meth:`score`). The pipeline cache excludes them from method
    #: fingerprints so e.g. NC runs at different deltas share one
    #: scored table.
    extraction_only_params: tuple = ()

    @abstractmethod
    def score(self, table: EdgeTable) -> ScoredEdges:
        """Assign a significance score to every (non-loop) edge."""

    def extract(self, table: EdgeTable, threshold: Optional[float] = None,
                share: Optional[float] = None,
                n_edges: Optional[int] = None) -> EdgeTable:
        """Score and filter in one call.

        Exactly one of ``threshold``, ``share`` or ``n_edges`` must be
        given; parameter-free methods accept none of them, and methods
        with a :meth:`default_budget` fall back to it. Validation lives
        in :meth:`extract_from_scores` (the seam every override shares).
        """
        return self.extract_from_scores(self.score(table),
                                        threshold=threshold, share=share,
                                        n_edges=n_edges)

    def extract_from_scores(self, scored: ScoredEdges,
                            threshold: Optional[float] = None,
                            share: Optional[float] = None,
                            n_edges: Optional[int] = None) -> EdgeTable:
        """The filter phase of :meth:`extract`, on existing scores.

        This is the seam the pipeline cache relies on: given a cached
        ``ScoredEdges``, it must reproduce ``extract`` exactly, so
        methods whose extraction is more than a plain cut (NC's
        δ-adjusted ranking, the spanning logic of MST/DS) override this
        method rather than ``extract``.
        """
        threshold, share, n_edges = self._resolve_budget(threshold, share,
                                                         n_edges)
        if self.parameter_free:
            return scored.filter(0.0)
        if threshold is not None:
            return scored.filter(threshold)
        if share is not None:
            return scored.top_share(share)
        return scored.top_k(n_edges)

    def describe(self) -> Dict[str, object]:
        """Declarative identity of this configured method instance.

        Returns the method's short code, human name, class path,
        parameter-freeness and *full* public configuration (including
        extraction-only knobs such as NC's ``delta``, which the score
        cache excludes but a request's identity must include). This is
        the hook :mod:`repro.flow` compiles plans and plan fingerprints
        from.
        """
        cls = type(self)
        state = getattr(self, "__dict__", None) or {}
        return {
            "code": self.code,
            "name": self.name,
            "class": f"{cls.__module__}.{cls.__qualname__}",
            "parameter_free": self.parameter_free,
            "config": {key: value for key, value in state.items()
                       if not key.startswith("_")},
        }

    def filter_spec(self, threshold: Optional[float] = None,
                    share: Optional[float] = None,
                    n_edges: Optional[int] = None) -> Dict[str, object]:
        """Declarative description of the filter phase of :meth:`extract`.

        Resolves the budget exactly like :meth:`extract` (defaults
        applied, mutual exclusion enforced) but returns a small
        JSON-able mapping instead of touching any data — the form
        :mod:`repro.flow` plans carry and ``repro backbone --explain``
        prints. ``{"kind": "natural"}`` marks parameter-free methods
        whose extraction ignores budgets entirely.
        """
        threshold, share, n_edges = self._resolve_budget(threshold, share,
                                                         n_edges)
        if self.parameter_free:
            return {"kind": "natural"}
        if threshold is not None:
            return {"kind": "threshold", "threshold": float(threshold)}
        if share is not None:
            return {"kind": "share", "share": float(share)}
        return {"kind": "n_edges", "n_edges": int(n_edges)}

    def default_budget(self) -> Optional[Dict[str, float]]:
        """Budget used when :meth:`extract` is called with none.

        ``None`` (the base default) means a budget is mandatory.
        Methods with a natural operating point return a single-entry
        mapping — e.g. ``{"threshold": 0.5}`` for the High-Salience
        Skeleton — and the CLI uses this hook to know which methods may
        run without budget flags.
        """
        return None

    def _resolve_budget(self, threshold: Optional[float],
                        share: Optional[float],
                        n_edges: Optional[int]):
        """Validate the budget arguments, applying the default if any."""
        chosen = [name for name, value in
                  (("threshold", threshold), ("share", share),
                   ("n_edges", n_edges)) if value is not None]
        if self.parameter_free:
            require(not chosen,
                    f"{self.name} is parameter-free and accepts no budget")
            return None, None, None
        if not chosen:
            default = self.default_budget()
            if default is not None:
                return (default.get("threshold"), default.get("share"),
                        default.get("n_edges"))
        require(len(chosen) == 1,
                f"give exactly one of threshold/share/n_edges, got {chosen}")
        return threshold, share, n_edges

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def prepare_table(table: EdgeTable) -> EdgeTable:
    """Normalize an input network for backboning.

    Self-loops carry no inter-node information, so every method removes
    them before scoring (matching the reference implementation's
    ``return_self_loops=False`` default).
    """
    require(table.m > 0, "cannot extract a backbone from an empty network")
    return table.without_self_loops()
