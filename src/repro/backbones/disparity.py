"""The Disparity Filter (Serrano, Boguñá & Vespignani, 2009).

The state-of-the-art statistical backbone the paper compares against.
For a node with degree ``k`` and strength ``s``, the null model assumes
the node's total weight is split by ``k - 1`` uniform random cut points;
an incident edge of weight ``w`` then has p-value

``p = (1 - w / s) ** (k - 1)``

Each edge is tested from both of its endpoints' perspectives (source as
emitter, target as receiver; both endpoints for undirected networks) and
survives if *either* test rejects — i.e. its p-value is the minimum of
the two. Crucially, and this is the weakness the NC method addresses,
the two tests never consider the node *pair* jointly: periphery-to-hub
edges always look significant from the peripheral side.
"""

from __future__ import annotations

import numpy as np

from ..graph.edge_table import EdgeTable
from .base import BackboneMethod, ScoredEdges, prepare_table


class DisparityFilter(BackboneMethod):
    """Disparity Filter scoring ``1 - min(p_source, p_target)``."""

    name = "Disparity Filter"
    code = "DF"

    def score(self, table: EdgeTable) -> ScoredEdges:
        table = prepare_table(table)
        if table.directed:
            p_source = _one_sided_p_values(table.weight,
                                           table.out_strength()[table.src],
                                           table.out_degree()[table.src])
            p_target = _one_sided_p_values(table.weight,
                                           table.in_strength()[table.dst],
                                           table.in_degree()[table.dst])
        else:
            strength = table.strength()
            degree = table.degree()
            p_source = _one_sided_p_values(table.weight,
                                           strength[table.src],
                                           degree[table.src])
            p_target = _one_sided_p_values(table.weight,
                                           strength[table.dst],
                                           degree[table.dst])
        p_values = np.minimum(p_source, p_target)
        return ScoredEdges(table=table, score=1.0 - p_values,
                           method=self.name)


def _one_sided_p_values(weight: np.ndarray, strength: np.ndarray,
                        degree: np.ndarray) -> np.ndarray:
    """``(1 - w/s)^(k-1)`` with the degree-one convention ``p = 1``.

    A degree-one node concentrates its whole strength on its only edge;
    the null model has no cut points to compare against, so the edge is
    uninformative from that side (the standard DF convention).
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        share = np.where(strength > 0, weight / strength, 0.0)
    share = np.clip(share, 0.0, 1.0)
    exponent = np.maximum(degree - 1, 0)
    p_values = np.power(1.0 - share, exponent)
    return np.where(exponent == 0, 1.0, p_values)
