"""Doubly-Stochastic filter (Slater, 2009; paper Section III-B).

Two stages:

1. the adjacency matrix is rescaled to doubly stochastic form (all row
   and column sums equal one) by Sinkhorn-Knopp alternation;
2. edges are re-added in descending normalized weight until the backbone
   spans every node in a single connected component.

The paper stresses two limitations that this implementation surfaces
explicitly: the matrix must be square (no bipartite networks), and not
every square matrix *can* be balanced — zero rows/columns or missing
total support make Sinkhorn diverge, in which case
:class:`SinkhornConvergenceError` is raised (the "n/a" cells of the
paper's Table II and Fig. 7).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.edge_table import EdgeTable
from ..graph.union_find import UnionFind
from .base import BackboneMethod, ScoredEdges, prepare_table


class SinkhornConvergenceError(RuntimeError):
    """Raised when the doubly-stochastic transformation is impossible.

    Whether a network can be balanced is a property of the network
    itself, so the verdict is deterministic per (table, method) pair;
    ``cache_negative`` marks the failure as cacheable, letting the
    pipeline store record it once instead of re-running the
    ``max_iterations`` Sinkhorn probe on every sweep.
    """

    cache_negative = "sinkhorn-nonconvergence"


def sinkhorn_knopp(table: EdgeTable, max_iterations: int = 1000,
                   tolerance: float = 1e-8
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Balance ``table``'s adjacency to doubly stochastic form.

    Returns ``(row_scale, col_scale)`` so that the balanced weight of
    edge ``(i, j)`` is ``w_ij * row_scale[i] * col_scale[j]``.

    Raises
    ------
    SinkhornConvergenceError
        If any node has zero out- or in-weight, or the alternation fails
        to reach the tolerance within ``max_iterations``.
    """
    working = table if table.directed else table.as_directed_doubled()
    n = working.n_nodes
    src, dst, weight = working.src, working.dst, working.weight
    row_scale = np.ones(n)
    col_scale = np.ones(n)
    out_zero = np.bincount(src, weights=weight, minlength=n) == 0
    in_zero = np.bincount(dst, weights=weight, minlength=n) == 0
    if out_zero.any() or in_zero.any():
        raise SinkhornConvergenceError(
            "matrix has empty rows or columns; the doubly-stochastic "
            "transformation is not possible")
    for _ in range(max_iterations):
        with np.errstate(divide="ignore", invalid="ignore",
                         over="ignore"):
            row_sums = np.bincount(src, weights=weight * col_scale[dst],
                                   minlength=n)
            row_scale = 1.0 / row_sums
            col_sums = np.bincount(dst, weights=weight * row_scale[src],
                                   minlength=n)
            col_scale = 1.0 / col_sums
        if not (np.all(np.isfinite(row_scale))
                and np.all(np.isfinite(col_scale))):
            raise SinkhornConvergenceError(
                "scaling factors diverged; the matrix cannot be balanced")
        # Convergence check: row sums after the column update.
        row_check = np.bincount(src,
                                weights=weight * row_scale[src]
                                * col_scale[dst],
                                minlength=n)
        if np.max(np.abs(row_check - 1.0)) < tolerance:
            return row_scale, col_scale
    raise SinkhornConvergenceError(
        f"Sinkhorn-Knopp did not converge in {max_iterations} iterations; "
        "the matrix likely lacks total support")


class DoublyStochastic(BackboneMethod):
    """Doubly-Stochastic filter with the connectivity sweep."""

    name = "Doubly Stochastic"
    code = "DS"
    parameter_free = True

    def __init__(self, max_iterations: int = 1000, tolerance: float = 1e-8):
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)

    def score(self, table: EdgeTable) -> ScoredEdges:
        """Score each edge by its balanced (doubly stochastic) weight.

        For undirected tables the two orientations share one balanced
        value; the maximum is reported (they coincide up to symmetry of
        the scaling).
        """
        table = prepare_table(table)
        row_scale, col_scale = sinkhorn_knopp(
            table, max_iterations=self.max_iterations,
            tolerance=self.tolerance)
        balanced = table.weight * row_scale[table.src] \
            * col_scale[table.dst]
        if not table.directed:
            reverse = table.weight * row_scale[table.dst] \
                * col_scale[table.src]
            balanced = np.maximum(balanced, reverse)
        return ScoredEdges(table=table, score=balanced, method=self.name)

    def extract_from_scores(self, scored: ScoredEdges, threshold=None,
                            share=None, n_edges=None) -> EdgeTable:
        """Add edges by descending balanced weight until one component
        spans all non-isolated nodes of the input."""
        self._resolve_budget(threshold, share, n_edges)
        working = scored.table
        order = np.lexsort((working.dst, working.src, -scored.score))
        ds = UnionFind(working.n_nodes)
        isolated = frozenset(working.isolates().tolist())
        target_components = 1 + len(isolated)
        keep = np.zeros(working.m, dtype=bool)
        for row in order:
            keep[row] = True
            ds.union(int(working.src[row]), int(working.dst[row]))
            if ds.n_components == target_components:
                break
        return working.subset(keep)
