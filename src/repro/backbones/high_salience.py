"""High-Salience Skeleton (Grady, Thiemann & Brockmann, 2012).

For every root node ``r``, compute the shortest-path tree on effective
proximities (edge length = ``1 / weight``), then superpose: an edge's
*salience* is the fraction of roots whose tree uses it. Empirically the
salience distribution is bimodal — most edges are either in nearly every
tree or in almost none — so a threshold of 0.5 is canonical, but the
paper sweeps it like any other score.

The method is defined structurally (it never models noise) and costs a
full Dijkstra per node, which is why the paper could not run it beyond a
few thousand edges (Section V-G); the same limitation is documented in
our scalability benchmark.
"""

from __future__ import annotations

import numpy as np

from ..graph.edge_table import EdgeTable
from ..graph.graph import Graph
from ..graph.paths import shortest_path_tree
from .base import BackboneMethod, ScoredEdges, prepare_table


class HighSalienceSkeleton(BackboneMethod):
    """Salience scores from shortest-path-tree superposition."""

    name = "High Salience Skeleton"
    code = "HSS"

    def __init__(self, default_threshold: float = 0.5):
        if not 0.0 <= default_threshold <= 1.0:
            raise ValueError("default_threshold must be in [0, 1]")
        self.default_threshold = float(default_threshold)

    def score(self, table: EdgeTable) -> ScoredEdges:
        table = prepare_table(table)
        working = table if not table.directed else table.symmetrized("sum")
        graph = Graph(working)
        key_to_row = {(int(u), int(v)): row for row, (u, v, _)
                      in enumerate(working.iter_edges())}
        counts = np.zeros(working.m, dtype=np.float64)
        for root in range(working.n_nodes):
            for parent, child in shortest_path_tree(graph, root):
                key = (parent, child) if parent <= child else (child, parent)
                counts[key_to_row[key]] += 1.0
        salience = counts / working.n_nodes
        return ScoredEdges(table=working, score=salience, method=self.name)

    def extract(self, table: EdgeTable, threshold=None, share=None,
                n_edges=None) -> EdgeTable:
        """Default extraction keeps edges with salience > 0.5."""
        if threshold is None and share is None and n_edges is None:
            threshold = self.default_threshold
        return super().extract(table, threshold=threshold, share=share,
                               n_edges=n_edges)
