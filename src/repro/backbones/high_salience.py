"""High-Salience Skeleton (Grady, Thiemann & Brockmann, 2012).

For every root node ``r``, compute the shortest-path tree on effective
proximities (edge length = ``1 / weight``), then superpose: an edge's
*salience* is the fraction of roots whose tree uses it. Empirically the
salience distribution is bimodal — most edges are either in nearly every
tree or in almost none — so a threshold of 0.5 is canonical, but the
paper sweeps it like any other score.

Scoring runs on the batched shortest-path engine
(:mod:`repro.graph.sp_engine`): trees come back as predecessor *arc
indices* and superposition is a single ``bincount`` through
``Graph.arc_row``, instead of one pure-Python Dijkstra plus a
``(u, v) -> row`` dict lookup per tree edge. That lifts the "few thousand
edges" ceiling the paper reports for HSS (Section V-G).

Exact-vs-sampled contract
-------------------------
* ``roots=None`` (default) superposes **all** roots and reproduces the
  reference implementation bit for bit (identical ``ScoredEdges.score``).
* ``roots=k`` superposes ``k`` roots drawn without replacement using
  ``seed`` — the salience estimator of Shekhtman, Bagrow & Brockmann,
  which is stable under root subsampling. The result records the
  sampling setup in ``ScoredEdges.info`` (``n_roots``, ``root_fraction``,
  ``exact``, ``seed``) so downstream sweeps can tell estimates apart.
* ``workers=w`` fans root chunks out across processes (see
  :mod:`repro.util.parallel`); it changes wall-clock only, never scores.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.edge_table import EdgeTable
from ..graph.graph import Graph
from ..graph.paths import dijkstra_reference
from ..graph.sp_engine import ShortestPathEngine
from .base import BackboneMethod, ScoredEdges, prepare_table


class HighSalienceSkeleton(BackboneMethod):
    """Salience scores from shortest-path-tree superposition.

    Parameters
    ----------
    default_threshold:
        Salience cut used by :meth:`extract` when no budget is given.
    roots:
        ``None`` for the exact all-roots superposition, or a positive
        root-sample size (capped at the node count).
    seed:
        Seed for the root sample; ignored in exact mode.
    workers:
        Optional process count for root-chunk fan-out.
    """

    name = "High Salience Skeleton"
    code = "HSS"
    # roots/seed change the salience estimate and stay fingerprinted;
    # the default extraction threshold does not touch scores.
    extraction_only_params = ("default_threshold",)

    def __init__(self, default_threshold: float = 0.5,
                 roots: Optional[int] = None, seed: int = 0,
                 workers: Optional[int] = None):
        if not 0.0 <= default_threshold <= 1.0:
            raise ValueError("default_threshold must be in [0, 1]")
        if roots is not None and int(roots) < 1:
            raise ValueError("roots must be a positive sample size or None")
        self.default_threshold = float(default_threshold)
        self.roots = None if roots is None else int(roots)
        self.seed = int(seed)
        self.workers = workers

    def score(self, table: EdgeTable) -> ScoredEdges:
        table = prepare_table(table)
        working = table if not table.directed else table.symmetrized("sum")
        graph = Graph(working)
        n = working.n_nodes
        if self.roots is None:
            roots = np.arange(n, dtype=np.int64)
        else:
            rng = np.random.default_rng(self.seed)
            roots = np.sort(rng.choice(n, size=min(self.roots, n),
                                       replace=False))
        engine = ShortestPathEngine(graph)
        arc_counts = engine.tree_arc_counts(roots, workers=self.workers)
        counts = np.bincount(graph.arc_row, weights=arc_counts,
                             minlength=working.m)
        salience = counts / float(len(roots))
        info = {
            "n_roots": int(len(roots)),
            "root_fraction": float(len(roots)) / n if n else 1.0,
            "exact": self.roots is None,
            "seed": None if self.roots is None else self.seed,
        }
        return ScoredEdges(table=working, score=salience, method=self.name,
                           info=info)

    def default_budget(self):
        """With no explicit budget, keep edges with salience > 0.5."""
        return {"threshold": self.default_threshold}


def reference_salience_scores(table: EdgeTable) -> ScoredEdges:
    """The original per-root heap Dijkstra + dict superposition.

    Kept verbatim as the ground truth the engine-backed
    :meth:`HighSalienceSkeleton.score` must match exactly in all-roots
    mode; also the slow side of the tier-2 perf smoke
    (``benchmarks/bench_hss_engine.py``).
    """
    table = prepare_table(table)
    working = table if not table.directed else table.symmetrized("sum")
    graph = Graph(working)
    key_to_row = {(int(u), int(v)): row for row, (u, v, _)
                  in enumerate(working.iter_edges())}
    counts = np.zeros(working.m, dtype=np.float64)
    for root in range(working.n_nodes):
        _, pred = dijkstra_reference(graph, root)
        for child, parent in enumerate(pred):
            if parent < 0:
                continue
            key = (int(parent), int(child)) if parent <= child \
                else (int(child), int(parent))
            counts[key_to_row[key]] += 1.0
    salience = counts / working.n_nodes
    return ScoredEdges(table=working, score=salience,
                       method=HighSalienceSkeleton.name)
