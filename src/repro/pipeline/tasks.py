"""Declarative sweep task graphs.

A share sweep (the workload behind paper Figs. 7-8 and Table II) is a
three-stage computation per method::

    score(table)  ->  filter at each share  ->  metric on each backbone

The stages for *different methods* are completely independent, so a
sweep decomposes into one :class:`SweepShard` per method. This module
only *describes* that decomposition; :mod:`repro.pipeline.executor`
decides whether shards run serially, against a cache, or fanned out
across worker processes.

Everything here must survive ``pickle`` (shards cross process
boundaries), which is why metrics are small module-level callable
classes instead of the closures the experiment modules used to build:
``CoverageMetric(table)`` replaces ``lambda b: coverage(table, b)``
with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..backbones.base import BackboneMethod
from ..evaluation.coverage import coverage
from ..evaluation.stability import average_stability
from ..evaluation.sweep import DEFAULT_SHARES
from ..graph.edge_table import EdgeTable
from ..graph.metrics import average_degree, density
from ..util.validation import require

Metric = Callable[[EdgeTable], float]


# ----------------------------------------------------------------------
# Picklable metric specs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CoverageMetric:
    """Share of the base table's non-isolated nodes kept by a backbone."""

    base: EdgeTable

    def __call__(self, backbone: EdgeTable) -> float:
        return coverage(self.base, backbone)


@dataclass(frozen=True)
class StabilityMetric:
    """Average cross-year Spearman stability on a backbone's edges."""

    years: Tuple[EdgeTable, ...]

    def __call__(self, backbone: EdgeTable) -> float:
        return average_stability(list(self.years), backbone)


@dataclass(frozen=True)
class DensityMetric:
    """Edge density of the backbone itself."""

    def __call__(self, backbone: EdgeTable) -> float:
        return density(backbone)


@dataclass(frozen=True)
class AverageDegreeMetric:
    """Average degree of the backbone itself."""

    def __call__(self, backbone: EdgeTable) -> float:
        return average_degree(backbone)


@dataclass(frozen=True)
class EdgeCountMetric:
    """Number of edges kept (useful for eyeballing budgets)."""

    def __call__(self, backbone: EdgeTable) -> float:
        return float(backbone.m)


#: Metric names accepted by the CLI ``sweep`` subcommand.
METRIC_BUILDERS: Dict[str, Callable[[EdgeTable], Metric]] = {
    "coverage": lambda table: CoverageMetric(table),
    "density": lambda table: DensityMetric(),
    "average-degree": lambda table: AverageDegreeMetric(),
    "edges": lambda table: EdgeCountMetric(),
}


def named_metric(name: str, table: EdgeTable) -> Metric:
    """Resolve a CLI metric name against the input ``table``."""
    require(name in METRIC_BUILDERS,
            f"unknown metric {name!r}; choose from "
            f"{sorted(METRIC_BUILDERS)}")
    return METRIC_BUILDERS[name](table)


# ----------------------------------------------------------------------
# Task graph
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepShard:
    """One independent unit of sweep work: a single method's series.

    ``shares`` is empty for parameter-free methods — they contribute one
    point at their natural share instead of a filtered series.
    """

    method: BackboneMethod
    shares: Tuple[float, ...]
    metric: Metric

    @property
    def code(self) -> str:
        return self.method.code


@dataclass(frozen=True)
class SweepGraph:
    """A whole sweep: a shared input table plus independent shards."""

    table: EdgeTable
    shards: Tuple[SweepShard, ...] = field(default=())

    @property
    def codes(self) -> List[str]:
        return [shard.code for shard in self.shards]


def plan_sweep(methods: Sequence[BackboneMethod], table: EdgeTable,
               metric: Metric,
               shares: Sequence[float] = DEFAULT_SHARES) -> SweepGraph:
    """Describe ``sweep_methods(methods, table, metric, shares)`` as shards."""
    require(len(methods) > 0, "plan_sweep needs at least one method")
    shards = tuple(
        SweepShard(method=method,
                   shares=() if method.parameter_free else tuple(shares),
                   metric=metric)
        for method in methods)
    return SweepGraph(table=table, shards=shards)
