"""Execution engine for sweep task graphs.

Runs the shards of a :class:`repro.pipeline.tasks.SweepGraph` either
serially or fanned out over worker processes (the same ``workers=``
knob as :mod:`repro.util.parallel`), optionally against a
:class:`repro.pipeline.store.ScoreStore` so that every
``method.score(table)`` is computed at most once per store lifetime.

Guarantees
----------
* **Bit identity.** The shard runner mirrors
  :func:`repro.evaluation.sweep.share_sweep` operation for operation,
  and scoring is deterministic, so serial, cached and sharded runs all
  return identical ``SweepSeries`` — cached/parallel execution is purely
  a wall-clock optimization.
* **Resumability.** Workers write scored tables straight into the
  disk tier. An interrupted sweep re-run against the same store finds
  its completed shards and only scores what is missing.

The :class:`Pipeline` facade packages the same machinery for
request-style use: score once, then serve many budget-matched
extractions (``extract``) and sweeps (``sweep``) from the cache.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..backbones.base import BackboneMethod, ScoredEdges
from ..backbones.doubly_stochastic import SinkhornConvergenceError
from ..evaluation.sweep import DEFAULT_SHARES, SweepSeries
from ..graph.edge_table import EdgeTable
from ..obs.trace import span
from ..util.parallel import parallel_map, resolve_workers
from .fingerprint import fingerprint_score_request, fingerprint_table
from .store import CacheStats, PathLike, ScoreStore
from .tasks import Metric, SweepGraph, SweepShard, plan_sweep


def score_with_store(method: BackboneMethod, table: EdgeTable,
                     store: Optional[ScoreStore],
                     key: Optional[str] = None) -> ScoredEdges:
    """``method.score(table)``, served from ``store`` when possible.

    ``key`` accepts a precomputed fingerprint so sweep loops hash the
    table once instead of once per method.

    The ``score`` span's ``pid`` attribute tells worker-process
    scoring apart from in-parent scoring in an exported trace.
    """
    with span("score", method=method.name, pid=os.getpid()):
        if store is None:
            return method.score(table)
        if key is None:
            key = fingerprint_score_request(table, method)
        return store.get_or_compute(key, lambda: method.score(table),
                                    label=method.name)


@dataclass
class SweepOutcome:
    """Sweep results plus the cache traffic they generated."""

    series: Dict[str, SweepSeries]
    stats: CacheStats


def execute(graph: SweepGraph, store: Optional[ScoreStore] = None,
            workers: Optional[int] = None,
            table_fingerprint: Optional[str] = None) -> SweepOutcome:
    """Run every shard of ``graph``; see the module docstring for the
    serial/cached/sharded equivalence contract.

    ``table_fingerprint`` accepts a precomputed (or source-resolved,
    see :meth:`ScoreStore.resolve_source`) table digest so file-driven
    sweeps never hash — or even need to parse — the table for key
    derivation.
    """
    keys: List[Optional[str]] = [None] * len(graph.shards)
    if store is not None:
        table_fp = table_fingerprint if table_fingerprint is not None \
            else fingerprint_table(graph.table)
        keys = [fingerprint_score_request(graph.table, shard.method,
                                          table_fingerprint=table_fp)
                for shard in graph.shards]

    count = min(resolve_workers(workers), len(graph.shards))
    if count <= 1:
        series = [_run_shard(shard, graph.table, store, key=key)
                  for shard, key in zip(graph.shards, keys)]
        stats = CacheStats() if store is None else store.stats
        return SweepOutcome(series=_by_code(graph, series), stats=stats)

    # Shards whose scores the parent store already holds run inline —
    # only actual scoring work is worth shipping to a worker (this is
    # also what lets a warm *memory-only* store serve sharded sweeps).
    series: List[Optional[SweepSeries]] = [None] * len(graph.shards)
    pending = []
    for index, shard in enumerate(graph.shards):
        if store is not None and keys[index] in store:
            series[index] = _run_shard(shard, graph.table, store,
                                       key=keys[index])
        else:
            pending.append((index, shard))

    spec = None if store is None else store.worker_spec()
    payloads = [(shard, graph.table, spec, store is not None,
                 keys[index]) for index, shard in pending]
    # retry_serial: a dead worker degrades to running the lost shards
    # in-process (identical results; scoring is deterministic) instead
    # of surfacing a raw BrokenProcessPool from a sweep.
    results = parallel_map(_run_shard_remote, payloads,
                           workers=min(count, len(pending)),
                           retry_serial=True)
    stats = CacheStats()
    for (index, _), (shard_series, worker_stats, extras) \
            in zip(pending, results):
        series[index] = shard_series
        if worker_stats is not None:
            stats.merge(worker_stats)
        if store is not None:
            for key, scored in extras:
                store.adopt(key, scored)
    if store is not None:
        store.stats.merge(stats)
        stats = store.stats
    return SweepOutcome(series=_by_code(graph, series), stats=stats)


def run_sweep(methods: Sequence[BackboneMethod], table: EdgeTable,
              metric: Metric,
              shares: Sequence[float] = DEFAULT_SHARES,
              store: Optional[ScoreStore] = None,
              cache_dir: Optional[PathLike] = None,
              workers: Optional[int] = None,
              backend=None,
              table_fingerprint: Optional[str] = None
              ) -> Dict[str, SweepSeries]:
    """Cached/sharded drop-in for
    :func:`repro.evaluation.sweep.sweep_methods`.

    ``cache_dir`` (a directory path or backend spec string such as
    ``sqlite://scores.sqlite``) and ``backend`` (an explicit
    :class:`~repro.pipeline.backends.StoreBackend`) are conveniences
    for one-shot calls: they open a fresh :class:`ScoreStore` when no
    ``store`` is passed explicitly. ``table_fingerprint`` forwards a
    precomputed table digest to :func:`execute`.
    """
    if store is None and (cache_dir is not None or backend is not None):
        store = ScoreStore(cache_dir, backend=backend)
    graph = plan_sweep(methods, table, metric, shares=shares)
    return execute(graph, store=store, workers=workers,
                   table_fingerprint=table_fingerprint).series


def _by_code(graph: SweepGraph,
             series: List[SweepSeries]) -> Dict[str, SweepSeries]:
    return {item.code: item for item in series}


def _run_shard(shard: SweepShard, table: EdgeTable,
               store: Optional[ScoreStore],
               key: Optional[str] = None) -> SweepSeries:
    """One method's series — the cached mirror of ``share_sweep``."""
    method = shard.method
    try:
        scored = score_with_store(method, table, store, key=key)
    except SinkhornConvergenceError:
        # Same "n/a" convention as sweep_methods: not balanceable.
        return SweepSeries(code=method.code, shares=[], values=[],
                           parameter_free=True)
    if method.parameter_free:
        backbone = method.extract_from_scores(scored)
        share = backbone.m / max(table.without_self_loops().m, 1)
        return SweepSeries(code=method.code, shares=[share],
                           values=[shard.metric(backbone)],
                           parameter_free=True)
    values = [shard.metric(backbone)
              for backbone in scored.top_share_many(shard.shares)]
    return SweepSeries(code=method.code, shares=list(shard.shares),
                       values=values, parameter_free=False)


def _run_shard_remote(
        payload: Tuple[SweepShard, EdgeTable, Optional[str], bool,
                       Optional[str]]
) -> Tuple[SweepSeries, Optional[CacheStats], tuple]:
    """Worker-side shard execution (module-level for picklability).

    Each worker reopens its own store over the parent's backend spec
    (a cache directory or SQLite file); the in-memory tiers are
    per-process but the persistent tier is common ground, which is
    what makes interrupted or repeated sweeps resumable. When the
    parent's store has no shareable persistent tier, workers ship
    their results (scored tables and negative verdicts alike) back as
    ``extras`` for the parent to adopt — a memory-only store still
    caches across a sharded sweep.
    """
    shard, table, spec, use_store, key = payload
    if not use_store:
        return _run_shard(shard, table, None), None, ()
    store = ScoreStore(spec)
    series = _run_shard(shard, table, store, key=key)
    extras = tuple(store.memory_entries()) if spec is None else ()
    return series, store.stats, extras


# ----------------------------------------------------------------------
# Request-style facade
# ----------------------------------------------------------------------

class Pipeline:
    """Score once, serve many extractions.

    Wraps a :class:`ScoreStore` and a ``workers=`` preference behind
    the library's two-phase backbone contract: :meth:`score` is cached,
    and :meth:`extract` / :meth:`sweep` reuse cached scores so repeated
    budget-matched requests over the same graph never rescore.

    Parameters
    ----------
    store:
        Explicit store to use. Defaults to a fresh in-memory store
        (or one over ``cache_dir`` / ``backend`` when given).
    cache_dir:
        Location of the persistent tier of the default store: a
        directory path or any backend spec string
        (``sqlite://scores.sqlite``, a ``.sqlite`` path, ``kv://``).
    workers:
        Default process fan-out for :meth:`sweep` and :meth:`warm`.
    backend:
        Explicit :class:`~repro.pipeline.backends.StoreBackend` for
        the default store; mutually exclusive with ``cache_dir``.
    """

    def __init__(self, store: Optional[ScoreStore] = None,
                 cache_dir: Optional[PathLike] = None,
                 workers: Optional[int] = None, backend=None):
        if store is None:
            store = ScoreStore(cache_dir, backend=backend)
        self.store = store
        self.workers = workers

    @property
    def stats(self) -> CacheStats:
        """Cache traffic of the underlying store."""
        return self.store.stats

    def score(self, method: BackboneMethod,
              table: EdgeTable) -> ScoredEdges:
        """Cached ``method.score(table)``."""
        return score_with_store(method, table, self.store)

    def extract(self, method: BackboneMethod, table: EdgeTable,
                threshold: Optional[float] = None,
                share: Optional[float] = None,
                n_edges: Optional[int] = None) -> EdgeTable:
        """Cached ``method.extract(table, ...)`` — identical output."""
        scored = self.score(method, table)
        return method.extract_from_scores(scored, threshold=threshold,
                                          share=share, n_edges=n_edges)

    def sweep(self, methods: Sequence[BackboneMethod], table: EdgeTable,
              metric: Metric,
              shares: Sequence[float] = DEFAULT_SHARES,
              workers: Optional[int] = None) -> Dict[str, SweepSeries]:
        """Cached/sharded share sweep over ``methods``."""
        graph = plan_sweep(methods, table, metric, shares=shares)
        chosen = self.workers if workers is None else workers
        return execute(graph, store=self.store, workers=chosen).series

    def warm(self, methods: Sequence[BackboneMethod], table: EdgeTable,
             workers: Optional[int] = None) -> int:
        """Pre-score ``methods`` on ``table`` into the store.

        Returns the number of scored tables now cached. Methods whose
        scoring is inapplicable (Sinkhorn non-convergence) are skipped.
        With workers and a memory-only store, workers ship their scored
        tables back to be inserted here; with a disk tier they write
        entries directly.
        """
        chosen = min(resolve_workers(self.workers if workers is None
                                     else workers), len(methods))
        table_fp = fingerprint_table(table)
        keys = [fingerprint_score_request(table, method,
                                          table_fingerprint=table_fp)
                for method in methods]
        warmed = 0
        if chosen <= 1:
            for method, key in zip(methods, keys):
                try:
                    score_with_store(method, table, self.store, key=key)
                except SinkhornConvergenceError:
                    continue
                warmed += 1
            return warmed
        payloads = []
        for method, key in zip(methods, keys):
            if key in self.store:
                warmed += 1  # already cached; nothing to ship out
                continue
            payloads.append((method, table, self.store.worker_spec(),
                             key))
        results = parallel_map(_warm_remote, payloads,
                               workers=min(chosen, len(payloads)),
                               retry_serial=True)
        for result in results:
            if result is None:
                continue
            key, scored = result
            warmed += 1
            if scored is not None and key not in self.store:
                self.store.adopt(key, scored)
        return warmed


def _warm_remote(
        payload: Tuple[BackboneMethod, EdgeTable, Optional[str], str]
) -> Optional[Tuple[str, Optional[ScoredEdges]]]:
    """Worker-side scoring for :meth:`Pipeline.warm`."""
    method, table, spec, key = payload
    try:
        if spec is None:
            return key, method.score(table)
        store = ScoreStore(spec)
        score_with_store(method, table, store, key=key)
        return key, None
    except SinkhornConvergenceError:
        return None
