"""Cached, sharded sweep/experiment orchestration.

The pipeline subsystem turns the library's one-shot "score then filter"
calls into a service-shaped workload: scored tables are content-
addressed and cached (:class:`ScoreStore`), whole sweeps are described
as independent shards (:mod:`repro.pipeline.tasks`) and executed
serially or across worker processes (:mod:`repro.pipeline.executor`),
and :class:`Pipeline` serves repeated budget-matched extraction
requests over one scored graph without ever rescoring.

Typical use::

    from repro.pipeline import Pipeline, ScoreStore, run_sweep

    store = ScoreStore(".repro-cache")          # disk + LRU tiers
    pipe = Pipeline(store=store, workers=-1)
    scored = pipe.score(method, table)           # cached
    backbone = pipe.extract(method, table, share=0.1)   # no rescore
    series = pipe.sweep(methods, table, DensityMetric())

The persistent tier is pluggable (:mod:`repro.pipeline.backends`):
``ScoreStore("scores.sqlite")`` keeps the cache in one WAL-mode SQLite
file, ``ScoreStore(backend=KVBackend(...))`` talks to a remote-style
key-value service, and ``store.gc(max_bytes=...)`` evicts
least-recently-used entries from any of them.

Cached, sharded and serial paths are bit-identical by construction;
see :mod:`repro.pipeline.executor` for the contract.
"""

from .backends import (DirectoryBackend, GCPolicy, GCResult, KVBackend,
                       NegativeEntry, SQLiteBackend, StoreBackend,
                       open_backend)
from .executor import (Pipeline, SweepOutcome, execute, run_sweep,
                       score_with_store)
from .fingerprint import (canonical_json, fingerprint_file,
                          fingerprint_method, fingerprint_score_request,
                          fingerprint_source_request, fingerprint_table,
                          method_config)
from .store import CacheStats, ScoreStore
from .tasks import (AverageDegreeMetric, CoverageMetric, DensityMetric,
                    EdgeCountMetric, METRIC_BUILDERS, StabilityMetric,
                    SweepGraph, SweepShard, named_metric, plan_sweep)

__all__ = [
    "AverageDegreeMetric",
    "CacheStats",
    "CoverageMetric",
    "DensityMetric",
    "DirectoryBackend",
    "EdgeCountMetric",
    "GCPolicy",
    "GCResult",
    "KVBackend",
    "METRIC_BUILDERS",
    "NegativeEntry",
    "Pipeline",
    "SQLiteBackend",
    "ScoreStore",
    "StoreBackend",
    "StabilityMetric",
    "SweepGraph",
    "SweepOutcome",
    "SweepShard",
    "canonical_json",
    "execute",
    "fingerprint_file",
    "fingerprint_method",
    "fingerprint_score_request",
    "fingerprint_source_request",
    "fingerprint_table",
    "method_config",
    "named_metric",
    "open_backend",
    "plan_sweep",
    "run_sweep",
    "score_with_store",
]
