"""Stable content fingerprints for cache keys.

The pipeline cache is content-addressed: a scored table is stored under
a key derived from *what was scored* (the exact edge table) and *how*
(the backbone method's code identity plus every score-relevant
parameter). Two fingerprints therefore collide exactly when rescoring
would reproduce the same ``ScoredEdges`` bit for bit, which is what
makes serving cached scores safe.

Fingerprints are hex SHA-256 digests over a canonical byte encoding:

* :func:`fingerprint_table` hashes the directedness flag, node count,
  labels and the raw ``src``/``dst``/``weight`` arrays (row order
  included — ``EdgeTable`` construction already canonicalizes order, and
  derived tables such as ``subset`` outputs are distinct content);
* :func:`fingerprint_method` hashes the method's class identity and its
  public configuration (``vars``), skipping knobs that change wall-clock
  but never scores (``workers``);
* :func:`fingerprint_score_request` combines both into the store key.

``_SCHEMA_VERSION`` is baked into every digest; bump it whenever the
encoding (or the serialized ``ScoredEdges`` layout in
:mod:`repro.pipeline.store`) changes, and stale cache entries simply
stop being found instead of being misread.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

import numpy as np

from ..backbones.base import BackboneMethod
from ..graph.edge_table import EdgeTable

PathLike = Union[str, Path]

#: Version tag mixed into every fingerprint (see module docstring).
_SCHEMA_VERSION = 1

#: Method attributes that never influence scores, only execution speed.
_EXECUTION_ONLY_KEYS = frozenset({"workers"})


def canonical_json(payload: object) -> str:
    """Serialize ``payload`` deterministically (sorted keys, exact floats).

    ``json.dumps`` uses ``repr`` for floats, which round-trips IEEE-754
    doubles exactly, so equal configurations always produce equal text.
    Numpy scalars are converted to their Python equivalents first.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=_coerce_scalar)


def _coerce_scalar(value: object) -> object:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"{type(value).__name__} is not fingerprintable")


def fingerprint_table(table: EdgeTable) -> str:
    """Hex digest of an edge table's full content."""
    digest = hashlib.sha256()
    digest.update(f"repro.table/v{_SCHEMA_VERSION}".encode())
    digest.update(b"D" if table.directed else b"U")
    digest.update(np.int64(table.n_nodes).tobytes())
    if table.labels is not None:
        digest.update(canonical_json(list(table.labels)).encode())
    else:
        digest.update(b"<unlabeled>")
    digest.update(np.ascontiguousarray(table.src, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(table.dst, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(table.weight,
                                       dtype=np.float64).tobytes())
    return digest.hexdigest()


def method_config(method: BackboneMethod) -> Dict[str, object]:
    """Score-relevant configuration of a method instance.

    Every public instance attribute participates except the
    execution-only knobs in ``_EXECUTION_ONLY_KEYS`` and the method's
    own ``extraction_only_params`` (e.g. NC's ``delta`` or k-core's
    ``k``, which shape the filter phase but never the scores — so
    different strictness settings share one cached scored table).
    Methods without instance state (NT, MST, DF) map to an empty
    configuration.
    """
    state = getattr(method, "__dict__", None) or {}
    skipped = _EXECUTION_ONLY_KEYS.union(
        getattr(method, "extraction_only_params", ()))
    return {key: value for key, value in state.items()
            if not key.startswith("_") and key not in skipped}


def fingerprint_method(method: BackboneMethod) -> str:
    """Hex digest of a method's class identity and configuration."""
    cls = type(method)
    identity = {
        "class": f"{cls.__module__}.{cls.__qualname__}",
        "code": getattr(method, "code", "??"),
        "config": method_config(method),
        "schema": _SCHEMA_VERSION,
    }
    return hashlib.sha256(canonical_json(identity).encode()).hexdigest()


def fingerprint_score_request(table: EdgeTable, method: BackboneMethod,
                              table_fingerprint: Optional[str] = None
                              ) -> str:
    """Store key for "``method.score(table)``": table x method digest.

    Callers looping many methods over one table pass the precomputed
    ``table_fingerprint`` so the O(edges) table hash runs once per
    sweep instead of once per method.
    """
    combined = hashlib.sha256()
    combined.update(f"repro.score/v{_SCHEMA_VERSION}".encode())
    if table_fingerprint is None:
        table_fingerprint = fingerprint_table(table)
    combined.update(table_fingerprint.encode())
    combined.update(fingerprint_method(method).encode())
    return combined.hexdigest()


#: Chunk size for streaming file digests.
_FILE_CHUNK_BYTES = 1 << 20


def fingerprint_file(path: PathLike,
                     chunk_bytes: int = _FILE_CHUNK_BYTES) -> str:
    """Hex digest of a file's raw bytes, streamed chunk by chunk.

    This is the cheap half of file-input caching: hashing a
    million-edge CSV costs one sequential read (no parsing, no
    decompression — the compressed bytes of a ``.gz`` identify it).
    Combined with a stored binding to the parsed table's
    :func:`fingerprint_table` (see
    :meth:`repro.pipeline.store.ScoreStore.resolve_source`), a sweep
    over an already-seen file derives its cache keys without the file
    ever being re-parsed for key derivation.
    """
    digest = hashlib.sha256()
    digest.update(f"repro.file/v{_SCHEMA_VERSION}".encode())
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def fingerprint_source_request(file_fingerprint: str,
                               directed: bool = True,
                               delimiter: str = ",",
                               labels: Optional[Iterable[str]] = None,
                               format: Optional[str] = None) -> str:
    """Key for "the table parsed from this file with these options".

    Two source requests collide exactly when parsing would produce
    the same ``EdgeTable``, so a stored ``source -> table
    fingerprint`` binding under this key is safe to trust.
    """
    options = {
        "directed": bool(directed),
        "delimiter": delimiter,
        "labels": None if labels is None else list(labels),
        "format": format,
        "schema": _SCHEMA_VERSION,
    }
    digest = hashlib.sha256()
    digest.update(f"repro.source/v{_SCHEMA_VERSION}".encode())
    digest.update(file_fingerprint.encode())
    digest.update(canonical_json(options).encode())
    return digest.hexdigest()


def fingerprint_arrays(arrays: Iterable[Optional[np.ndarray]]) -> str:
    """Payload digest over a sequence of (possibly absent) arrays.

    Used by the store to detect corrupted or tampered on-disk entries:
    the digest written at ``put`` time must match the digest of the
    arrays read back at ``get`` time.
    """
    digest = hashlib.sha256()
    digest.update(f"repro.payload/v{_SCHEMA_VERSION}".encode())
    for array in arrays:
        if array is None:
            digest.update(b"<absent>")
            continue
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode())
        digest.update(np.int64(array.size).tobytes())
        digest.update(array.tobytes())
    return digest.hexdigest()
