"""Entry serialization shared by every store backend.

The codec turns a :class:`~repro.backbones.base.ScoredEdges` into a
:class:`~repro.pipeline.backends.base.RawEntry` — a JSON-safe metadata
dict plus the arrays packed as ``.npz`` bytes — and back, verifying the
payload digest recorded at encode time so a tampered or truncated entry
is *detected* rather than served. The metadata layout is byte-for-byte
the sidecar format the directory store has always written, which is
what keeps :class:`DirectoryBackend` able to read caches produced
before backends existed.

It also defines :class:`NegativeEntry`, the cached form of a
*deterministic scoring failure*: Sinkhorn non-convergence on an
unbalanceable network is a property of the (table, method) pair, so the
store records it once and re-raises on every later request instead of
re-running the 1000-iteration probe. Negative entries are
metadata-only (``payload is None``).
"""

from __future__ import annotations

import importlib
import io
import json
import zipfile
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ...backbones.base import ScoredEdges
from ...graph.edge_table import EdgeTable
from ..fingerprint import _SCHEMA_VERSION, fingerprint_arrays
from .base import RawEntry


class EntryEncodeError(Exception):
    """The entry cannot be serialized (non-JSON-serializable metadata).

    The store keeps such entries purely in-memory rather than
    persisting something unreadable.
    """


class EntryDecodeError(Exception):
    """Base class for decode failures."""


class EntryCorrupt(EntryDecodeError):
    """The entry's bytes are damaged or inconsistent with its digest."""


class SchemaMismatch(EntryDecodeError):
    """The entry was written under a different schema version.

    Not corruption: the entry is simply treated as a miss (and
    eventually overwritten or garbage-collected).
    """


@dataclass(frozen=True)
class NegativeEntry:
    """A cached "this cannot be scored" verdict.

    Attributes
    ----------
    kind:
        Stable machine tag of the failure class (e.g.
        ``"sinkhorn-nonconvergence"``), taken from the raising
        exception's ``cache_negative`` attribute.
    method:
        Name of the method that failed, for display.
    message:
        The original exception message.
    exception:
        Dotted path of the exception class, so a later hit re-raises
        the same type the caller already handles.
    """

    kind: str
    method: str
    message: str
    exception: str

    @classmethod
    def from_exception(cls, error: BaseException,
                       method: str = "?") -> Optional["NegativeEntry"]:
        """Build an entry for ``error``, or ``None`` if it is not a
        deterministic, cacheable failure.

        An exception opts in by carrying a non-empty string
        ``cache_negative`` class attribute naming its failure kind.
        """
        kind = getattr(error, "cache_negative", None)
        if not isinstance(kind, str) or not kind:
            return None
        exc_type = type(error)
        return cls(kind=kind, method=method, message=str(error),
                   exception=f"{exc_type.__module__}.{exc_type.__qualname__}")

    def to_exception(self) -> BaseException:
        """Reconstruct the original exception type (best effort)."""
        module_name, _, class_name = self.exception.rpartition(".")
        try:
            exc_type = getattr(importlib.import_module(module_name),
                               class_name)
            if not (isinstance(exc_type, type)
                    and issubclass(exc_type, BaseException)):
                raise TypeError(self.exception)
            return exc_type(self.message)
        except Exception:
            return RuntimeError(
                f"cached negative result ({self.kind}): {self.message}")


def encode_scored(key: str, scored: ScoredEdges) -> RawEntry:
    """Pack ``scored`` into a raw entry with a payload digest.

    Raises :class:`EntryEncodeError` when the method ``info`` metadata
    is not JSON-serializable.
    """
    table = scored.table
    arrays = {
        "src": np.ascontiguousarray(table.src, dtype=np.int64),
        "dst": np.ascontiguousarray(table.dst, dtype=np.int64),
        "weight": np.ascontiguousarray(table.weight, dtype=np.float64),
        "score": np.ascontiguousarray(scored.score, dtype=np.float64),
    }
    if scored.sdev is not None:
        arrays["sdev"] = np.ascontiguousarray(scored.sdev,
                                              dtype=np.float64)
    meta = {
        "schema": _SCHEMA_VERSION,
        "key": key,
        "method": scored.method,
        "n_nodes": table.n_nodes,
        "directed": table.directed,
        "labels": None if table.labels is None else list(table.labels),
        "info": scored.info,
        "payload_sha256": fingerprint_arrays(
            [arrays["src"], arrays["dst"], arrays["weight"],
             arrays["score"], arrays.get("sdev")]),
    }
    try:
        json.dumps(meta)
    except TypeError as error:
        raise EntryEncodeError(str(error)) from error
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return RawEntry(meta=meta, payload=buffer.getvalue())


def encode_negative(key: str, negative: NegativeEntry) -> RawEntry:
    """Pack a negative result as a metadata-only raw entry."""
    meta = {
        "schema": _SCHEMA_VERSION,
        "key": key,
        "negative": {
            "kind": negative.kind,
            "method": negative.method,
            "message": negative.message,
            "exception": negative.exception,
        },
    }
    return RawEntry(meta=meta, payload=None)


def decode_entry(raw: RawEntry) -> Union[ScoredEdges, NegativeEntry]:
    """Unpack a raw entry, verifying the payload digest.

    Raises :class:`SchemaMismatch` for entries from another schema
    version (a plain miss) and :class:`EntryCorrupt` for anything
    damaged, truncated or tampered with (quarantined by the caller).
    """
    meta = raw.meta
    if not isinstance(meta, dict) or meta.get("schema") != _SCHEMA_VERSION:
        raise SchemaMismatch(str(type(meta)))
    negative = meta.get("negative")
    if negative is not None:
        try:
            return NegativeEntry(kind=str(negative["kind"]),
                                 method=str(negative["method"]),
                                 message=str(negative["message"]),
                                 exception=str(negative["exception"]))
        except (TypeError, KeyError) as error:
            raise EntryCorrupt(f"bad negative entry: {error}") from error
    if raw.payload is None:
        raise EntryCorrupt("entry has no payload and is not negative")
    try:
        with np.load(io.BytesIO(raw.payload)) as payload:
            src = payload["src"]
            dst = payload["dst"]
            weight = payload["weight"]
            score = payload["score"]
            sdev = payload["sdev"] if "sdev" in payload.files else None
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as error:
        raise EntryCorrupt(f"unreadable payload: {error}") from error
    digest = fingerprint_arrays([src, dst, weight, score, sdev])
    if digest != meta.get("payload_sha256"):
        raise EntryCorrupt("payload digest mismatch")
    try:
        labels = meta.get("labels")
        table = EdgeTable(src, dst, weight, n_nodes=int(meta["n_nodes"]),
                          directed=bool(meta["directed"]),
                          labels=labels, coalesce=False)
        return ScoredEdges(table=table, score=score,
                           method=str(meta["method"]), sdev=sdev,
                           info=meta.get("info"))
    except (TypeError, KeyError, ValueError) as error:
        raise EntryCorrupt(f"bad metadata: {error}") from error
