"""One grammar for backend spec strings, shared by every consumer.

``ScoreStore(cache_dir=...)``, worker reconnection
(``ScoreStore.worker_spec()`` → executor → ``from_worker_spec``),
``repro cache --dir`` and ``repro serve --cache-dir`` all accept the
same strings; historically each call site re-implemented the prefix
sniffing. :func:`parse_spec` is now the single parser and
:func:`build_backend` the single constructor — a new scheme lands in
one place and every entry point learns it at once.

The grammar::

    .repro-cache                 directory of npz + JSON entries
    dir://.repro-cache           same, explicit
    scores.sqlite                single WAL-mode SQLite file (suffix)
    sqlite://path/to/scores      same, explicit
    kv://                        fresh in-memory KV client (testing)
    kv://host:port               networked KV server (repro.net)
    kv://host:port?timeout=2&attempts=5&retry_wait=0.1
                                 same, with client tuning

Round-trip contract: for any backend with a serializable location,
``build_backend(parse_spec(b.spec())).spec() == b.spec()`` — which is
exactly what lets worker processes reconnect to the same networked
cache instead of silently falling back to a private in-memory one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Tuple, Union
from urllib.parse import parse_qsl

#: File suffixes routed to :class:`SQLiteBackend` by suffix sniffing.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Schemes :func:`parse_spec` understands.
BACKEND_SCHEMES = ("dir", "sqlite", "kv")


@dataclass(frozen=True)
class BackendSpec:
    """A parsed backend location: scheme, target, client options."""

    scheme: str
    target: str
    options: Tuple[Tuple[str, str], ...] = field(default=())

    def option(self, name: str, default: str = "") -> str:
        for key, value in self.options:
            if key == name:
                return value
        return default

    def render(self) -> str:
        """The canonical spec string this parses back from."""
        text = f"{self.scheme}://{self.target}"
        if self.options:
            text += "?" + "&".join(f"{k}={v}"
                                   for k, v in self.options)
        return text


def parse_spec(target: Union[str, Path]) -> BackendSpec:
    """Parse a backend location string (or ``Path``) into a spec.

    Unknown ``scheme://`` prefixes raise ``ValueError`` naming the
    supported schemes instead of silently becoming directory paths.
    """
    text = str(target)
    scheme, sep, rest = text.partition("://")
    if sep and scheme.isalnum():
        if scheme not in BACKEND_SCHEMES:
            raise ValueError(
                f"unknown backend scheme {scheme!r} in {text!r}; "
                "supported schemes: "
                + ", ".join(f"{s}://" for s in BACKEND_SCHEMES))
        rest, _, query = rest.partition("?")
        options = tuple(parse_qsl(query, keep_blank_values=True)) \
            if query else ()
        if scheme == "kv":
            rest = rest.rstrip("/")
            if rest and _split_address(rest) is None:
                raise ValueError(
                    f"bad kv target {rest!r} in {text!r}; expected "
                    "kv:// (in-memory) or kv://host:port")
        return BackendSpec(scheme, rest, options)
    if Path(text).suffix.lower() in SQLITE_SUFFIXES:
        return BackendSpec("sqlite", text)
    return BackendSpec("dir", text)


def _split_address(target: str):
    """``(host, port)`` from ``host:port``, or ``None`` if malformed."""
    host, sep, port = target.rpartition(":")
    if not sep or not host or "/" in target:
        return None
    try:
        return host, int(port)
    except ValueError:
        return None


def build_backend(spec: BackendSpec):
    """Construct the backend a parsed spec describes."""
    from .directory import DirectoryBackend
    from .kv import KVBackend
    from .sqlite import SQLiteBackend

    if spec.scheme == "dir":
        return DirectoryBackend(spec.target)
    if spec.scheme == "sqlite":
        return SQLiteBackend(spec.target)
    if spec.scheme != "kv":  # pragma: no cover - parse_spec gates this
        raise ValueError(f"unknown backend scheme {spec.scheme!r}")
    timeout = float(spec.option("timeout", "5.0"))
    attempts = int(spec.option("attempts", "3"))
    retry_wait = float(spec.option("retry_wait", "0.0"))
    if not spec.target:
        return KVBackend(timeout=timeout, max_attempts=attempts,
                         retry_wait=retry_wait)
    # Imported lazily: repro.net.transport itself depends on this
    # package for the KV error taxonomy.
    from ...net.transport import SocketKVTransport
    host, port = _split_address(spec.target)
    return KVBackend(SocketKVTransport(host, port, timeout=timeout),
                     timeout=timeout, max_attempts=attempts,
                     retry_wait=retry_wait)
