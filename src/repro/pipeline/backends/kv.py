"""Remote-style key-value backend: retries, timeouts, transport seam.

``KVBackend`` speaks to a *transport* — anything with a
``request(op, key=..., value=..., timeout=...)`` method — and wraps
every call in the client-side semantics a real network cache needs:
a per-request timeout, bounded retries with exponential backoff on
transient faults, and a terminal :class:`KVUnavailableError` once the
budget is exhausted. The shipped :class:`InMemoryKVServer` transport
is a dict with injectable faults and latency, which makes the retry
behavior testable offline and marks the exact seam where an object
store or network cache service plugs in later: implement ``request``
against the remote API and nothing above the transport changes.

Entries live server-side as metadata + payload + a last-access stamp
(bumped by the server on reads, Redis ``OBJECT IDLETIME`` style), so
LRU GC works against the same :func:`~repro.pipeline.backends.base.run_gc`
policy as the local backends.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ...obs.metrics import get_registry
from .base import BackendCorruption, EntryInfo, RawEntry, StoreBackend

# One process-wide retry series across every KV client instance.
_KV_RETRIES = get_registry().counter(
    "repro_kv_retries_total",
    "Transient KV transport faults retried by the client.",
    labels=("op",))


class KVError(Exception):
    """Base class for transport faults."""


class KVTimeoutError(KVError):
    """The request did not complete within the client timeout."""


class KVTransientError(KVError):
    """A retryable server-side hiccup (connection reset, 5xx, ...)."""


class KVUnavailableError(KVError):
    """Retries exhausted; the service is treated as down."""


class InMemoryKVServer:
    """Dict-backed stand-in for a remote KV service.

    Parameters
    ----------
    latency:
        Simulated per-request service time in seconds; requests whose
        ``timeout`` is below it fail with :class:`KVTimeoutError`
        (no real sleeping — tests stay fast).
    clock:
        Time source for server-side last-access stamps.
    """

    def __init__(self, latency: float = 0.0, clock=time.time):
        self.latency = float(latency)
        self._clock = clock
        self.data: Dict[str, Dict[str, object]] = {}
        self.calls: List[str] = []
        self._fault_queue: List[Exception] = []

    def inject_faults(self, *errors: Exception) -> None:
        """Queue transport errors to raise before serving requests."""
        self._fault_queue.extend(errors)

    def request(self, op: str, key: Optional[str] = None,
                value: Optional[Dict[str, object]] = None,
                timeout: Optional[float] = None):
        self.calls.append(op)
        if self._fault_queue:
            raise self._fault_queue.pop(0)
        if timeout is not None and self.latency > timeout:
            raise KVTimeoutError(
                f"request took {self.latency:.3f}s > timeout {timeout:.3f}s")
        if op == "get":
            record = self.data.get(key)
            if record is not None:
                record["last_access"] = self._clock()
            return record
        if op == "peek":
            # Administrative read: no last-access bump.
            return self.data.get(key)
        if op == "put":
            record = dict(value)
            record["last_access"] = self._clock()
            self.data[key] = record
            return True
        if op == "delete":
            return self.data.pop(key, None) is not None
        if op == "contains":
            return key in self.data
        if op == "keys":
            return sorted(self.data)
        if op == "index":
            return [(stored_key, record["size"], record["last_access"],
                     record.get("payload") is None)
                    for stored_key, record in self.data.items()]
        raise ValueError(f"unknown op {op!r}")


class KVBackend(StoreBackend):
    """Store backend over a (possibly remote) key-value transport.

    Parameters
    ----------
    transport:
        Object with a ``request`` method; defaults to a fresh
        :class:`InMemoryKVServer`.
    timeout:
        Per-request timeout handed to the transport.
    max_attempts:
        Total tries per request (first call + retries).
    retry_wait:
        Base backoff in seconds, doubled per retry; ``0`` (the
        default) retries immediately, which is what tests want.
    sleep:
        Sleep function used between retries. Defaults to
        ``time.sleep``; tests inject a fake clock here to assert
        backoff timing without real waiting.
    """

    scheme = "kv"

    def __init__(self, transport=None, timeout: float = 5.0,
                 max_attempts: int = 3, retry_wait: float = 0.0,
                 sleep=time.sleep):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.transport = transport if transport is not None \
            else InMemoryKVServer()
        self.timeout = float(timeout)
        self.max_attempts = int(max_attempts)
        self.retry_wait = float(retry_wait)
        self.retries = 0
        self._sleep = sleep

    def describe(self) -> str:
        address = self._transport_address()
        suffix = f", {address}" if address else ""
        return f"kv ({type(self.transport).__name__}{suffix})"

    def _transport_address(self) -> Optional[str]:
        """``kv://host:port`` when the transport has a dialable one."""
        spec = getattr(self.transport, "spec", None)
        return spec() if callable(spec) else None

    def spec(self) -> Optional[str]:
        """Worker-reconnectable spec, or ``None`` for process-local.

        A transport that advertises an address (``SocketKVTransport``
        does) makes this backend reopenable from another process, so
        the full client configuration — timeout, attempt budget,
        backoff — is serialized with it and
        :func:`~repro.pipeline.backends.open_backend` reconstructs an
        identical client. The in-memory transport stays ``None``:
        its dict dies with this process and workers must ship results
        back instead of "reconnecting" to a private empty cache.
        """
        address = self._transport_address()
        if not address:
            return None
        return (f"{address}?attempts={self.max_attempts}"
                f"&retry_wait={self.retry_wait:g}"
                f"&timeout={self.timeout:g}")

    def close(self) -> None:
        close = getattr(self.transport, "close", None)
        if callable(close):
            close()

    def _call(self, op: str, key: Optional[str] = None,
              value: Optional[Dict[str, object]] = None):
        last_error: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            try:
                return self.transport.request(op, key=key, value=value,
                                              timeout=self.timeout)
            except (KVTimeoutError, KVTransientError) as error:
                last_error = error
                self.retries += 1
                _KV_RETRIES.inc(op=op)
                if attempt + 1 < self.max_attempts and self.retry_wait:
                    self._sleep(self.retry_wait * (2 ** attempt))
        raise KVUnavailableError(
            f"{op} failed after {self.max_attempts} attempts: "
            f"{last_error}") from last_error

    # ------------------------------------------------------------------
    # StoreBackend interface
    # ------------------------------------------------------------------

    def get(self, key: str, touch: bool = True) -> Optional[RawEntry]:
        record = self._call("get" if touch else "peek", key=key)
        if record is None:
            return None
        meta = record.get("meta") if isinstance(record, dict) else None
        if not isinstance(meta, dict):
            self.delete(key)
            raise BackendCorruption(f"malformed record under {key}")
        payload = record.get("payload")
        return RawEntry(meta=meta,
                        payload=None if payload is None else bytes(payload))

    def put(self, key: str, entry: RawEntry) -> None:
        payload = entry.payload
        size = len(repr(entry.meta)) \
            + (0 if payload is None else len(payload))
        self._call("put", key=key, value={"meta": entry.meta,
                                          "payload": payload,
                                          "size": size})

    def contains(self, key: str) -> bool:
        return bool(self._call("contains", key=key))

    def delete(self, key: str) -> bool:
        return bool(self._call("delete", key=key))

    def keys(self) -> List[str]:
        return list(self._call("keys"))

    def entries(self) -> List[EntryInfo]:
        return [EntryInfo(key=key, size=int(size),
                          last_access=float(last_access),
                          negative=bool(negative))
                for key, size, last_access, negative
                in self._call("index")]
