"""Backend interface for the persistent tier of :class:`ScoreStore`.

A backend is a raw key → entry map: it moves opaque ``RawEntry`` records
(a JSON-safe metadata dict plus optional payload bytes) in and out of
some durable medium, records a last-access timestamp per entry, and
answers aggregate size questions. It never interprets the payload —
serializing ``ScoredEdges`` to bytes and verifying digests is the
codec's job (:mod:`repro.pipeline.backends.codec`), and hit/miss
accounting is the store's (:mod:`repro.pipeline.store`).

Three implementations ship with the library:

* :class:`~repro.pipeline.backends.directory.DirectoryBackend` — the
  original content-addressed ``.npz`` + JSON-sidecar directory,
  format-compatible with caches written before backends existed;
* :class:`~repro.pipeline.backends.sqlite.SQLiteBackend` — a single
  WAL-mode SQLite file, friendlier to thousands of entries (no inode
  blowup) and to being copied between machines;
* :class:`~repro.pipeline.backends.kv.KVBackend` — a remote-style
  key-value client with retry/timeout semantics, the seam for a future
  object-store or network cache service.

On top of the interface, :func:`run_gc` implements the shared eviction
policy (:class:`GCPolicy`): max bytes / max entries / max age, evicting
least-recently-accessed entries first.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class BackendCorruption(Exception):
    """A raw entry (or the medium under it) is damaged beyond reading.

    Backends raise this from :meth:`StoreBackend.get` after clearing
    whatever remnant they can, so the caller counts the corruption and
    treats the lookup as a miss.
    """


@dataclass(frozen=True)
class RawEntry:
    """One stored record: JSON-safe metadata plus optional payload bytes.

    ``payload`` holds the serialized arrays (an ``.npz`` archive) for
    scored tables and is ``None`` for metadata-only records such as
    cached negative results.
    """

    meta: Dict[str, object]
    payload: Optional[bytes] = None


@dataclass(frozen=True)
class EntryInfo:
    """Accounting view of one stored entry, as used by GC and stats.

    ``negative`` marks metadata-only negative-result entries (they have
    no payload), so stats displays can count them without fetching
    every entry's payload.
    """

    key: str
    size: int
    last_access: float
    negative: bool = False


@dataclass(frozen=True)
class BackendStats:
    """Aggregate size of a backend's contents."""

    entries: int = 0
    bytes: int = 0


class StoreBackend(ABC):
    """Abstract persistent tier: a durable ``key -> RawEntry`` map."""

    #: URL-ish scheme naming the backend kind (for display and specs).
    scheme: str = "abstract"

    @abstractmethod
    def get(self, key: str, touch: bool = True) -> Optional[RawEntry]:
        """Return the raw entry under ``key`` or ``None``.

        ``touch`` (the default) records the access for LRU eviction;
        pass ``False`` for administrative reads (migration, stats).

        Raises
        ------
        BackendCorruption
            When the stored record cannot be read at the raw level
            (half-written file pair, unreadable medium). The backend
            clears what it can before raising.
        """

    @abstractmethod
    def put(self, key: str, entry: RawEntry) -> None:
        """Durably store ``entry`` under ``key`` (replacing any old one)."""

    @abstractmethod
    def contains(self, key: str) -> bool:
        """True when a complete entry is stored under ``key``."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; return whether anything was removed."""

    @abstractmethod
    def keys(self) -> List[str]:
        """Keys of every complete stored entry."""

    @abstractmethod
    def entries(self) -> List[EntryInfo]:
        """Per-entry accounting info (sizes, last access) for GC."""

    def stats(self) -> BackendStats:
        """Aggregate entry count and byte total."""
        infos = self.entries()
        return BackendStats(entries=len(infos),
                            bytes=sum(info.size for info in infos))

    def peek_meta(self, key: str) -> Optional[Dict[str, object]]:
        """Metadata of ``key`` without touching it (or its payload,
        where the backend can avoid reading one)."""
        entry = self.get(key, touch=False)
        return None if entry is None else entry.meta

    def spec(self) -> Optional[str]:
        """Picklable descriptor another process can reopen, or ``None``
        when the backend's contents are process-local."""
        return None

    def close(self) -> None:
        """Release any handles; the backend may not be used afterwards."""

    def describe(self) -> str:
        """Human-readable one-liner for CLI output."""
        return self.spec() or self.scheme


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GCPolicy:
    """Eviction bounds for a long-lived cache.

    Any combination of bounds may be set; at least one must be. Entries
    idle longer than ``max_age`` seconds are always evicted; beyond
    that, least-recently-accessed entries go first until both the
    ``max_entries`` and ``max_bytes`` bounds hold.
    """

    max_bytes: Optional[int] = None
    max_entries: Optional[int] = None
    max_age: Optional[float] = None

    def __post_init__(self):
        bounds = (self.max_bytes, self.max_entries, self.max_age)
        if all(bound is None for bound in bounds):
            raise ValueError("GCPolicy needs at least one bound "
                             "(max_bytes, max_entries or max_age)")
        for name, bound in (("max_bytes", self.max_bytes),
                            ("max_entries", self.max_entries),
                            ("max_age", self.max_age)):
            if bound is not None and bound < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class GCResult:
    """Outcome of one GC pass."""

    scanned: int
    deleted: int
    freed_bytes: int
    kept: int
    kept_bytes: int
    deleted_keys: Tuple[str, ...] = field(default=())
    dry_run: bool = False

    def summary(self) -> str:
        verb = "would delete" if self.dry_run else "deleted"
        return (f"gc: {verb} {self.deleted}/{self.scanned} entries "
                f"({self.freed_bytes} bytes); {self.kept} entries "
                f"({self.kept_bytes} bytes) remain")


def run_gc(backend: StoreBackend, policy: GCPolicy,
           clock=time.time, dry_run: bool = False) -> GCResult:
    """Apply ``policy`` to ``backend``, evicting LRU-first.

    Age-expired entries are always evicted; then the oldest-accessed
    survivors are dropped until the entry-count and byte bounds hold.
    With ``dry_run`` nothing is deleted and the result reports what a
    real pass would have removed.
    """
    infos = sorted(backend.entries(), key=lambda info: info.last_access)
    now = clock()
    doomed: Dict[str, EntryInfo] = {}
    survivors: List[EntryInfo] = []
    for info in infos:
        if policy.max_age is not None \
                and now - info.last_access > policy.max_age:
            doomed[info.key] = info
        else:
            survivors.append(info)
    if policy.max_entries is not None:
        while len(survivors) > policy.max_entries:
            info = survivors.pop(0)
            doomed[info.key] = info
    if policy.max_bytes is not None:
        remaining = sum(info.size for info in survivors)
        while survivors and remaining > policy.max_bytes:
            info = survivors.pop(0)
            doomed[info.key] = info
            remaining -= info.size
    if not dry_run:
        for key in doomed:
            backend.delete(key)
    return GCResult(scanned=len(infos), deleted=len(doomed),
                    freed_bytes=sum(info.size for info in doomed.values()),
                    kept=len(survivors),
                    kept_bytes=sum(info.size for info in survivors),
                    deleted_keys=tuple(doomed), dry_run=dry_run)
