"""Single-file SQLite backend for the score cache.

One WAL-mode database file holds every entry as a row — metadata JSON,
payload blob, size and access times — which is kinder than a directory
tree to backup tools, network copies and filesystems with tight inode
budgets once caches grow to thousands of entries. WAL journaling plus
a busy timeout lets several worker processes share the file: each
opens its own connection (connections never cross a ``fork``), writers
queue briefly instead of failing, and readers keep reading.

The payload digest recorded by the codec travels inside the metadata
JSON, so end-to-end verification works exactly as it does for the
directory backend: a tampered row fails digest check on decode and is
deleted, never served.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import time
from pathlib import Path
from typing import List, Optional, Union

from .base import BackendCorruption, EntryInfo, RawEntry, StoreBackend

PathLike = Union[str, Path]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key TEXT PRIMARY KEY,
    meta TEXT NOT NULL,
    payload BLOB,
    size INTEGER NOT NULL,
    created REAL NOT NULL,
    last_access REAL NOT NULL
)
"""


class SQLiteBackend(StoreBackend):
    """Score-cache entries as rows of one SQLite file.

    Parameters
    ----------
    path:
        Database file; created (with parent directories) on open.
    timeout:
        Seconds a writer waits on a locked database before giving up.
    clock:
        Time source for access stamps (injectable for tests).
    """

    scheme = "sqlite"

    def __init__(self, path: PathLike, timeout: float = 30.0,
                 clock=time.time):
        self.path = Path(path)
        self._clock = clock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=timeout)
        # Some filesystems refuse WAL; rollback journal still works.
        with contextlib.suppress(sqlite3.DatabaseError):
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        try:
            with self._conn:
                self._conn.execute(_SCHEMA)
        except sqlite3.DatabaseError as error:
            self._conn.close()
            raise ValueError(
                f"{self.path} is not a usable SQLite database: "
                f"{error}") from error

    def spec(self) -> Optional[str]:
        return f"sqlite://{self.path}"

    def describe(self) -> str:
        return f"sqlite ({self.path})"

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------
    # StoreBackend interface
    # ------------------------------------------------------------------

    def get(self, key: str, touch: bool = True) -> Optional[RawEntry]:
        try:
            row = self._conn.execute(
                "SELECT meta, payload FROM entries WHERE key = ?",
                (key,)).fetchone()
        except sqlite3.DatabaseError as error:
            raise BackendCorruption(str(error)) from error
        if row is None:
            return None
        meta_text, payload = row
        try:
            meta = json.loads(meta_text)
            if not isinstance(meta, dict):
                raise ValueError("metadata is not an object")
        except (TypeError, ValueError) as error:
            self.delete(key)
            raise BackendCorruption(str(error)) from error
        if touch:
            with contextlib.suppress(sqlite3.DatabaseError), \
                    self._conn:
                self._conn.execute(
                    "UPDATE entries SET last_access = ? WHERE key = ?",
                    (self._clock(), key))
        return RawEntry(meta=meta,
                        payload=None if payload is None else bytes(payload))

    def put(self, key: str, entry: RawEntry) -> None:
        meta_text = json.dumps(entry.meta, sort_keys=True)
        payload = entry.payload
        size = len(meta_text) + (0 if payload is None else len(payload))
        now = self._clock()
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO entries "
                "(key, meta, payload, size, created, last_access) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (key, meta_text, payload, size, now, now))

    def contains(self, key: str) -> bool:
        try:
            row = self._conn.execute(
                "SELECT 1 FROM entries WHERE key = ?", (key,)).fetchone()
        except sqlite3.DatabaseError:
            return False
        return row is not None

    def delete(self, key: str) -> bool:
        try:
            with self._conn:
                cursor = self._conn.execute(
                    "DELETE FROM entries WHERE key = ?", (key,))
        except sqlite3.DatabaseError:
            return False
        return cursor.rowcount > 0

    def keys(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT key FROM entries ORDER BY key").fetchall()
        return [key for (key,) in rows]

    def entries(self) -> List[EntryInfo]:
        # Negative entries are exactly the payload-free rows.
        rows = self._conn.execute(
            "SELECT key, size, last_access, payload IS NULL "
            "FROM entries").fetchall()
        return [EntryInfo(key=key, size=int(size),
                          last_access=float(last_access),
                          negative=bool(negative))
                for key, size, last_access, negative in rows]

    def peek_meta(self, key: str):
        try:
            row = self._conn.execute(
                "SELECT meta FROM entries WHERE key = ?", (key,)).fetchone()
            if row is None:
                return None
            meta = json.loads(row[0])
        except (sqlite3.DatabaseError, TypeError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None
