"""Content-addressed directory backend (``.npz`` arrays + JSON sidecar).

This is the original ``ScoreStore`` disk tier behind the backend
interface, unchanged on the wire: every entry is a ``<shard>/<key>.npz``
arrays file plus a human-readable ``<key>.json`` sidecar, written
atomically (write-then-rename) so no file ever holds partial contents
under its final name. Caches written before the backend split load
unchanged — the only additions are an optional ``last_access`` sidecar
field (maintained for LRU GC; absent in old entries, where file mtime
stands in) and metadata-only entries — a sidecar with no ``.npz`` —
which carry either a ``negative`` block (cached scoring failures) or
a ``source`` block (file-fingerprint bindings).

A crash between the two renames leaves a half-written pair; reads
detect it, quarantine the remnant and report corruption so the entry
is recomputed rather than trusted.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .base import BackendCorruption, EntryInfo, RawEntry, StoreBackend

PathLike = Union[str, Path]


def _meta_only(meta: Dict[str, object]) -> bool:
    """Entries that legitimately have no ``.npz`` payload."""
    return meta.get("negative") is not None \
        or meta.get("source") is not None


class DirectoryBackend(StoreBackend):
    """npz + JSON-sidecar entries under a shard-prefixed directory.

    Parameters
    ----------
    root:
        Directory holding the cache; created on first write.
    clock:
        Time source for last-access stamps (injectable for tests).
    """

    scheme = "dir"

    def __init__(self, root: PathLike, clock=time.time):
        self.root = Path(root)
        self._clock = clock

    def spec(self) -> Optional[str]:
        return str(self.root)

    def describe(self) -> str:
        return f"directory ({self.root})"

    def _paths(self, key: str) -> Tuple[Path, Path]:
        shard = self.root / key[:2]
        return shard / f"{key}.npz", shard / f"{key}.json"

    # ------------------------------------------------------------------
    # StoreBackend interface
    # ------------------------------------------------------------------

    def get(self, key: str, touch: bool = True) -> Optional[RawEntry]:
        npz_path, json_path = self._paths(key)
        meta = self._read_sidecar(key, json_path,
                                  npz_exists=npz_path.exists())
        if meta is None:
            return None
        if _meta_only(meta):
            payload = None
        else:
            try:
                payload = npz_path.read_bytes()
            except OSError as error:
                self._quarantine(key)
                raise BackendCorruption(str(error)) from error
        if touch:
            self._touch(json_path, meta)
        return RawEntry(meta=meta, payload=payload)

    def put(self, key: str, entry: RawEntry) -> None:
        npz_path, json_path = self._paths(key)
        npz_path.parent.mkdir(parents=True, exist_ok=True)
        meta = dict(entry.meta)
        meta["last_access"] = self._clock()
        meta_text = json.dumps(meta, sort_keys=True, indent=1)
        # Write-then-rename so no file ever has partial contents under
        # its final name; a crash *between* the renames leaves an
        # incomplete pair, which the next read quarantines.
        if entry.payload is None:
            if npz_path.exists():
                npz_path.unlink()
        else:
            self._atomic_write(npz_path, entry.payload)
        self._atomic_write(json_path, meta_text.encode())

    def contains(self, key: str) -> bool:
        npz_path, json_path = self._paths(key)
        if not json_path.exists():
            return False
        if npz_path.exists():
            return True
        return self._meta_only_sidecar(json_path)

    def delete(self, key: str) -> bool:
        removed = False
        for path in self._paths(key):
            with contextlib.suppress(OSError):
                path.unlink()
                removed = True
        return removed

    def keys(self) -> List[str]:
        found = []
        if not self.root.exists():
            return found
        for json_path in sorted(self.root.glob("*/*.json")):
            key = json_path.stem
            if json_path.with_suffix(".npz").exists() \
                    or self._meta_only_sidecar(json_path):
                found.append(key)
        return found

    def entries(self) -> List[EntryInfo]:
        infos = []
        for key in self.keys():
            npz_path, json_path = self._paths(key)
            size = 0
            last_access = None
            negative = False
            try:
                stat = json_path.stat()
                size += stat.st_size
                mtime = stat.st_mtime
                if npz_path.exists():
                    npz_stat = npz_path.stat()
                    size += npz_stat.st_size
                    mtime = max(mtime, npz_stat.st_mtime)
                meta = json.loads(json_path.read_text())
                last_access = meta.get("last_access")
                # Uniform with the other backends: metadata-only
                # entries (no payload) carry the flag.
                negative = _meta_only(meta)
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(last_access, (int, float)):
                # Entry written before last-access stamps existed:
                # the file mtime is the best available signal.
                last_access = mtime
            infos.append(EntryInfo(key=key, size=size,
                                   last_access=float(last_access),
                                   negative=negative))
        return infos

    def peek_meta(self, key: str) -> Optional[Dict[str, object]]:
        npz_path, json_path = self._paths(key)
        return self._read_sidecar(key, json_path,
                                  npz_exists=npz_path.exists(),
                                  quarantine=False)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _read_sidecar(self, key: str, json_path: Path, npz_exists: bool,
                      quarantine: bool = True):
        """Parse the sidecar, quarantining half-written pairs.

        Returns the metadata dict, ``None`` for a clean miss, and
        raises :class:`BackendCorruption` for remnants.
        """
        json_exists = json_path.exists()
        if not json_exists and not npz_exists:
            return None
        if not json_exists:
            # npz without sidecar: crash between the two renames.
            if quarantine:
                self._quarantine(key)
                raise BackendCorruption(f"half-written entry {key}")
            return None
        try:
            meta = json.loads(json_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            if quarantine:
                self._quarantine(key)
                raise BackendCorruption(str(error)) from error
            return None
        if not _meta_only(meta) and not npz_exists:
            # Sidecar without arrays (and not metadata-only): remnant.
            if quarantine:
                self._quarantine(key)
                raise BackendCorruption(f"half-written entry {key}")
            return None
        return meta

    def _meta_only_sidecar(self, json_path: Path) -> bool:
        try:
            meta = json.loads(json_path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        return isinstance(meta, dict) and _meta_only(meta)

    def _touch(self, json_path: Path, meta: Dict[str, object]) -> None:
        """Record the access in the sidecar (best effort)."""
        meta["last_access"] = self._clock()
        with contextlib.suppress(OSError, TypeError):
            text = json.dumps(meta, sort_keys=True, indent=1)
            self._atomic_write(json_path, text.encode())

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        descriptor, temp_name = tempfile.mkstemp(dir=path.parent,
                                                 prefix=path.name + ".")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise

    def _quarantine(self, key: str) -> None:
        """Drop a damaged entry so the next put can rewrite it."""
        self.delete(key)
