"""Pluggable persistent tiers for :class:`repro.pipeline.ScoreStore`.

Pick a backend explicitly::

    from repro.pipeline.backends import SQLiteBackend
    store = ScoreStore(backend=SQLiteBackend("scores.sqlite"))

or by spec string — accepted anywhere a cache location is (the
``ScoreStore(cache_dir=...)`` argument, ``run_all(cache_dir=...)``,
the CLI ``--cache-dir`` flag and ``repro cache`` commands)::

    .repro-cache              directory of npz + JSON entries
    dir://.repro-cache        same, explicit
    scores.sqlite             single WAL-mode SQLite file (by suffix)
    sqlite://path/to/scores   same, explicit
    kv://                     fresh in-memory KV client (testing)
    kv://host:port            networked KV server (see repro.net)

The spec-string grammar lives in one place —
:func:`~repro.pipeline.backends.spec.parse_spec` — shared by
``ScoreStore``, worker reconnection and the CLI. See
:mod:`repro.pipeline.backends.base` for the interface contract and
the shared GC machinery.
"""

from pathlib import Path
from typing import Union

from .base import (BackendCorruption, BackendStats, EntryInfo, GCPolicy,
                   GCResult, RawEntry, StoreBackend, run_gc)
from .codec import (EntryCorrupt, EntryDecodeError, EntryEncodeError,
                    NegativeEntry, SchemaMismatch, decode_entry,
                    encode_negative, encode_scored)
from .directory import DirectoryBackend
from .kv import (InMemoryKVServer, KVBackend, KVError,
                 KVTimeoutError, KVTransientError,
                 KVUnavailableError)
from .spec import (BACKEND_SCHEMES, SQLITE_SUFFIXES, BackendSpec,
                   build_backend, parse_spec)
from .sqlite import SQLiteBackend


def open_backend(target: Union[str, Path, StoreBackend]) -> StoreBackend:
    """Resolve a backend instance or spec string to a backend.

    Accepts an existing :class:`StoreBackend` (returned as-is) or
    anything :func:`~repro.pipeline.backends.spec.parse_spec`
    understands: an explicit ``dir://``, ``sqlite://`` or ``kv://``
    spec (``kv://host:port`` dials a :mod:`repro.net` socket server),
    a path with a SQLite suffix (``.sqlite``, ``.sqlite3``, ``.db``),
    or any other path (treated as an entry directory).
    """
    if isinstance(target, StoreBackend):
        return target
    return build_backend(parse_spec(target))


__all__ = [
    "BACKEND_SCHEMES",
    "BackendCorruption",
    "BackendSpec",
    "BackendStats",
    "build_backend",
    "DirectoryBackend",
    "EntryCorrupt",
    "EntryDecodeError",
    "EntryEncodeError",
    "EntryInfo",
    "GCPolicy",
    "GCResult",
    "InMemoryKVServer",
    "KVBackend",
    "KVError",
    "KVTimeoutError",
    "KVTransientError",
    "KVUnavailableError",
    "NegativeEntry",
    "RawEntry",
    "SQLITE_SUFFIXES",
    "SQLiteBackend",
    "SchemaMismatch",
    "StoreBackend",
    "decode_entry",
    "encode_negative",
    "encode_scored",
    "open_backend",
    "parse_spec",
    "run_gc",
]
