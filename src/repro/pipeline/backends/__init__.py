"""Pluggable persistent tiers for :class:`repro.pipeline.ScoreStore`.

Pick a backend explicitly::

    from repro.pipeline.backends import SQLiteBackend
    store = ScoreStore(backend=SQLiteBackend("scores.sqlite"))

or by spec string — accepted anywhere a cache location is (the
``ScoreStore(cache_dir=...)`` argument, ``run_all(cache_dir=...)``,
the CLI ``--cache-dir`` flag and ``repro cache`` commands)::

    .repro-cache              directory of npz + JSON entries
    dir://.repro-cache        same, explicit
    scores.sqlite             single WAL-mode SQLite file (by suffix)
    sqlite://path/to/scores   same, explicit
    kv://                     fresh in-memory KV client (testing)

See :mod:`repro.pipeline.backends.base` for the interface contract and
the shared GC machinery.
"""

from pathlib import Path
from typing import Union

from .base import (BackendCorruption, BackendStats, EntryInfo, GCPolicy,
                   GCResult, RawEntry, StoreBackend, run_gc)
from .codec import (EntryCorrupt, EntryDecodeError, EntryEncodeError,
                    NegativeEntry, SchemaMismatch, decode_entry,
                    encode_negative, encode_scored)
from .directory import DirectoryBackend
from .kv import (InMemoryKVServer, KVBackend, KVTimeoutError,
                 KVTransientError, KVUnavailableError)
from .sqlite import SQLiteBackend

#: File suffixes routed to :class:`SQLiteBackend` by :func:`open_backend`.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def open_backend(target: Union[str, Path, StoreBackend]) -> StoreBackend:
    """Resolve a backend instance or spec string to a backend.

    Accepts an existing :class:`StoreBackend` (returned as-is), an
    explicit ``dir://``, ``sqlite://`` or ``kv://`` spec, a path with a
    SQLite suffix (``.sqlite``, ``.sqlite3``, ``.db``), or any other
    path (treated as an entry directory).
    """
    if isinstance(target, StoreBackend):
        return target
    text = str(target)
    if text.startswith("sqlite://"):
        return SQLiteBackend(text[len("sqlite://"):])
    if text.startswith("dir://"):
        return DirectoryBackend(text[len("dir://"):])
    if text.startswith("kv://"):
        return KVBackend()
    if Path(text).suffix.lower() in SQLITE_SUFFIXES:
        return SQLiteBackend(text)
    return DirectoryBackend(text)


__all__ = [
    "BackendCorruption",
    "BackendStats",
    "DirectoryBackend",
    "EntryCorrupt",
    "EntryDecodeError",
    "EntryEncodeError",
    "EntryInfo",
    "GCPolicy",
    "GCResult",
    "InMemoryKVServer",
    "KVBackend",
    "KVTimeoutError",
    "KVTransientError",
    "KVUnavailableError",
    "NegativeEntry",
    "RawEntry",
    "SQLITE_SUFFIXES",
    "SQLiteBackend",
    "SchemaMismatch",
    "StoreBackend",
    "decode_entry",
    "encode_negative",
    "encode_scored",
    "open_backend",
    "run_gc",
]
