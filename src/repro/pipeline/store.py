"""Two-tier content-addressed cache for scored edge tables.

``ScoreStore`` answers "has this exact table already been scored by
this exact method configuration?" It layers

1. an in-process LRU of live ``ScoredEdges`` objects (hot path: repeated
   budget-matched extractions inside one process skip even the disk),
2. over an optional content-addressed on-disk directory where every
   entry is an ``.npz`` arrays file plus a human-readable ``.json``
   sidecar (warm path: re-runs, other processes and sharded workers).

Disk entries are self-verifying: the sidecar records a digest of the
stored arrays, and :meth:`ScoreStore.get` recomputes it on load. A
poisoned, truncated or otherwise corrupt entry therefore *misses*
(and is recomputed and overwritten) instead of being served.

All traffic is counted in :class:`CacheStats`, which the executor
surfaces so sweeps can report hit rates alongside their results.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from ..backbones.base import ScoredEdges
from ..graph.edge_table import EdgeTable
from .fingerprint import _SCHEMA_VERSION, fingerprint_arrays

PathLike = Union[str, Path]

#: Default capacity of the in-process LRU tier. Sized to hold a full
#: paper sweep working set (6 networks x 8 methods) with headroom, so
#: repeated in-process sweeps never touch the disk tier.
DEFAULT_MEMORY_ITEMS = 64


@dataclass
class CacheStats:
    """Counters for one store's lifetime of traffic."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from either tier."""
        return self.hits / self.requests if self.requests else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Fold another stats object (e.g. a worker's) into this one."""
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.misses += other.misses
        self.puts += other.puts
        self.evictions += other.evictions
        self.corrupt += other.corrupt

    def summary(self) -> str:
        """One-line human-readable account."""
        return (f"cache: {self.hits}/{self.requests} hits "
                f"({self.hit_rate:.0%}; memory {self.memory_hits}, "
                f"disk {self.disk_hits}), {self.puts} puts, "
                f"{self.evictions} evictions, {self.corrupt} corrupt")


class ScoreStore:
    """Two-tier cache mapping fingerprint keys to ``ScoredEdges``.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk tier. ``None`` keeps the store purely
        in-memory (still useful for repeated extractions in-process).
        Created on first write.
    memory_items:
        Capacity of the in-process LRU tier; ``0`` disables it.
    """

    def __init__(self, cache_dir: Optional[PathLike] = None,
                 memory_items: int = DEFAULT_MEMORY_ITEMS):
        if memory_items < 0:
            raise ValueError("memory_items must be non-negative")
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.memory_items = int(memory_items)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, ScoredEdges]" = OrderedDict()

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[ScoredEdges]:
        """Return the cached scores under ``key``, or ``None`` on miss."""
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return cached
        loaded = self._load_disk(key)
        if loaded is not None:
            self.stats.disk_hits += 1
            self._remember(key, loaded)
            return loaded
        self.stats.misses += 1
        return None

    def put(self, key: str, scored: ScoredEdges) -> None:
        """Insert ``scored`` under ``key`` in both tiers."""
        self.stats.puts += 1
        self._remember(key, scored)
        if self.cache_dir is not None:
            self._write_disk(key, scored)

    def get_or_compute(self, key: str,
                       compute: Callable[[], ScoredEdges]) -> ScoredEdges:
        """Serve ``key`` from cache, or run ``compute`` and cache it."""
        cached = self.get(key)
        if cached is not None:
            return cached
        scored = compute()
        self.put(key, scored)
        return scored

    def adopt(self, key: str, scored: ScoredEdges) -> None:
        """Insert an entry computed elsewhere without counting traffic.

        The executor folds worker-computed scores into the parent store
        through this: the worker's own store already counted the miss
        and the put, so adopting must not double-count (and must not
        rewrite a complete disk entry the worker already produced).
        """
        self._remember(key, scored)
        if self.cache_dir is not None and not self._has_disk(key):
            self._write_disk(key, scored)

    def memory_entries(self):
        """Snapshot of the in-process tier as ``(key, scored)`` pairs."""
        return list(self._memory.items())

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._has_disk(key)

    def __len__(self) -> int:
        disk = 0
        if self.cache_dir is not None and self.cache_dir.exists():
            disk = sum(1 for npz in self.cache_dir.glob("*/*.npz")
                       if npz.with_suffix(".json").exists())
        memory_only = sum(1 for key in self._memory
                          if not self._has_disk(key))
        return disk + memory_only

    def _has_disk(self, key: str) -> bool:
        """True when a *complete* entry (arrays + sidecar) is on disk."""
        if self.cache_dir is None:
            return False
        npz_path, json_path = self._paths(key)
        return npz_path.exists() and json_path.exists()

    def clear_memory(self) -> None:
        """Drop the in-process tier (disk entries survive)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    # In-memory tier
    # ------------------------------------------------------------------

    def _remember(self, key: str, scored: ScoredEdges) -> None:
        if self.memory_items == 0:
            return
        self._memory[key] = scored
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------

    def _paths(self, key: str) -> tuple:
        shard = self.cache_dir / key[:2]
        return shard / f"{key}.npz", shard / f"{key}.json"

    def _write_disk(self, key: str, scored: ScoredEdges) -> None:
        table = scored.table
        arrays = {
            "src": np.ascontiguousarray(table.src, dtype=np.int64),
            "dst": np.ascontiguousarray(table.dst, dtype=np.int64),
            "weight": np.ascontiguousarray(table.weight, dtype=np.float64),
            "score": np.ascontiguousarray(scored.score, dtype=np.float64),
        }
        if scored.sdev is not None:
            arrays["sdev"] = np.ascontiguousarray(scored.sdev,
                                                  dtype=np.float64)
        meta = {
            "schema": _SCHEMA_VERSION,
            "key": key,
            "method": scored.method,
            "n_nodes": table.n_nodes,
            "directed": table.directed,
            "labels": None if table.labels is None else list(table.labels),
            "info": scored.info,
            "payload_sha256": fingerprint_arrays(
                [arrays["src"], arrays["dst"], arrays["weight"],
                 arrays["score"], arrays.get("sdev")]),
        }
        try:
            meta_text = json.dumps(meta, sort_keys=True, indent=1)
        except TypeError:
            # Non-JSON-serializable method info: keep the entry purely
            # in-memory rather than persisting something unreadable.
            return
        npz_path, json_path = self._paths(key)
        npz_path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so no file ever has partial contents under
        # its final name; a crash *between* the two renames leaves an
        # incomplete pair, which _load_disk quarantines on first read.
        self._atomic_write(npz_path, lambda handle: np.savez(handle,
                                                             **arrays))
        self._atomic_write(json_path,
                           lambda handle: handle.write(meta_text.encode()))

    def _atomic_write(self, path: Path, write: Callable) -> None:
        descriptor, temp_name = tempfile.mkstemp(dir=path.parent,
                                                 prefix=path.name + ".")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                write(handle)
            os.replace(temp_name, path)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise

    def _load_disk(self, key: str) -> Optional[ScoredEdges]:
        if self.cache_dir is None:
            return None
        npz_path, json_path = self._paths(key)
        npz_exists, json_exists = npz_path.exists(), json_path.exists()
        if not (npz_exists and json_exists):
            if npz_exists or json_exists:
                # Half-written remnant (crash between the two atomic
                # renames): clear it so the entry can be rewritten.
                self._quarantine(key)
            return None
        try:
            meta = json.loads(json_path.read_text())
            with np.load(npz_path) as payload:
                src = payload["src"]
                dst = payload["dst"]
                weight = payload["weight"]
                score = payload["score"]
                sdev = payload["sdev"] if "sdev" in payload.files else None
        except (OSError, ValueError, KeyError, json.JSONDecodeError,
                zipfile.BadZipFile):
            self._quarantine(key)
            return None
        if meta.get("schema") != _SCHEMA_VERSION:
            return None
        digest = fingerprint_arrays([src, dst, weight, score, sdev])
        if digest != meta.get("payload_sha256"):
            self._quarantine(key)
            return None
        labels = meta.get("labels")
        table = EdgeTable(src, dst, weight, n_nodes=int(meta["n_nodes"]),
                          directed=bool(meta["directed"]),
                          labels=labels, coalesce=False)
        return ScoredEdges(table=table, score=score,
                           method=str(meta["method"]), sdev=sdev,
                           info=meta.get("info"))

    def _quarantine(self, key: str) -> None:
        """Drop a corrupt entry so the next put can rewrite it."""
        self.stats.corrupt += 1
        for path in self._paths(key):
            try:
                path.unlink()
            except OSError:
                pass
