"""Two-tier content-addressed cache for scored edge tables.

``ScoreStore`` answers "has this exact table already been scored by
this exact method configuration?" It layers

1. an in-process LRU of live ``ScoredEdges`` objects (hot path: repeated
   budget-matched extractions inside one process skip even the disk),
2. over an optional pluggable *backend* — the persistent tier. The
   default is the content-addressed npz + JSON directory
   (:class:`~repro.pipeline.backends.DirectoryBackend`); a single-file
   SQLite store and a remote-style KV client ship alongside it, all
   behind one interface (:mod:`repro.pipeline.backends`).

Persistent entries are self-verifying: the codec records a digest of
the stored arrays at ``put`` time and recomputes it on load, so a
poisoned, truncated or otherwise corrupt entry *misses* (and is
recomputed and overwritten) instead of being served.

The store also caches **negative results**: a scoring failure that is
deterministic for the (table, method) pair — Sinkhorn non-convergence
on an unbalanceable network — is recorded once as a
:class:`~repro.pipeline.backends.NegativeEntry` and re-raised on every
later :meth:`ScoreStore.get_or_compute`, instead of re-running the
1000-iteration probe on every sweep.

All traffic is counted in :class:`CacheStats`, which the executor
surfaces so sweeps can report hit rates alongside their results, and
:meth:`ScoreStore.gc` applies an LRU eviction policy
(:class:`~repro.pipeline.backends.GCPolicy`) to the persistent tier.

The store **degrades instead of crashing** when its backend goes away:
a terminal :class:`~repro.pipeline.backends.KVUnavailableError` (the
client's retry budget is already spent by then) is logged once, flips
:attr:`CacheStats.degraded`, and switches the store to memory-only
operation — a cache outage slows scoring requests down, it never fails
them. :meth:`ScoreStore.probe_backend` re-checks the backend and
rejoins the persistent tier when the service recovers.
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from ..backbones.base import ScoredEdges
from ..obs.metrics import get_registry
from ..obs.trace import span
from .backends import (BackendCorruption, DirectoryBackend, EntryCorrupt,
                       EntryEncodeError, GCPolicy, GCResult,
                       KVUnavailableError, NegativeEntry, RawEntry,
                       SchemaMismatch, StoreBackend, decode_entry,
                       encode_negative, encode_scored, open_backend,
                       run_gc)
from .fingerprint import _SCHEMA_VERSION

logger = logging.getLogger(__name__)

# Process-wide degradation lifecycle events, across every store.
_DEGRADED_EVENTS = get_registry().counter(
    "repro_cache_degraded_transitions_total",
    "ScoreStore flips into memory-only degraded mode.")
_REARM_EVENTS = get_registry().counter(
    "repro_cache_rearm_total",
    "Degraded ScoreStores re-armed onto their backend by a probe.")

PathLike = Union[str, Path]

#: Default capacity of the in-process LRU tier. Sized to hold a full
#: paper sweep working set (6 networks x 8 methods) with headroom, so
#: repeated in-process sweeps never touch the persistent tier.
DEFAULT_MEMORY_ITEMS = 64


@dataclass
class CacheStats:
    """Counters for one store's lifetime of traffic."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0
    negative_hits: int = 0
    negative_puts: int = 0
    #: Backend outages survived (terminal ``KVUnavailableError``s).
    backend_failures: int = 0
    #: True once the persistent tier has been dropped mid-flight and
    #: the store is serving memory-only (see ``ScoreStore.degraded``).
    degraded: bool = False

    @property
    def hits(self) -> int:
        """Total positive hits across both tiers."""
        return self.memory_hits + self.disk_hits

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.negative_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from either tier."""
        answered = self.hits + self.negative_hits
        return answered / self.requests if self.requests else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Fold another stats object (e.g. a worker's) into this one."""
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.misses += other.misses
        self.puts += other.puts
        self.evictions += other.evictions
        self.corrupt += other.corrupt
        self.negative_hits += other.negative_hits
        self.negative_puts += other.negative_puts
        self.backend_failures += other.backend_failures
        self.degraded = self.degraded or other.degraded

    def summary(self) -> str:
        """One-line human-readable account."""
        text = (f"cache: {self.hits}/{self.requests} hits "
                f"({self.hit_rate:.0%}; memory {self.memory_hits}, "
                f"disk {self.disk_hits}), {self.puts} puts, "
                f"{self.evictions} evictions, {self.corrupt} corrupt")
        if self.negative_hits or self.negative_puts:
            text += (f", {self.negative_hits} negative hits "
                     f"({self.negative_puts} recorded)")
        if self.degraded:
            text += (f", DEGRADED (memory-only; "
                     f"{self.backend_failures} backend failures)")
        return text


class ScoreStore:
    """Two-tier cache mapping fingerprint keys to ``ScoredEdges``.

    Parameters
    ----------
    cache_dir:
        Location of the persistent tier: a directory path, or any spec
        string :func:`repro.pipeline.backends.open_backend` accepts
        (``sqlite://scores.sqlite``, a ``.sqlite`` path, ``kv://``).
        ``None`` keeps the store purely in-memory (still useful for
        repeated extractions in-process).
    memory_items:
        Capacity of the in-process LRU tier; ``0`` disables it.
    backend:
        Explicit :class:`~repro.pipeline.backends.StoreBackend`
        instance; mutually exclusive with ``cache_dir``.
    """

    def __init__(self, cache_dir: Optional[PathLike] = None,
                 memory_items: int = DEFAULT_MEMORY_ITEMS,
                 backend: Optional[StoreBackend] = None):
        if memory_items < 0:
            raise ValueError("memory_items must be non-negative")
        if backend is not None and cache_dir is not None:
            raise ValueError("pass either cache_dir or backend, not both")
        if backend is None and cache_dir is not None:
            backend = open_backend(cache_dir)
        self.backend = backend
        self.cache_dir = backend.root \
            if isinstance(backend, DirectoryBackend) else None
        self.memory_items = int(memory_items)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, object]" = OrderedDict()
        self._sources: dict = {}
        self._degraded = False

    # ------------------------------------------------------------------
    # Degradation (cache outages must never fail a scoring request)
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while the persistent tier is down and being bypassed.

        A terminal :class:`~repro.pipeline.backends.KVUnavailableError`
        from the backend (retries already exhausted client-side) flips
        the store into memory-only mode: every later backend call is
        skipped — no per-request retry storms against a dead service —
        and scoring requests keep being answered from the in-process
        tier plus recompute. :meth:`probe_backend` re-checks the
        backend and clears the flag when the service is back.
        """
        return self._degraded

    def probe_backend(self) -> bool:
        """Re-check a degraded backend; clear the flag if it answers.

        Returns ``True`` when the store has a working persistent tier
        after the call. Safe to call on a healthy store (no-op).
        """
        if self.backend is None:
            return False
        if not self._degraded:
            return True
        try:
            self.backend.contains("__repro_probe__")
        except KVUnavailableError:
            return False
        self._degraded = False
        self.stats.degraded = False
        _REARM_EVENTS.inc()
        logger.warning("score-store backend answered a probe; leaving "
                       "degraded mode")
        return True

    def _mark_degraded(self, error: Exception) -> None:
        self.stats.backend_failures += 1
        if not self._degraded:
            self._degraded = True
            self.stats.degraded = True
            _DEGRADED_EVENTS.inc()
            logger.warning(
                "score-store backend unavailable (%s); degrading to "
                "memory-only operation", error)

    def _backend_usable(self) -> bool:
        return self.backend is not None and not self._degraded

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[ScoredEdges]:
        """Return the cached scores under ``key``, or ``None`` on miss
        (including when the cached entry is a negative result)."""
        found = self._lookup(key)
        return None if isinstance(found, NegativeEntry) else found

    def put(self, key: str, scored: ScoredEdges) -> None:
        """Insert ``scored`` under ``key`` in both tiers."""
        self.stats.puts += 1
        with span("store.put", key=key[:16]):
            self._remember(key, scored)
            self._write_backend(key, scored)

    def put_negative(self, key: str, negative: NegativeEntry) -> None:
        """Record a deterministic scoring failure under ``key``."""
        self.stats.negative_puts += 1
        self._remember(key, negative)
        self._write_backend(key, negative)

    def get_or_compute(self, key: str,
                       compute: Callable[[], ScoredEdges],
                       label: str = "?") -> ScoredEdges:
        """Serve ``key`` from cache, or run ``compute`` and cache it.

        A cached negative result re-raises the recorded exception
        without calling ``compute``; a fresh failure that declares
        itself cacheable (a ``cache_negative`` attribute on the
        exception) is recorded before propagating. ``label`` names the
        computation in recorded negative entries.
        """
        with span("store.get", key=key[:16]) as access:
            found = self._lookup(key)
            if access is not None:
                if isinstance(found, NegativeEntry):
                    outcome = "negative"
                elif found is not None:
                    outcome = "hit"
                else:
                    outcome = "miss"
                access.attributes["outcome"] = outcome
        if isinstance(found, NegativeEntry):
            raise found.to_exception()
        if found is not None:
            return found
        try:
            scored = compute()
        except Exception as error:
            negative = NegativeEntry.from_exception(error, method=label)
            if negative is not None:
                self.put_negative(key, negative)
            raise
        self.put(key, scored)
        return scored

    def adopt(self, key: str, entry) -> None:
        """Insert an entry computed elsewhere without counting traffic.

        The executor folds worker-computed scores (or negative
        verdicts) into the parent store through this: the worker's own
        store already counted the miss and the put, so adopting must
        not double-count (and must not rewrite a complete persistent
        entry the worker already produced).
        """
        self._remember(key, entry)
        try:
            if self._backend_usable() and not self.backend.contains(key):
                self._write_backend(key, entry)
        except KVUnavailableError as error:
            self._mark_degraded(error)

    # ------------------------------------------------------------------
    # Source bindings (file fingerprint -> table fingerprint)
    # ------------------------------------------------------------------

    def bind_source(self, source_key: str,
                    table_fingerprint: str) -> None:
        """Record that the file behind ``source_key`` parses to the
        table with ``table_fingerprint``.

        ``source_key`` comes from
        :func:`repro.pipeline.fingerprint.fingerprint_source_request`
        (a streamed hash of the raw file plus the parse options), so
        later sweeps over the same file can derive their score-cache
        keys with :meth:`resolve_source` instead of re-hashing a fully
        parsed table.
        """
        self._sources[source_key] = table_fingerprint
        if not self._backend_usable():
            return
        meta = {
            "schema": _SCHEMA_VERSION,
            "key": source_key,
            "source": {"table": table_fingerprint},
        }
        try:
            self.backend.put(source_key, RawEntry(meta=meta, payload=None))
        except KVUnavailableError as error:
            self._mark_degraded(error)

    def resolve_source(self, source_key: str) -> Optional[str]:
        """Table fingerprint previously bound to ``source_key``, or
        ``None`` when the binding is unknown (or unreadable)."""
        found = self._sources.get(source_key)
        if found is not None:
            return found
        if not self._backend_usable():
            return None
        try:
            raw = self.backend.get(source_key)
        except BackendCorruption:
            return None
        except KVUnavailableError as error:
            self._mark_degraded(error)
            return None
        if raw is None or not isinstance(raw.meta, dict) \
                or raw.meta.get("schema") != _SCHEMA_VERSION:
            return None
        source = raw.meta.get("source")
        if not isinstance(source, dict):
            return None
        table_fingerprint = source.get("table")
        if not isinstance(table_fingerprint, str):
            return None
        self._sources[source_key] = table_fingerprint
        return table_fingerprint

    def memory_entries(self):
        """Snapshot of the in-process tier as ``(key, entry)`` pairs.

        Entries are live ``ScoredEdges`` or ``NegativeEntry`` objects;
        both kinds are picklable, which is how workers ship results
        back to a memory-only parent store.
        """
        return list(self._memory.items())

    def worker_spec(self) -> Optional[str]:
        """Backend spec a worker process can reopen, or ``None`` when
        the persistent tier is absent, process-local or degraded (a
        worker must not retry a backend the parent already gave up
        on — it ships results back instead)."""
        if not self._backend_usable():
            return None
        return self.backend.spec()

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        if not self._backend_usable():
            return False
        try:
            return self.backend.contains(key)
        except KVUnavailableError as error:
            self._mark_degraded(error)
            return False

    def __len__(self) -> int:
        persistent_keys = ()
        if self._backend_usable():
            try:
                persistent_keys = set(self.backend.keys())
            except KVUnavailableError as error:
                self._mark_degraded(error)
                persistent_keys = ()
        memory_only = sum(1 for key in self._memory
                          if key not in persistent_keys)
        return len(persistent_keys) + memory_only

    def clear_memory(self) -> None:
        """Drop the in-process tier (persistent entries survive)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def gc(self, policy: Optional[GCPolicy] = None, *,
           max_bytes: Optional[int] = None,
           max_entries: Optional[int] = None,
           max_age: Optional[float] = None,
           dry_run: bool = False) -> GCResult:
        """Evict persistent entries LRU-first until ``policy`` holds.

        Either pass a :class:`GCPolicy` or the individual bounds.
        Evicted keys are dropped from the memory tier too, so a
        collected entry is gone from the store's point of view.
        """
        if self.backend is None:
            raise ValueError("gc needs a persistent backend")
        if policy is None:
            policy = GCPolicy(max_bytes=max_bytes, max_entries=max_entries,
                              max_age=max_age)
        result = run_gc(self.backend, policy, dry_run=dry_run)
        if not dry_run:
            for key in result.deleted_keys:
                self._memory.pop(key, None)
            self.stats.evictions += result.deleted
        return result

    # ------------------------------------------------------------------
    # In-memory tier
    # ------------------------------------------------------------------

    def _remember(self, key: str, entry) -> None:
        if self.memory_items == 0:
            return
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _lookup(self, key: str):
        """Both tiers, counting traffic; returns ``ScoredEdges``,
        ``NegativeEntry`` or ``None``."""
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            if isinstance(cached, NegativeEntry):
                self.stats.negative_hits += 1
            else:
                self.stats.memory_hits += 1
            return cached
        loaded = self._load_backend(key)
        if loaded is not None:
            if isinstance(loaded, NegativeEntry):
                self.stats.negative_hits += 1
            else:
                self.stats.disk_hits += 1
            self._remember(key, loaded)
            return loaded
        self.stats.misses += 1
        return None

    # ------------------------------------------------------------------
    # Persistent tier
    # ------------------------------------------------------------------

    def _paths(self, key: str):
        """Directory-backend file pair for ``key`` (compat accessor)."""
        if not isinstance(self.backend, DirectoryBackend):
            raise AttributeError("store has no directory backend")
        return self.backend._paths(key)

    def _write_backend(self, key: str, entry) -> None:
        if not self._backend_usable():
            return
        try:
            if isinstance(entry, NegativeEntry):
                raw = encode_negative(key, entry)
            else:
                raw = encode_scored(key, entry)
        except EntryEncodeError:
            # Non-JSON-serializable method info: keep the entry purely
            # in-memory rather than persisting something unreadable.
            return
        try:
            self.backend.put(key, raw)
        except KVUnavailableError as error:
            self._mark_degraded(error)

    def _load_backend(self, key: str):
        if not self._backend_usable():
            return None
        try:
            raw = self.backend.get(key)
        except BackendCorruption:
            self.stats.corrupt += 1
            return None
        except KVUnavailableError as error:
            self._mark_degraded(error)
            return None
        if raw is None:
            return None
        try:
            return decode_entry(raw)
        except SchemaMismatch:
            return None
        except EntryCorrupt:
            # Quarantine: drop the damaged entry so the next put can
            # rewrite it; it is never served.
            self.stats.corrupt += 1
            self.backend.delete(key)
            return None
