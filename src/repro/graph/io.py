"""CSV import/export for edge tables.

The paper releases its country networks as plain-text edge lists
(``src  trg  nij`` columns); we use the same shape so our synthetic
datasets can be inspected and shipped the same way.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence, Union

from .edge_table import EdgeTable

PathLike = Union[str, Path]


def write_edge_csv(table: EdgeTable, path: PathLike,
                   delimiter: str = ",") -> None:
    """Write ``table`` as a ``src,dst,weight`` CSV with a header row.

    When the table carries node labels, labels are written instead of
    integer indices.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(["src", "dst", "weight"])
        for u, v, w in table.iter_edges():
            writer.writerow([table.label_of(u), table.label_of(v),
                             repr(w)])


def read_edge_csv(path: PathLike, directed: bool = True,
                  delimiter: str = ",",
                  labels: Optional[Sequence[str]] = None) -> EdgeTable:
    """Read a ``src,dst,weight`` CSV written by :func:`write_edge_csv`.

    Endpoints may be integer indices or string labels; string labels are
    mapped to dense indices in first-seen order unless an explicit
    ``labels`` ordering is provided.
    """
    path = Path(path)
    rows = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header = next(reader, None)
        if header is None:
            return EdgeTable((), (), (), directed=directed)
        for row in reader:
            if not row:
                continue
            rows.append((row[0], row[1], float(row[2])))

    if labels is not None:
        index = {label: i for i, label in enumerate(labels)}
    else:
        index = {}
        if all(_is_int(u) and _is_int(v) for u, v, _ in rows):
            index = None
    if index is None:
        triples = [(int(u), int(v), w) for u, v, w in rows]
        return EdgeTable.from_pairs(triples, directed=directed)

    if labels is None:
        for u, v, _ in rows:
            for name in (u, v):
                if name not in index:
                    index[name] = len(index)
        labels = sorted(index, key=index.get)
    triples = [(index[u], index[v], w) for u, v, w in rows]
    return EdgeTable.from_pairs(triples, n_nodes=len(labels),
                                directed=directed, labels=labels)


def _is_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True
