"""CSV import/export for edge tables (compatibility shim).

The paper releases its country networks as plain-text edge lists
(``src  trg  nij`` columns); we use the same shape so our synthetic
datasets can be inspected and shipped the same way.

Since the ingestion refactor the actual work lives in
:mod:`repro.graph.ingest` — chunked, vectorized parsing and writing,
transparent ``.gz`` handling, and the binary ``.npz`` format. The two
functions here keep their historical signatures and semantics (they
always speak CSV, whatever the suffix says) and produce bit-identical
``EdgeTable``s to the pre-refactor row loop; new code should prefer
:func:`repro.graph.ingest.read_edges` /
:func:`repro.graph.ingest.write_edges`, which also dispatch on format.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from pathlib import Path

from .edge_table import EdgeTable
from .ingest import read_edges, write_edges

PathLike = Union[str, Path]


def write_edge_csv(table: EdgeTable, path: PathLike,
                   delimiter: str = ",") -> None:
    """Write ``table`` as a ``src,dst,weight`` CSV with a header row.

    When the table carries node labels, labels are written instead of
    integer indices.
    """
    write_edges(table, path, delimiter=delimiter, format="csv")


def read_edge_csv(path: PathLike, directed: bool = True,
                  delimiter: str = ",",
                  labels: Optional[Sequence[str]] = None) -> EdgeTable:
    """Read a ``src,dst,weight`` CSV written by :func:`write_edge_csv`.

    Endpoints may be integer indices or string labels; string labels are
    mapped to dense indices in first-seen order unless an explicit
    ``labels`` ordering is provided. Malformed rows raise ``ValueError``
    naming the file and 1-based line number.
    """
    return read_edges(path, directed=directed, delimiter=delimiter,
                      labels=labels, format="csv")
