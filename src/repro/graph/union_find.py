"""Disjoint-set (union-find) structure.

Used by Kruskal's maximum spanning tree, connected components and the
doubly-stochastic connectivity sweep. Implements union by rank with path
compression, giving near-constant amortized operations.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint sets over the integers ``0 .. n - 1``."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int8)
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._n_components

    def find(self, x: int) -> int:
        """Return the representative of the set containing ``x``."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # Path compression: point every node on the path at the root.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, x: int, y: int) -> bool:
        """Merge the sets containing ``x`` and ``y``.

        Returns ``True`` if a merge happened, ``False`` if the two elements
        were already in the same set.
        """
        root_x = self.find(x)
        root_y = self.find(y)
        if root_x == root_y:
            return False
        rank = self._rank
        if rank[root_x] < rank[root_y]:
            root_x, root_y = root_y, root_x
        self._parent[root_y] = root_x
        if rank[root_x] == rank[root_y]:
            rank[root_x] += 1
        self._n_components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """Return ``True`` when ``x`` and ``y`` share a set."""
        return self.find(x) == self.find(y)

    def component_labels(self) -> np.ndarray:
        """Return an array mapping each element to a dense component id."""
        roots = np.array([self.find(i) for i in range(len(self))],
                         dtype=np.int64)
        _, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int64)
