"""Batched multi-source shortest-path-tree engine.

The High-Salience Skeleton needs one shortest-path tree per root — a full
single-source problem for every node. The reference implementation
(:func:`repro.graph.paths.dijkstra_reference`) walks a binary heap arc by
arc in pure Python, which is why the paper could not push HSS past a few
thousand edges (Section V-G). This module replaces the per-arc inner loop
with array-native batch relaxation over the CSR adjacency:

Design
------
* **Settle-in-batches Dijkstra.** Per iteration every root settles the
  whole set of frontier nodes that Crauser's OUT-criterion proves final:
  all open ``u`` with ``dist[u] <= min_v(dist[v] + minout[v])``, where
  ``minout[v]`` is the smallest finite outgoing arc length of ``v`` and
  ``v`` ranges over that root's open set. Any improving path would have
  to leave an open node and therefore costs at least the threshold, so
  batch members can only be re-relaxed at *equal* distance — the float
  ``dist`` array is bit-identical to the heap reference, which also
  ignores non-strict improvements.
* **CSR-slab relaxation over a compressed frontier.** The open set is a
  flat ``root * n + node`` index vector, so per-phase work scales with
  the frontier, not with ``roots x nodes``. All arcs leaving a batch are
  materialized as one index slab (``np.repeat`` + cumulative offsets)
  and scattered into ``dist`` with a sort/``reduceat`` minimum — no
  per-arc Python.
* **Optional scipy distance backend.** When ``scipy.sparse.csgraph`` is
  importable (it is an existing dependency of the IO layer) and every
  usable arc has strictly positive length, distances come from scipy's
  C Dijkstra instead — same bits, since any exact Dijkstra computes the
  same min-over-paths float sums. ``backend="numpy"`` forces the
  portable kernel; predecessor derivation is shared either way.
* **Many roots at once.** Roots are processed as rows of an ``(R, n)``
  distance matrix so every vector operation amortizes over the root
  batch; chunking keeps memory bounded for all-roots sweeps.
* **Predecessor arcs, post hoc.** Rather than tracking parents during
  relaxation, predecessors are derived from the final distances: the
  reference heap pops ``(dist, node)`` tuples and only overwrites on
  strict improvement, so its parent of ``v`` is exactly the arc
  ``u -> v`` with ``dist[u] + length == dist[v]`` minimizing
  ``(dist[u], u)`` lexicographically (self-arcs excluded, roots forced
  to ``-1``). Deriving that arc with two scatter-min passes reproduces
  the reference tree *exactly*, tie for tie. The one case where settle
  order is not the ``(dist, node)`` order — chains of zero-*length*
  arcs, impossible with the default ``1 / weight`` lengths — falls back
  to a per-root heap automatically (``backend="reference"``).
* **Arc indices, not tuples.** Trees are reported as predecessor *arc
  ids* into ``Graph.neighbors``; superposing trees is then a plain
  ``np.bincount`` over ``Graph.arc_row`` instead of a ``(u, v) -> row``
  dict lookup per tree edge.
* **Optional process fan-out.** Root chunks are independent, so
  ``workers=`` hands them to :func:`repro.util.parallel.parallel_map`.

The engine is exact for non-negative lengths (zero-length arcs included);
non-finite lengths mark unusable arcs, matching the reference.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import partial
from typing import Optional, Sequence, Tuple

import numpy as np

from ..obs.trace import span
from ..util.parallel import chunked, parallel_map, resolve_workers
from .graph import Graph, concat_csr_slices

_UNREACHED = -1
#: Target element count for one root chunk's working arrays; keeps the
#: (chunk x nodes) and (chunk x arcs) temporaries a few dozen MB.
_CHUNK_BUDGET = 4_000_000

# The per-chunk state handed to (possibly forked) workers: a plain tuple
# of arrays, the resolved backend name, and the prebuilt scipy matrix
# (``None`` off the scipy backend), so it pickles cheaply and shares
# pages under fork.
_Csr = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
             str, object]

#: Recognized values for ``ShortestPathEngine(backend=...)``.
BACKENDS = ("auto", "numpy", "scipy", "reference")


def _have_scipy() -> bool:
    try:
        import scipy.sparse.csgraph  # noqa: F401
    except ImportError:
        return False
    return True


def effective_lengths(weights: np.ndarray) -> np.ndarray:
    """HSS effective proximity: ``1 / weight``, ``inf`` for zero weight."""
    with np.errstate(divide="ignore"):
        return np.where(weights > 0, 1.0 / weights, np.inf)


@dataclass(frozen=True)
class ShortestPathForest:
    """One shortest-path tree per root, in array form.

    Attributes
    ----------
    roots:
        The root of each row.
    dist:
        ``(len(roots), n_nodes)`` distances (``inf`` when unreachable).
    pred:
        Predecessor *node* per ``(root, node)``; ``-1`` for roots and
        unreachable nodes. Matches the heap reference tie for tie.
    pred_arc:
        Predecessor *arc index* into ``Graph.neighbors`` (``-1`` where
        ``pred`` is ``-1``). Feed through ``Graph.arc_row`` to turn tree
        superposition into a ``bincount``.
    """

    roots: np.ndarray
    dist: np.ndarray
    pred: np.ndarray
    pred_arc: np.ndarray

    def tree_edges(self, index: int) -> list:
        """``(parent, child)`` pairs of the tree rooted at ``roots[index]``."""
        pred = self.pred[index]
        return [(int(p), int(v)) for v, p in enumerate(pred)
                if p != _UNREACHED]


class ShortestPathEngine:
    """Array-native shortest-path trees over a CSR :class:`Graph`.

    Parameters
    ----------
    graph:
        CSR adjacency (arcs already doubled for undirected tables).
    lengths:
        Optional per-arc lengths aligned with ``graph.weights``; defaults
        to the HSS effective proximity ``1 / weight``. Must be
        non-negative; non-finite entries mark unusable arcs.
    backend:
        ``"auto"`` (default) picks scipy's C Dijkstra for the distance
        pass when available, else the portable numpy batch kernel; both
        produce bit-identical output. Zero-*length* arcs (possible only
        with a custom ``lengths`` array — the default ``1 / weight`` is
        always positive) force the ``"reference"`` heap backend, because
        batch settling cannot reproduce the heap's discovery-order tie
        breaks across zero-length chains. Forcing ``"numpy"``/``"scipy"``
        raises in that case (or when scipy is missing).
    """

    def __init__(self, graph: Graph, lengths: Optional[np.ndarray] = None,
                 backend: str = "auto"):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if lengths is None:
            lengths = effective_lengths(graph.weights)
        else:
            lengths = np.asarray(lengths, dtype=np.float64)
            if len(lengths) != graph.m:
                raise ValueError("lengths must have one entry per arc")
            if lengths.size and lengths.min() < 0:
                raise ValueError("Dijkstra requires non-negative lengths")
        self.graph = graph
        self.lengths = lengths
        usable = np.isfinite(lengths)
        minout = np.full(graph.n_nodes, np.inf)
        _scatter_min(minout, graph.arc_src[usable], lengths[usable])
        has_zero = bool(lengths[usable].size
                        and lengths[usable].min() == 0.0)
        if backend in ("numpy", "scipy") and has_zero:
            raise ValueError("zero-length arcs require backend='reference' "
                             "to reproduce heap tie-breaking")
        if backend == "scipy" and not _have_scipy():
            raise ValueError("scipy backend requested but scipy is missing")
        if backend == "auto":
            if has_zero:
                backend = "reference"
            else:
                backend = "scipy" if _have_scipy() else "numpy"
        self.backend = backend
        matrix = _build_scipy_matrix(graph, lengths) \
            if backend == "scipy" else None
        self._csr: _Csr = (graph.indptr, graph.neighbors, lengths,
                           graph.arc_src, minout, backend, matrix)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def distances(self, roots: Optional[Sequence[int]] = None,
                  chunk_size: Optional[int] = None,
                  workers: Optional[int] = None) -> np.ndarray:
        """``(len(roots), n_nodes)`` shortest distances (all roots default)."""
        roots = self._resolve_roots(roots)
        if roots.size == 0:
            return np.empty((0, self.graph.n_nodes), dtype=np.float64)
        chunks = chunked(
            roots, self._chunk_size(chunk_size, roots.size, workers))
        with span("sp.batch", op="distances", roots=int(roots.size),
                  chunks=len(chunks)):
            parts = parallel_map(partial(_chunk_distances, self._csr),
                                 chunks, workers=workers)
        return np.vstack(parts)

    def forest(self, roots: Optional[Sequence[int]] = None,
               chunk_size: Optional[int] = None,
               workers: Optional[int] = None) -> ShortestPathForest:
        """Distances plus predecessor nodes/arcs for every root."""
        roots = self._resolve_roots(roots)
        n = self.graph.n_nodes
        if roots.size == 0:
            empty_f = np.empty((0, n), dtype=np.float64)
            empty_i = np.empty((0, n), dtype=np.int64)
            return ShortestPathForest(roots, empty_f, empty_i, empty_i.copy())
        chunks = chunked(
            roots, self._chunk_size(chunk_size, roots.size, workers))
        with span("sp.batch", op="forest", roots=int(roots.size),
                  chunks=len(chunks)):
            parts = parallel_map(partial(_chunk_forest, self._csr),
                                 chunks, workers=workers)
        return ShortestPathForest(
            roots=roots,
            dist=np.vstack([p[0] for p in parts]),
            pred=np.vstack([p[1] for p in parts]),
            pred_arc=np.vstack([p[2] for p in parts]))

    def tree_arc_counts(self, roots: Optional[Sequence[int]] = None,
                        chunk_size: Optional[int] = None,
                        workers: Optional[int] = None) -> np.ndarray:
        """Per-arc usage counts across the roots' shortest-path trees.

        ``counts[a]`` is the number of given roots whose tree enters
        ``neighbors[a]`` through arc ``a`` — the superposition step of
        the High-Salience Skeleton, reduced chunk by chunk so the full
        ``(R, n)`` forest never has to be materialized.
        """
        roots = self._resolve_roots(roots)
        if roots.size == 0:
            return np.zeros(self.graph.m, dtype=np.int64)
        chunks = chunked(
            roots, self._chunk_size(chunk_size, roots.size, workers))
        with span("sp.batch", op="tree_arc_counts",
                  roots=int(roots.size), chunks=len(chunks)):
            parts = parallel_map(partial(_chunk_arc_counts, self._csr),
                                 chunks, workers=workers)
        return np.sum(parts, axis=0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve_roots(self, roots: Optional[Sequence[int]]) -> np.ndarray:
        if roots is None:
            return np.arange(self.graph.n_nodes, dtype=np.int64)
        roots = np.atleast_1d(np.asarray(roots, dtype=np.int64))
        if roots.size and (roots.min() < 0
                           or roots.max() >= self.graph.n_nodes):
            raise ValueError("root index out of range")
        return roots

    def _chunk_size(self, explicit: Optional[int], n_roots: int,
                    workers: Optional[int]) -> int:
        if explicit is not None:
            return max(1, int(explicit))
        widest = max(self.graph.n_nodes, self.graph.m, 1)
        size = max(1, _CHUNK_BUDGET // widest)
        # Make sure a requested fan-out actually gets one chunk per
        # worker, even when the memory budget would allow fewer, larger
        # chunks.
        count = resolve_workers(workers)
        if count > 1:
            size = min(size, -(-n_roots // count))
        return max(1, size)


# ----------------------------------------------------------------------
# Chunk kernels (module level so multiprocessing can pickle them)
# ----------------------------------------------------------------------


def _chunk_distances(csr: _Csr, roots: np.ndarray) -> np.ndarray:
    backend = csr[5]
    if backend == "reference":
        return _reference_chunk_forest(csr, roots)[0]
    if backend == "scipy":
        return _scipy_chunk_distances(csr, roots)
    return _numpy_chunk_distances(csr, roots)


def _build_scipy_matrix(graph: Graph, lengths: np.ndarray):
    """Length-weighted sparse adjacency for scipy's Dijkstra, built once."""
    from scipy.sparse import csr_matrix

    n = graph.n_nodes
    usable = np.isfinite(lengths)
    src, dst = graph.arc_src[usable], graph.neighbors[usable]
    val = lengths[usable]
    # The COO -> CSR conversion *sums* duplicate entries; parallel arcs
    # must be pre-reduced to their minimum length instead.
    key = src * n + dst
    if key.size and len(np.unique(key)) != key.size:
        order = np.argsort(key, kind="stable")
        key, val = key[order], val[order]
        starts = np.flatnonzero(np.r_[True, key[1:] != key[:-1]])
        val = np.minimum.reduceat(val, starts)
        key = key[starts]
        src, dst = key // n, key % n
    return csr_matrix((val, (src, dst)), shape=(n, n))


def _scipy_chunk_distances(csr: _Csr, roots: np.ndarray) -> np.ndarray:
    """Distance pass via scipy's C Dijkstra (bit-identical to the kernel)."""
    from scipy.sparse import csgraph

    return csgraph.dijkstra(csr[6], directed=True, indices=roots)


def _numpy_chunk_distances(csr: _Csr, roots: np.ndarray) -> np.ndarray:
    """Settle-in-batches Dijkstra for one chunk of roots (pure numpy).

    State lives in flat ``root_row * n + node`` coordinates: ``open_``
    holds the reached-but-unsettled frontier, so each phase costs
    O(frontier + relaxed arcs) instead of O(roots x nodes).
    """
    indptr, neighbors, lengths, _, minout = csr[:5]
    n = len(indptr) - 1
    n_roots = len(roots)
    rows = np.arange(n_roots)
    dist = np.full((n_roots, n), np.inf)
    dist[rows, roots] = 0.0
    flat_dist = dist.reshape(-1)
    settled = np.zeros(n_roots * n, dtype=bool)
    in_open = np.zeros(n_roots * n, dtype=bool)
    threshold = np.empty(n_roots)
    open_ = np.unique(rows * n + roots)
    in_open[open_] = True
    while open_.size:
        open_dist = flat_dist[open_]
        open_row = open_ // n
        threshold.fill(np.inf)
        _scatter_min(threshold, open_row, open_dist + minout[open_ % n])
        take = open_dist <= threshold[open_row]
        batch = open_[take]
        open_ = open_[~take]
        settled[batch] = True
        in_open[batch] = False
        nodes = batch % n
        counts = indptr[nodes + 1] - indptr[nodes]
        has_arcs = counts > 0
        batch, nodes, counts = (batch[has_arcs], nodes[has_arcs],
                                counts[has_arcs])
        if not counts.size:
            continue
        # Concatenate the CSR slices of every batch node into one slab.
        arcs = concat_csr_slices(indptr, nodes)
        candidate = np.repeat(flat_dist[batch], counts) + lengths[arcs]
        flat = np.repeat(batch - nodes, counts) + neighbors[arcs]
        usable = np.isfinite(candidate) & ~settled[flat]
        flat, candidate = flat[usable], candidate[usable]
        improved = candidate < flat_dist[flat]
        if improved.any():
            touched = flat[improved]
            _scatter_min(flat_dist, touched, candidate[improved])
            # Membership flags keep ``open_`` duplicate-free; only the
            # (small) set of first-time discoveries needs a sort-dedup.
            fresh = touched[~in_open[touched]]
            if fresh.size:
                fresh = np.unique(fresh)
                in_open[fresh] = True
                open_ = np.concatenate([open_, fresh])
    return dist


def _chunk_forest(csr: _Csr, roots: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    if csr[5] == "reference":
        return _reference_chunk_forest(csr, roots)
    dist = _chunk_distances(csr, roots)
    pred, pred_arc = _derive_predecessors(csr, roots, dist)
    return dist, pred, pred_arc


def _chunk_arc_counts(csr: _Csr, roots: np.ndarray) -> np.ndarray:
    _, _, pred_arc = _chunk_forest(csr, roots)
    used = pred_arc[pred_arc != _UNREACHED]
    return np.bincount(used, minlength=len(csr[1])).astype(np.int64)


def _reference_chunk_forest(csr: _Csr, roots: np.ndarray
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-root binary-heap Dijkstra — the zero-length-arc fallback.

    A chain of zero-length arcs lets a larger-id node settle before a
    smaller-id one at equal distance (the latter may not be discovered
    yet), so tie-breaks follow discovery order and cannot be derived
    from distances alone. This path reproduces them the obvious way.
    """
    indptr, neighbors, lengths, arc_src = csr[:4]
    n = len(indptr) - 1
    n_roots = len(roots)
    dist = np.full((n_roots, n), np.inf)
    pred = np.full((n_roots, n), _UNREACHED, dtype=np.int64)
    for row, source in enumerate(roots):
        d, p = dist[row], pred[row]
        d[source] = 0.0
        done = np.zeros(n, dtype=bool)
        heap: list = [(0.0, int(source))]
        while heap:
            du, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = True
            for idx in range(indptr[u], indptr[u + 1]):
                v = neighbors[idx]
                length = lengths[idx]
                if not np.isfinite(length):
                    continue
                candidate = du + length
                if candidate < d[v]:
                    d[v] = candidate
                    p[v] = u
                    heapq.heappush(heap, (candidate, int(v)))
    # Recover the arc realizing each (pred, child) choice: the lowest
    # arc index satisfying the equality, matching heap relaxation order.
    m = len(neighbors)
    on_tree = (dist[:, arc_src] + lengths[None, :] == dist[:, neighbors])
    on_tree &= pred[:, neighbors] == arc_src[None, :]
    row_idx, arc_idx = np.nonzero(on_tree)
    pred_arc = np.full(n_roots * n, m, dtype=np.int64)
    _scatter_min(pred_arc, row_idx * n + neighbors[arc_idx], arc_idx)
    pred_arc[pred_arc == m] = _UNREACHED
    return dist, pred, pred_arc.reshape(n_roots, n)


def _derive_predecessors(csr: _Csr, roots: np.ndarray, dist: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Reconstruct the reference heap's predecessor choice from distances.

    For every reached non-root node the reference parent is the arc
    ``u -> v`` satisfying ``dist[u] + length == dist[v]`` whose source
    minimizes ``(dist[u], u)`` — the heap's settle order (valid because
    with positive lengths every equal-distance node is already in the
    heap before the first of them pops; the zero-length case goes
    through the reference backend instead). Stage 1 finds the minimal
    ``dist[u]`` per target; stage 2 resolves ``(u, arc)`` in one
    scatter-min over the packed key ``u * m + arc``.
    """
    indptr, neighbors, lengths, arc_src = csr[:4]
    n_roots, n = dist.shape
    m = len(neighbors)
    dist_src = dist[:, arc_src]
    dist_dst = dist[:, neighbors]
    on_tree = (dist_src + lengths[None, :] == dist_dst)
    on_tree &= np.isfinite(dist_dst)
    on_tree &= (arc_src != neighbors)[None, :]
    row_idx, arc_idx = np.nonzero(on_tree)
    flat_dst = row_idx * n + neighbors[arc_idx]
    src_dist = dist_src[on_tree]

    best_dist = np.full(n_roots * n, np.inf)
    _scatter_min(best_dist, flat_dst, src_dist)
    stage2 = src_dist == best_dist[flat_dst]
    flat2, arc2 = flat_dst[stage2], arc_idx[stage2]

    packed = np.full(n_roots * n, n * m + m, dtype=np.int64)
    _scatter_min(packed, flat2, arc_src[arc2] * m + arc2)

    reached = packed != n * m + m
    pred = np.full(n_roots * n, _UNREACHED, dtype=np.int64)
    pred_arc = np.full(n_roots * n, _UNREACHED, dtype=np.int64)
    pred[reached] = packed[reached] // m
    pred_arc[reached] = packed[reached] % m
    pred = pred.reshape(n_roots, n)
    pred_arc = pred_arc.reshape(n_roots, n)
    rows = np.arange(n_roots)
    pred[rows, roots] = _UNREACHED
    pred_arc[rows, roots] = _UNREACHED
    return pred, pred_arc


def _scatter_min(target: np.ndarray, index: np.ndarray,
                 values: np.ndarray) -> None:
    """``target[index] = min(target[index], values)`` with duplicates.

    Sort + ``reduceat`` beats ``np.minimum.at`` (which has no fast path)
    by a wide margin on large slabs.
    """
    if len(index) == 0:
        return
    order = np.argsort(index, kind="stable")
    idx = index[order]
    val = values[order]
    starts = np.flatnonzero(np.r_[True, idx[1:] != idx[:-1]])
    group_min = np.minimum.reduceat(val, starts)
    pos = idx[starts]
    target[pos] = np.minimum(target[pos], group_min)
