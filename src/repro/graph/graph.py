"""Adjacency-structured view of an :class:`~repro.graph.edge_table.EdgeTable`.

Algorithms that walk neighborhoods (Dijkstra, Louvain, Infomap, clustering
coefficients) need O(1) access to a node's incident edges. ``Graph`` builds a
CSR-like structure (``indptr`` / ``neighbors`` / ``weights``) once and then
serves read-only neighbor views.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .edge_table import EdgeTable


class Graph:
    """Immutable CSR adjacency built from an edge table.

    For undirected tables each edge is stored in both endpoints' neighbor
    lists. For directed tables only outgoing edges are stored; use
    :meth:`reversed` for incoming adjacency.
    """

    __slots__ = ("indptr", "neighbors", "weights", "n_nodes", "directed",
                 "labels")

    def __init__(self, table: EdgeTable):
        expanded = table.as_directed_doubled() if not table.directed else table
        n = table.n_nodes
        order = np.argsort(expanded.src, kind="stable")
        src_sorted = expanded.src[order]
        self.neighbors = expanded.dst[order]
        self.weights = expanded.weight[order]
        counts = np.bincount(src_sorted, minlength=n)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self.n_nodes = n
        self.directed = table.directed
        self.labels = table.labels

    @property
    def m(self) -> int:
        """Number of stored directed arcs."""
        return len(self.neighbors)

    def neighbors_of(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, weights)`` views for ``node``."""
        start, stop = self.indptr[node], self.indptr[node + 1]
        return self.neighbors[start:stop], self.weights[start:stop]

    def degree_of(self, node: int) -> int:
        """Number of stored arcs leaving ``node``."""
        return int(self.indptr[node + 1] - self.indptr[node])

    def strength_of(self, node: int) -> float:
        """Sum of weights of arcs leaving ``node``."""
        start, stop = self.indptr[node], self.indptr[node + 1]
        return float(self.weights[start:stop].sum())

    def total_weight(self) -> float:
        """Sum over all stored arcs (undirected edges counted twice)."""
        return float(self.weights.sum())

    def reversed(self) -> "Graph":
        """Return the graph with every directed arc flipped.

        Undirected graphs are symmetric already, so a shallow rebuild of
        the same table is returned.
        """
        table = EdgeTable(self.neighbors, self._arc_sources(), self.weights,
                          n_nodes=self.n_nodes, directed=True,
                          labels=self.labels, coalesce=False)
        graph = Graph(table)
        graph.directed = self.directed
        return graph

    def _arc_sources(self) -> np.ndarray:
        sources = np.empty(self.m, dtype=np.int64)
        for node in range(self.n_nodes):
            sources[self.indptr[node]:self.indptr[node + 1]] = node
        return sources
