"""Adjacency-structured view of an :class:`~repro.graph.edge_table.EdgeTable`.

Algorithms that walk neighborhoods (Dijkstra, Louvain, Infomap, clustering
coefficients) need O(1) access to a node's incident edges. ``Graph`` builds a
CSR-like structure (``indptr`` / ``neighbors`` / ``weights``) once and then
serves read-only neighbor views.

Two derived arrays are cached at construction for the array-native
shortest-path engine (:mod:`repro.graph.sp_engine`):

``arc_src``
    The source node of every stored arc (the CSR row expanded back to one
    entry per arc via ``np.repeat``).
``arc_row``
    For every stored arc, the row of the *originating* edge table. For
    undirected tables both orientations of an edge map to the same row,
    which is what lets shortest-path-tree superposition accumulate arc
    counts straight into per-edge scores with ``np.bincount`` instead of a
    per-edge Python dict.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .edge_table import EdgeTable


class Graph:
    """Immutable CSR adjacency built from an edge table.

    For undirected tables each edge is stored in both endpoints' neighbor
    lists. For directed tables only outgoing edges are stored; use
    :meth:`reversed` for incoming adjacency.
    """

    __slots__ = ("indptr", "neighbors", "weights", "n_nodes", "directed",
                 "labels", "arc_src", "arc_row")

    def __init__(self, table: EdgeTable):
        expanded = table.as_directed_doubled() if not table.directed else table
        n = table.n_nodes
        order = np.argsort(expanded.src, kind="stable")
        self.neighbors = expanded.dst[order]
        self.weights = expanded.weight[order]
        counts = np.bincount(expanded.src[order], minlength=n)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self.n_nodes = n
        self.directed = table.directed
        self.labels = table.labels
        self.arc_src = np.repeat(np.arange(n, dtype=np.int64),
                                 np.diff(self.indptr))
        # ``as_directed_doubled`` keeps the original rows first and then
        # appends the flipped non-loop rows in table order, so the arc ->
        # table-row map is a concatenation reshuffled by ``order``.
        if table.directed:
            rows = np.arange(table.m, dtype=np.int64)
        else:
            rows = np.concatenate([
                np.arange(table.m, dtype=np.int64),
                np.flatnonzero(table.src != table.dst).astype(np.int64)])
        self.arc_row = rows[order]

    @property
    def m(self) -> int:
        """Number of stored directed arcs."""
        return len(self.neighbors)

    def neighbors_of(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, weights)`` views for ``node``."""
        start, stop = self.indptr[node], self.indptr[node + 1]
        return self.neighbors[start:stop], self.weights[start:stop]

    def degree_of(self, node: int) -> int:
        """Number of stored arcs leaving ``node``."""
        return int(self.indptr[node + 1] - self.indptr[node])

    def strength_of(self, node: int) -> float:
        """Sum of weights of arcs leaving ``node``."""
        start, stop = self.indptr[node], self.indptr[node + 1]
        return float(self.weights[start:stop].sum())

    def total_weight(self) -> float:
        """Sum over all stored arcs (undirected edges counted twice)."""
        return float(self.weights.sum())

    def reversed(self) -> "Graph":
        """Return the graph with every directed arc flipped.

        Undirected graphs are symmetric already, so a shallow rebuild of
        the same table is returned.
        """
        table = EdgeTable(self.neighbors, self._arc_sources(), self.weights,
                          n_nodes=self.n_nodes, directed=True,
                          labels=self.labels, coalesce=False)
        graph = Graph(table)
        graph.directed = self.directed
        return graph

    def _arc_sources(self) -> np.ndarray:
        return self.arc_src


def concat_csr_slices(indptr: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Indices of all CSR entries of ``nodes``, concatenated in order.

    The returned index vector addresses ``neighbors``/``weights``-aligned
    arrays, equivalent to ``np.concatenate([np.arange(indptr[v],
    indptr[v + 1]) for v in nodes])`` without the Python loop. Shared by
    BFS, clustering and the shortest-path engine's slab relaxation.
    """
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts,
                                           counts)
    return np.repeat(indptr[nodes], counts) + offsets
