"""Connected components over edge tables.

Directed tables are treated as weakly connected (edge direction ignored),
which is the notion the Doubly-Stochastic filter's connectivity sweep and
the coverage metric need.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .edge_table import EdgeTable
from .union_find import UnionFind


def connected_components(table: EdgeTable) -> Tuple[np.ndarray, int]:
    """Label nodes by (weak) connected component.

    Returns ``(labels, n_components)`` where ``labels[i]`` is a dense
    component id for node ``i``. Isolated nodes each form their own
    component.
    """
    ds = UnionFind(table.n_nodes)
    for u, v in zip(table.src.tolist(), table.dst.tolist()):
        ds.union(u, v)
    return ds.component_labels(), ds.n_components


def is_connected(table: EdgeTable) -> bool:
    """Return ``True`` when all nodes lie in one (weak) component."""
    if table.n_nodes <= 1:
        return True
    _, count = connected_components(table)
    return count == 1


def giant_component_mask(table: EdgeTable) -> np.ndarray:
    """Boolean node mask selecting the largest (weak) component."""
    labels, count = connected_components(table)
    if count == 0:
        return np.zeros(table.n_nodes, dtype=bool)
    sizes = np.bincount(labels, minlength=count)
    return labels == int(np.argmax(sizes))


def component_sizes(table: EdgeTable) -> np.ndarray:
    """Sizes of all components, sorted descending."""
    labels, count = connected_components(table)
    sizes = np.bincount(labels, minlength=count)
    return np.sort(sizes)[::-1]
