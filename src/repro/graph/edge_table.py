"""Columnar weighted edge lists.

``EdgeTable`` is the fundamental data structure of this library, mirroring
the paper's definition of a weighted graph ``G = (V, E, N)``. Edges are
stored as three aligned numpy arrays (``src``, ``dst``, ``weight``), which is
what lets the Noise-Corrected backbone and the Disparity Filter run as pure
vectorized computations and scale to millions of edges (paper Section V-G).

Conventions
-----------
* Nodes are dense integer indices ``0 .. n_nodes - 1``. Optional string
  labels can be attached for presentation and IO.
* Undirected tables store one canonical row per edge with ``src <= dst``.
  Marginal quantities (strengths, ``N..``) are defined on the implicit
  "doubled" representation — each undirected edge contributes its weight to
  both endpoints — matching the reference implementation of the paper.
* Duplicate rows are coalesced by summing their weights.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..util.validation import as_float_array, as_index_array, require

EdgeKey = Tuple[int, int]


class EdgeTable:
    """A weighted edge list over nodes ``0 .. n_nodes - 1``.

    Parameters
    ----------
    src, dst:
        Endpoint index arrays of equal length.
    weight:
        Non-negative edge weights (the paper's ``N_ij``).
    n_nodes:
        Number of nodes. Defaults to ``max(src, dst) + 1``.
    directed:
        Whether rows are ordered pairs. Undirected rows are canonicalized
        so that ``src <= dst``.
    labels:
        Optional sequence of node labels, one per node.
    coalesce:
        When ``True`` (default) duplicate rows are merged by summing
        weights. Construction from trusted, already-unique data may pass
        ``False`` to skip the sort.
    """

    __slots__ = ("src", "dst", "weight", "n_nodes", "directed", "labels")

    def __init__(
        self,
        src: Iterable[int],
        dst: Iterable[int],
        weight: Iterable[float],
        n_nodes: Optional[int] = None,
        directed: bool = True,
        labels: Optional[Sequence[str]] = None,
        coalesce: bool = True,
    ):
        src = as_index_array(src, "src")
        dst = as_index_array(dst, "dst")
        weight = as_float_array(weight, "weight")
        require(len(src) == len(dst) == len(weight),
                "src, dst and weight must have the same length")
        if weight.size and weight.min() < 0:
            raise ValueError("edge weights must be non-negative")
        observed_max = int(max(src.max(), dst.max())) + 1 if len(src) else 0
        if n_nodes is None:
            n_nodes = observed_max
        require(n_nodes >= observed_max,
                f"n_nodes={n_nodes} is smaller than the largest index "
                f"{observed_max - 1}")
        if not directed and len(src):
            lo = np.minimum(src, dst)
            hi = np.maximum(src, dst)
            src, dst = lo, hi
        if coalesce and len(src):
            src, dst, weight = coalesce_edges(src, dst, weight)
        if labels is not None:
            if not (isinstance(labels, tuple)
                    and all(type(label) is str for label in labels)):
                labels = tuple(str(label) for label in labels)
            require(len(labels) == n_nodes,
                    f"labels has length {len(labels)}, expected {n_nodes}")
        self.src = src
        self.dst = dst
        self.weight = weight
        self.n_nodes = int(n_nodes)
        self.directed = bool(directed)
        self.labels = labels

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        weight: np.ndarray,
        n_nodes: Optional[int] = None,
        directed: bool = True,
        labels: Optional[Sequence[str]] = None,
        coalesce: bool = True,
    ) -> "EdgeTable":
        """Build a table from aligned numpy arrays without row loops.

        This is the bulk-ingestion constructor: arrays of the right
        dtype (``int64`` endpoints, ``float64`` weights) are adopted
        without copying, and canonicalization runs as one vectorized
        :func:`coalesce_edges` pass (an O(m) no-op when the input is
        already canonical). ``coalesce=False`` skips even that for
        trusted, already-canonical data such as the ``.npz`` format.
        """
        return cls(src, dst, weight, n_nodes=n_nodes, directed=directed,
                   labels=labels, coalesce=coalesce)

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[int, int, float]],
        n_nodes: Optional[int] = None,
        directed: bool = True,
        labels: Optional[Sequence[str]] = None,
    ) -> "EdgeTable":
        """Build a table from an iterable of ``(u, v, weight)`` triples."""
        triples = list(pairs)
        if triples:
            src, dst, weight = zip(*triples)
        else:
            src, dst, weight = (), (), ()
        return cls(src, dst, weight, n_nodes=n_nodes, directed=directed,
                   labels=labels)

    @classmethod
    def from_dict(
        cls,
        weights: Mapping[EdgeKey, float],
        n_nodes: Optional[int] = None,
        directed: bool = True,
        labels: Optional[Sequence[str]] = None,
    ) -> "EdgeTable":
        """Build a table from a ``{(u, v): weight}`` mapping."""
        triples = ((u, v, w) for (u, v), w in weights.items())
        return cls.from_pairs(triples, n_nodes=n_nodes, directed=directed,
                              labels=labels)

    @classmethod
    def from_dense(
        cls,
        matrix: np.ndarray,
        directed: bool = True,
        labels: Optional[Sequence[str]] = None,
        keep_zeros: bool = False,
    ) -> "EdgeTable":
        """Build a table from a dense adjacency matrix.

        For undirected input only the upper triangle (including the
        diagonal) is read, so a symmetric matrix round-trips cleanly.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        require(matrix.ndim == 2 and matrix.shape[0] == matrix.shape[1],
                f"adjacency matrix must be square, got shape {matrix.shape}")
        n = matrix.shape[0]
        if directed:
            mask = np.ones_like(matrix, dtype=bool)
        else:
            mask = np.triu(np.ones_like(matrix, dtype=bool))
        if not keep_zeros:
            mask &= matrix != 0
        src, dst = np.nonzero(mask)
        return cls(src, dst, matrix[src, dst], n_nodes=n, directed=directed,
                   labels=labels)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.src)

    @property
    def m(self) -> int:
        """Number of stored edges (rows)."""
        return len(self.src)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (f"EdgeTable({kind}, n_nodes={self.n_nodes}, "
                f"m={self.m}, total_weight={self.total_weight:.6g})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeTable):
            return NotImplemented
        if (self.n_nodes, self.directed) != (other.n_nodes, other.directed):
            return False
        a = self.sorted_by_endpoints()
        b = other.sorted_by_endpoints()
        return (np.array_equal(a.src, b.src)
                and np.array_equal(a.dst, b.dst)
                and np.allclose(a.weight, b.weight))

    def __hash__(self):  # tables are mutable containers; keep them unhashable
        raise TypeError("EdgeTable is not hashable")

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` triples."""
        for u, v, w in zip(self.src, self.dst, self.weight):
            yield int(u), int(v), float(w)

    def label_of(self, node: int) -> str:
        """Return the label of ``node`` (its index as text when unlabeled)."""
        if self.labels is None:
            return str(node)
        return self.labels[node]

    # ------------------------------------------------------------------
    # Marginals (the paper's N_i., N_.j and N..)
    # ------------------------------------------------------------------

    @property
    def total_weight(self) -> float:
        """Sum of stored edge weights (each undirected edge counted once)."""
        return float(self.weight.sum())

    @property
    def grand_total(self) -> float:
        """The paper's ``N..``.

        For directed tables this is the plain sum of weights. For
        undirected tables every edge is counted in both directions, so
        ``N..`` equals twice the stored total (self-loops excluded from the
        doubling).
        """
        if self.directed:
            return float(self.weight.sum())
        loops = self.src == self.dst
        loop_weight = float(self.weight[loops].sum())
        return 2.0 * (self.total_weight - loop_weight) + loop_weight

    def out_strength(self) -> np.ndarray:
        """Total outgoing weight per node (``N_i.``).

        For undirected tables this is the node strength: the sum of
        weights of all incident edges.
        """
        if self.directed:
            return np.bincount(self.src, weights=self.weight,
                               minlength=self.n_nodes)
        return self._undirected_strength()

    def in_strength(self) -> np.ndarray:
        """Total incoming weight per node (``N_.j``)."""
        if self.directed:
            return np.bincount(self.dst, weights=self.weight,
                               minlength=self.n_nodes)
        return self._undirected_strength()

    def strength(self) -> np.ndarray:
        """Total incident weight per node, regardless of direction."""
        if not self.directed:
            return self._undirected_strength()
        return self.out_strength() + self.in_strength()

    def _undirected_strength(self) -> np.ndarray:
        non_loop = self.src != self.dst
        out_part = np.bincount(self.src[non_loop],
                               weights=self.weight[non_loop],
                               minlength=self.n_nodes)
        in_part = np.bincount(self.dst[non_loop],
                              weights=self.weight[non_loop],
                              minlength=self.n_nodes)
        loops = ~non_loop
        loop_part = np.bincount(self.src[loops], weights=self.weight[loops],
                                minlength=self.n_nodes)
        return out_part + in_part + loop_part

    def out_degree(self) -> np.ndarray:
        """Number of outgoing (or incident, when undirected) edges."""
        if self.directed:
            return np.bincount(self.src, minlength=self.n_nodes)
        return self._undirected_degree()

    def in_degree(self) -> np.ndarray:
        """Number of incoming (or incident, when undirected) edges."""
        if self.directed:
            return np.bincount(self.dst, minlength=self.n_nodes)
        return self._undirected_degree()

    def degree(self) -> np.ndarray:
        """Total number of incident edges per node."""
        if not self.directed:
            return self._undirected_degree()
        return self.out_degree() + self.in_degree()

    def _undirected_degree(self) -> np.ndarray:
        non_loop = self.src != self.dst
        counts = np.bincount(self.src[non_loop], minlength=self.n_nodes)
        counts += np.bincount(self.dst[non_loop], minlength=self.n_nodes)
        counts += np.bincount(self.src[~non_loop], minlength=self.n_nodes)
        return counts

    def isolates(self) -> np.ndarray:
        """Indices of nodes with no incident edges."""
        return np.flatnonzero(self.degree() == 0)

    def non_isolated_count(self) -> int:
        """Number of nodes touched by at least one edge."""
        return self.n_nodes - len(self.isolates())

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def copy(self) -> "EdgeTable":
        """Return a deep copy of the table."""
        return EdgeTable(self.src.copy(), self.dst.copy(), self.weight.copy(),
                         n_nodes=self.n_nodes, directed=self.directed,
                         labels=self.labels, coalesce=False)

    def subset(self, mask: np.ndarray) -> "EdgeTable":
        """Return a table with only the rows selected by ``mask``.

        ``mask`` may be a boolean mask or an integer index array.
        """
        mask = np.asarray(mask)
        return EdgeTable(self.src[mask], self.dst[mask], self.weight[mask],
                         n_nodes=self.n_nodes, directed=self.directed,
                         labels=self.labels, coalesce=False)

    def with_weights(self, new_weights: Iterable[float]) -> "EdgeTable":
        """Return a table with the same edges but different weights."""
        new_weights = as_float_array(new_weights, "new_weights")
        require(len(new_weights) == self.m,
                "new_weights must have one entry per edge")
        return EdgeTable(self.src, self.dst, new_weights,
                         n_nodes=self.n_nodes, directed=self.directed,
                         labels=self.labels, coalesce=False)

    def without_self_loops(self) -> "EdgeTable":
        """Return a table with all ``(i, i)`` rows removed."""
        return self.subset(self.src != self.dst)

    def sorted_by_endpoints(self) -> "EdgeTable":
        """Return a table with rows sorted by ``(src, dst)``."""
        order = np.lexsort((self.dst, self.src))
        return self.subset(order)

    def top_k_by(self, values: np.ndarray, k: int) -> "EdgeTable":
        """Return the ``k`` rows with the largest ``values``.

        Ties are broken deterministically by weight and then row order, so
        repeated runs keep the same edges (needed for edge-budget matched
        comparisons across backbone methods).
        """
        values = as_float_array(values, "values")
        require(len(values) == self.m, "values must have one entry per edge")
        k = int(k)
        require(0 <= k <= self.m, f"k={k} out of range [0, {self.m}]")
        order = np.lexsort((np.arange(self.m), -self.weight, -values))
        return self.subset(np.sort(order[:k]))

    def symmetrized(self, mode: str = "sum") -> "EdgeTable":
        """Collapse a directed table into an undirected one.

        ``mode`` selects how the two orientations combine: ``"sum"``,
        ``"max"``, ``"min"`` or ``"avg"``. Undirected tables are returned
        unchanged (a copy).
        """
        if not self.directed:
            return self.copy()
        lo = np.minimum(self.src, self.dst)
        hi = np.maximum(self.src, self.dst)
        if mode == "sum":
            return EdgeTable(lo, hi, self.weight, n_nodes=self.n_nodes,
                             directed=False, labels=self.labels)
        keys = lo.astype(np.int64) * self.n_nodes + hi
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        weights_sorted = self.weight[order]
        boundaries = np.flatnonzero(np.diff(keys_sorted)) + 1
        groups = np.split(weights_sorted, boundaries)
        unique_keys = keys_sorted[np.r_[0, boundaries]] if len(keys_sorted) \
            else keys_sorted
        reducers = {"max": np.max, "min": np.min, "avg": np.mean}
        require(mode in reducers, f"unknown symmetrization mode {mode!r}")
        reducer = reducers[mode]
        merged = np.array([reducer(group) for group in groups],
                          dtype=np.float64)
        return EdgeTable(unique_keys // self.n_nodes,
                         unique_keys % self.n_nodes, merged,
                         n_nodes=self.n_nodes, directed=False,
                         labels=self.labels, coalesce=False)

    def as_directed_doubled(self) -> "EdgeTable":
        """Expand an undirected table into both directed orientations.

        Self-loops appear once. Directed tables are returned unchanged
        (a copy). This is the representation on which the paper's
        marginals for undirected networks are defined.
        """
        if self.directed:
            return self.copy()
        non_loop = self.src != self.dst
        src = np.concatenate([self.src, self.dst[non_loop]])
        dst = np.concatenate([self.dst, self.src[non_loop]])
        weight = np.concatenate([self.weight, self.weight[non_loop]])
        return EdgeTable(src, dst, weight, n_nodes=self.n_nodes,
                         directed=True, labels=self.labels, coalesce=False)

    def union(self, other: "EdgeTable") -> "EdgeTable":
        """Merge two tables over the same node set, summing shared edges."""
        require(self.directed == other.directed,
                "cannot union directed with undirected tables")
        n_nodes = max(self.n_nodes, other.n_nodes)
        return EdgeTable(np.concatenate([self.src, other.src]),
                         np.concatenate([self.dst, other.dst]),
                         np.concatenate([self.weight, other.weight]),
                         n_nodes=n_nodes, directed=self.directed,
                         labels=self.labels if self.labels else other.labels)

    # ------------------------------------------------------------------
    # Lookups and exports
    # ------------------------------------------------------------------

    def edge_keys(self) -> np.ndarray:
        """Return a vector of scalar keys ``src * n_nodes + dst``."""
        return self.src.astype(np.int64) * self.n_nodes + self.dst

    def edge_key_set(self) -> frozenset:
        """Return the set of ``(src, dst)`` pairs (canonical if undirected)."""
        return frozenset(zip(self.src.tolist(), self.dst.tolist()))

    def weight_lookup(self) -> Dict[EdgeKey, float]:
        """Return a ``{(u, v): weight}`` dict (canonical if undirected)."""
        return {(int(u), int(v)): float(w)
                for u, v, w in zip(self.src, self.dst, self.weight)}

    def to_dense(self) -> np.ndarray:
        """Return the dense adjacency matrix (symmetric when undirected)."""
        matrix = np.zeros((self.n_nodes, self.n_nodes), dtype=np.float64)
        np.add.at(matrix, (self.src, self.dst), self.weight)
        if not self.directed:
            non_loop = self.src != self.dst
            np.add.at(matrix, (self.dst[non_loop], self.src[non_loop]),
                      self.weight[non_loop])
        return matrix

    def to_csr(self):
        """Return a ``scipy.sparse.csr_matrix`` adjacency."""
        from scipy import sparse

        doubled = self if self.directed else self.as_directed_doubled()
        return sparse.csr_matrix(
            (doubled.weight, (doubled.src, doubled.dst)),
            shape=(self.n_nodes, self.n_nodes))


def coalesce_edges(src: np.ndarray, dst: np.ndarray, weight: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonicalize edge arrays: sort by ``(src, dst)`` and merge
    duplicate rows by summing their weights.

    This is the single canonicalization pass shared by the
    constructor and :class:`repro.graph.ingest.EdgeTableBuilder`.
    Input that is already canonical (strictly increasing ``(src,
    dst)``, e.g. a table written by this library and read back) is
    detected with one O(m) scan and returned untouched. Otherwise
    scalar ``src * span + dst`` sort keys are used only when they
    provably fit in ``int64``, with a lexicographic sort fallback for
    tables with huge node indices — coalescing never overflows.

    Within a duplicate group, weights are summed in original row
    order (the sort is stable), so the result is bit-identical to a
    per-row accumulation.
    """
    if len(src) == 0:
        return src, dst, weight
    same_src = src[1:] == src[:-1]
    ascending = (src[1:] > src[:-1]) \
        | (same_src & (dst[1:] > dst[:-1]))
    if ascending.all():
        return src, dst, weight
    span = int(max(src.max(), dst.max())) + 1
    if span <= 3_037_000_499:  # span**2 fits in int64
        keys = src * span + dst
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        if len(unique_keys) == len(keys):
            order = np.argsort(keys, kind="stable")
            return src[order], dst[order], weight[order]
        summed = np.bincount(inverse, weights=weight,
                             minlength=len(unique_keys))
        return (unique_keys // span, unique_keys % span,
                summed.astype(np.float64))
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    weight = weight[order]
    firsts = np.empty(len(src), dtype=bool)
    firsts[0] = True
    firsts[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
    starts = np.flatnonzero(firsts)
    if len(starts) == len(src):
        return src, dst, weight
    group = np.cumsum(firsts) - 1
    summed = np.bincount(group, weights=weight, minlength=len(starts))
    return src[starts], dst[starts], summed.astype(np.float64)


#: Backwards-compatible alias (the pre-ingest private name).
def _coalesce(src: np.ndarray, dst: np.ndarray, weight: np.ndarray,
              n_nodes: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    return coalesce_edges(src, dst, weight)
