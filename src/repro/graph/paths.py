"""Shortest paths and shortest-path trees.

The High-Salience Skeleton (paper Section III-B) superposes, over all
roots, the shortest-path tree computed on *effective proximities*: strong
edges are short. We follow the HSS convention of using ``1 / weight`` as
edge length.

Two implementations coexist:

* :func:`dijkstra` / :func:`all_pairs_distances` delegate to the batched
  array engine (:mod:`repro.graph.sp_engine`), which relaxes CSR slabs
  with numpy instead of walking a Python heap arc by arc.
* :func:`dijkstra_reference` is the original binary-heap Dijkstra, kept
  as the slow-but-obvious fallback. The engine reproduces its output —
  distances *and* predecessor tie-breaks — bit for bit, and the property
  tests in ``tests/test_sp_engine.py`` hold the two to that contract.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from .edge_table import EdgeTable
from .graph import Graph, concat_csr_slices
from .sp_engine import ShortestPathEngine, effective_lengths

_UNREACHED = -1


def dijkstra(graph: Graph, source: int,
             lengths: Optional[np.ndarray] = None
             ) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths (batched-engine backed).

    Parameters
    ----------
    graph:
        CSR adjacency. For undirected tables arcs exist in both
        directions already.
    source:
        Root node index.
    lengths:
        Optional per-arc lengths aligned with ``graph.weights``. Defaults
        to ``1 / weight`` (the HSS effective proximity). Arcs with zero
        weight are treated as unusable.

    Returns
    -------
    (dist, pred):
        ``dist[v]`` is the shortest distance from ``source`` (``inf`` when
        unreachable); ``pred[v]`` is the predecessor of ``v`` on a shortest
        path (``-1`` for the source and unreachable nodes). Identical —
        tie-breaks included — to :func:`dijkstra_reference`.
    """
    if not 0 <= source < graph.n_nodes:
        raise ValueError(f"source {source} out of range")
    forest = ShortestPathEngine(graph, lengths=lengths).forest([source])
    return forest.dist[0], forest.pred[0]


def dijkstra_reference(graph: Graph, source: int,
                       lengths: Optional[np.ndarray] = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Binary-heap Dijkstra, one Python iteration per arc.

    The original implementation, kept as the reference the batched engine
    is validated against (same signature and output as :func:`dijkstra`).
    """
    if not 0 <= source < graph.n_nodes:
        raise ValueError(f"source {source} out of range")
    if lengths is None:
        lengths = effective_lengths(graph.weights)
    else:
        lengths = np.asarray(lengths, dtype=np.float64)
        if len(lengths) != graph.m:
            raise ValueError("lengths must have one entry per arc")
        if lengths.size and lengths.min() < 0:
            raise ValueError("Dijkstra requires non-negative lengths")

    dist = np.full(graph.n_nodes, np.inf)
    pred = np.full(graph.n_nodes, _UNREACHED, dtype=np.int64)
    dist[source] = 0.0
    done = np.zeros(graph.n_nodes, dtype=bool)
    heap: List[Tuple[float, int]] = [(0.0, source)]
    indptr, nbrs = graph.indptr, graph.neighbors
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for idx in range(indptr[u], indptr[u + 1]):
            v = nbrs[idx]
            length = lengths[idx]
            if not np.isfinite(length):
                continue
            candidate = d + length
            if candidate < dist[v]:
                dist[v] = candidate
                pred[v] = u
                heapq.heappush(heap, (candidate, int(v)))
    return dist, pred


def shortest_path_tree(graph: Graph, source: int,
                       lengths: Optional[np.ndarray] = None
                       ) -> List[Tuple[int, int]]:
    """Edges ``(pred[v], v)`` of the shortest-path tree rooted at ``source``.

    Ties between equal-length paths are resolved by Dijkstra's settle
    order, giving one deterministic tree per root — the same convention as
    the reference HSS implementation.
    """
    _, pred = dijkstra(graph, source, lengths=lengths)
    return [(int(p), int(v)) for v, p in enumerate(pred) if p != _UNREACHED]


def all_pairs_distances(graph: Graph,
                        lengths: Optional[np.ndarray] = None) -> np.ndarray:
    """Dense matrix of shortest distances between all node pairs.

    Runs the batched engine over every root (chunked internally to bound
    working memory at roughly the size of the output matrix).
    """
    return ShortestPathEngine(graph, lengths=lengths).distances()


def bfs_order(table: EdgeTable, source: int) -> np.ndarray:
    """Breadth-first visit order from ``source`` (unweighted).

    Each level expands as one array operation: the frontier's CSR slices
    are concatenated, already-seen nodes are mask-filtered, and
    first-occurrence dedup (``np.unique`` on indices) preserves the same
    discovery order the per-node Python loop produced.
    """
    graph = Graph(table)
    indptr, nbrs = graph.indptr, graph.neighbors
    seen = np.zeros(table.n_nodes, dtype=bool)
    seen[source] = True
    order = [np.array([source], dtype=np.int64)]
    frontier = order[0]
    while frontier.size:
        candidates = nbrs[concat_csr_slices(indptr, frontier)]
        candidates = candidates[~seen[candidates]]
        _, first = np.unique(candidates, return_index=True)
        frontier = candidates[np.sort(first)]
        if not frontier.size:
            break
        seen[frontier] = True
        order.append(frontier)
    return np.concatenate(order)
