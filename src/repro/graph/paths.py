"""Shortest paths and shortest-path trees.

The High-Salience Skeleton (paper Section III-B) superposes, over all
roots, the shortest-path tree computed on *effective proximities*: strong
edges are short. We follow the HSS convention of using ``1 / weight`` as
edge length.

The implementation is a binary-heap Dijkstra over the CSR ``Graph`` view.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from .edge_table import EdgeTable
from .graph import Graph

_UNREACHED = -1


def dijkstra(graph: Graph, source: int,
             lengths: Optional[np.ndarray] = None
             ) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths.

    Parameters
    ----------
    graph:
        CSR adjacency. For undirected tables arcs exist in both
        directions already.
    source:
        Root node index.
    lengths:
        Optional per-arc lengths aligned with ``graph.weights``. Defaults
        to ``1 / weight`` (the HSS effective proximity). Arcs with zero
        weight are treated as unusable.

    Returns
    -------
    (dist, pred):
        ``dist[v]`` is the shortest distance from ``source`` (``inf`` when
        unreachable); ``pred[v]`` is the predecessor of ``v`` on a shortest
        path (``-1`` for the source and unreachable nodes).
    """
    if not 0 <= source < graph.n_nodes:
        raise ValueError(f"source {source} out of range")
    if lengths is None:
        with np.errstate(divide="ignore"):
            lengths = np.where(graph.weights > 0, 1.0 / graph.weights,
                               np.inf)
    else:
        lengths = np.asarray(lengths, dtype=np.float64)
        if len(lengths) != graph.m:
            raise ValueError("lengths must have one entry per arc")
        if lengths.size and lengths.min() < 0:
            raise ValueError("Dijkstra requires non-negative lengths")

    dist = np.full(graph.n_nodes, np.inf)
    pred = np.full(graph.n_nodes, _UNREACHED, dtype=np.int64)
    dist[source] = 0.0
    done = np.zeros(graph.n_nodes, dtype=bool)
    heap: List[Tuple[float, int]] = [(0.0, source)]
    indptr, nbrs = graph.indptr, graph.neighbors
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for idx in range(indptr[u], indptr[u + 1]):
            v = nbrs[idx]
            length = lengths[idx]
            if not np.isfinite(length):
                continue
            candidate = d + length
            if candidate < dist[v]:
                dist[v] = candidate
                pred[v] = u
                heapq.heappush(heap, (candidate, int(v)))
    return dist, pred


def shortest_path_tree(graph: Graph, source: int,
                       lengths: Optional[np.ndarray] = None
                       ) -> List[Tuple[int, int]]:
    """Edges ``(pred[v], v)`` of the shortest-path tree rooted at ``source``.

    Ties between equal-length paths are resolved by Dijkstra's settle
    order, giving one deterministic tree per root — the same convention as
    the reference HSS implementation.
    """
    _, pred = dijkstra(graph, source, lengths=lengths)
    return [(int(p), int(v)) for v, p in enumerate(pred) if p != _UNREACHED]


def all_pairs_distances(graph: Graph,
                        lengths: Optional[np.ndarray] = None) -> np.ndarray:
    """Dense matrix of shortest distances between all node pairs."""
    out = np.empty((graph.n_nodes, graph.n_nodes), dtype=np.float64)
    for source in range(graph.n_nodes):
        dist, _ = dijkstra(graph, source, lengths=lengths)
        out[source] = dist
    return out


def bfs_order(table: EdgeTable, source: int) -> np.ndarray:
    """Breadth-first visit order from ``source`` (unweighted)."""
    graph = Graph(table)
    seen = np.zeros(table.n_nodes, dtype=bool)
    seen[source] = True
    order = [source]
    frontier = [source]
    while frontier:
        nxt: List[int] = []
        for node in frontier:
            nbrs, _ = graph.neighbors_of(node)
            for v in nbrs.tolist():
                if not seen[v]:
                    seen[v] = True
                    order.append(v)
                    nxt.append(v)
        frontier = nxt
    return np.asarray(order, dtype=np.int64)
