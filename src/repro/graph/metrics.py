"""Descriptive graph metrics used throughout the evaluation harness."""

from __future__ import annotations

from typing import Dict

import numpy as np

from .edge_table import EdgeTable
from .graph import Graph, concat_csr_slices


def density(table: EdgeTable) -> float:
    """Fraction of possible (non-loop) edges that are present."""
    n = table.n_nodes
    if n < 2:
        return 0.0
    present = len(table.without_self_loops())
    possible = n * (n - 1)
    if not table.directed:
        possible //= 2
    return present / possible


def average_degree(table: EdgeTable) -> float:
    """Mean number of incident edges per node."""
    if table.n_nodes == 0:
        return 0.0
    return float(table.degree().mean())


def degree_histogram(table: EdgeTable) -> np.ndarray:
    """Counts of nodes by degree, ``hist[d]`` = number of nodes of degree d."""
    degrees = table.degree()
    if len(degrees) == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)


def jaccard_edge_similarity(a: EdgeTable, b: EdgeTable) -> float:
    """Jaccard coefficient between two edge sets (paper Section V-A).

    Both tables are compared on unordered node pairs when either is
    undirected, so a directed backbone can be scored against an undirected
    ground truth.
    """
    directed = a.directed and b.directed
    keys_a = _pair_set(a, directed)
    keys_b = _pair_set(b, directed)
    if not keys_a and not keys_b:
        return 1.0
    union = len(keys_a | keys_b)
    if union == 0:
        return 1.0
    return len(keys_a & keys_b) / union


def _pair_set(table: EdgeTable, directed: bool) -> frozenset:
    if directed:
        return table.edge_key_set()
    lo = np.minimum(table.src, table.dst)
    hi = np.maximum(table.src, table.dst)
    return frozenset(zip(lo.tolist(), hi.tolist()))


def clustering_coefficient(table: EdgeTable) -> np.ndarray:
    """Local (unweighted) clustering coefficient per node.

    Computed on the undirected simple graph underlying ``table``. Nodes of
    degree < 2 get coefficient 0.
    """
    simple = table.symmetrized("max").without_self_loops() if table.directed \
        else table.without_self_loops()
    graph = Graph(simple)
    indptr, nbrs = graph.indptr, graph.neighbors
    degree = np.diff(indptr)
    out = np.zeros(simple.n_nodes, dtype=np.float64)
    member = np.zeros(simple.n_nodes, dtype=bool)
    for v in np.flatnonzero(degree >= 2):
        neighborhood = nbrs[indptr[v]:indptr[v + 1]]
        member[neighborhood] = True
        # Count, over every neighbor u, how many of u's neighbors fall
        # inside v's neighborhood — one membership-mask gather over the
        # concatenated CSR slices instead of a Python pair loop.
        two_hop = nbrs[concat_csr_slices(indptr, neighborhood)]
        links = int(member[two_hop].sum())
        k = len(neighborhood)
        out[v] = links / (k * (k - 1))
        member[neighborhood] = False
    return out


def average_clustering(table: EdgeTable) -> float:
    """Mean local clustering coefficient over all nodes."""
    coefficients = clustering_coefficient(table)
    if len(coefficients) == 0:
        return 0.0
    return float(coefficients.mean())


def neighbor_weight_profile(table: EdgeTable) -> Dict[str, np.ndarray]:
    """Edge weight vs. average weight of adjacent edges (paper Fig. 6).

    For every edge ``(i, j)`` with weight ``w``, computes the mean weight
    of all *other* edges incident to ``i`` or ``j``. Returns a dict with
    aligned arrays ``weight`` and ``neighbor_avg`` (edges whose endpoints
    have no other incident edge are dropped).
    """
    strength = table.strength()
    degree = table.degree()
    s_pair = strength[table.src] + strength[table.dst]
    d_pair = degree[table.src] + degree[table.dst]
    # Each endpoint's strength counts the edge itself once, so remove both.
    other_weight = s_pair - 2.0 * table.weight
    other_count = d_pair - 2
    keep = other_count > 0
    return {
        "weight": table.weight[keep].copy(),
        "neighbor_avg": other_weight[keep] / other_count[keep],
    }
