"""Graph substrate: columnar edge tables, adjacency views and algorithms."""

from .components import (component_sizes, connected_components,
                         giant_component_mask, is_connected)
from .edge_table import EdgeTable, coalesce_edges
from .graph import Graph
from .ingest import (EdgeTableBuilder, detect_format, read_edge_npz,
                     read_edges, write_edge_npz, write_edges)
from .io import read_edge_csv, write_edge_csv
from .metrics import (average_clustering, average_degree,
                      clustering_coefficient, degree_histogram, density,
                      jaccard_edge_similarity, neighbor_weight_profile)
from .paths import (all_pairs_distances, bfs_order, dijkstra,
                    dijkstra_reference, shortest_path_tree)
from .sp_engine import (ShortestPathEngine, ShortestPathForest,
                        effective_lengths)
from .subgraph import (Subgraph, giant_component_subgraph,
                       induced_subgraph, non_isolated_subgraph)
from .union_find import UnionFind
from .weighted_metrics import (average_weighted_clustering,
                               degree_assortativity, reciprocity,
                               weight_assortativity,
                               weighted_clustering_coefficient)

__all__ = [
    "EdgeTable",
    "EdgeTableBuilder",
    "Graph",
    "ShortestPathEngine",
    "ShortestPathForest",
    "Subgraph",
    "UnionFind",
    "average_weighted_clustering",
    "degree_assortativity",
    "giant_component_subgraph",
    "induced_subgraph",
    "non_isolated_subgraph",
    "reciprocity",
    "weight_assortativity",
    "weighted_clustering_coefficient",
    "all_pairs_distances",
    "average_clustering",
    "average_degree",
    "bfs_order",
    "clustering_coefficient",
    "coalesce_edges",
    "component_sizes",
    "connected_components",
    "degree_histogram",
    "density",
    "detect_format",
    "dijkstra",
    "dijkstra_reference",
    "effective_lengths",
    "giant_component_mask",
    "is_connected",
    "jaccard_edge_similarity",
    "neighbor_weight_profile",
    "read_edge_csv",
    "read_edge_npz",
    "read_edges",
    "shortest_path_tree",
    "write_edge_csv",
    "write_edge_npz",
    "write_edges",
]
