"""Chunked, vectorized edge ingestion and binary edge-table formats.

The paper's scalability claim (Section V-G) needs million-edge tables
to *enter* the library as fast as they are scored. This module is the
ingestion layer behind :mod:`repro.graph.io`:

* :class:`EdgeTableBuilder` — accumulate ``(src, dst, weight)`` array
  chunks from any streaming source and build one canonical
  :class:`~repro.graph.edge_table.EdgeTable` at the end: one
  vectorized label-interning pass (first-seen order, matching the
  historical row loop) and one final coalesce instead of per-row
  bookkeeping.
* :func:`read_edges` / :func:`write_edges` — format-dispatching IO
  over ``.csv``, ``.csv.gz`` and ``.npz`` (see :func:`detect_format`).
* a chunked CSV reader that parses fixed-size text blocks with numpy
  field splitting instead of per-row Python, falling back tier by
  tier only when a block needs it:

  1. **byte-level fast path** — newline/delimiter positions via
     ``np.flatnonzero``, digit-run endpoints and integer weights
     parsed by a vectorized place-value gather, decimal weights
     handed as one buffer to numpy's C float parser;
  2. **token path** — ``np.loadtxt``'s C tokenizer over the block for
     labeled endpoints or exotic numbers;
  3. **row path** — the ``csv`` module, byte-compatible with the
     historical reader (quoting, odd field counts) and the tier that
     raises precise errors naming the file and 1-based line number.

  Blocks decide independently; the builder defers the integer-vs-
  label decision to the end of the file exactly like the historical
  whole-file reader did.
* :func:`read_edge_npz` / :func:`write_edge_npz` — a binary edge-table
  format that round-trips ``src``/``dst``/``weight``/``n_nodes``/
  ``directed``/``labels`` exactly and loads via ``np.load`` straight
  into the columnar arrays, with no text parsing at all.

Parity contract: for every file the historical
:func:`repro.graph.io.read_edge_csv` could read, :func:`read_edges`
produces a bit-identical ``EdgeTable`` (same arrays, labels, node
count) — the one deliberate improvement is that malformed rows raise
a ``ValueError`` naming the file and line instead of a bare
``IndexError``/``ValueError``. The fast integer tier only accepts
*canonical* spellings (so a ``"007"`` token always survives as a
label if any part of the file turns out to be labeled), and the first
quote character demotes the rest of the stream to the csv module, so
quoted fields spanning newlines and block boundaries parse exactly as
before.
"""

from __future__ import annotations

import csv
import gzip
import io
import warnings
import zipfile
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs.trace import add_attributes, span
from .edge_table import EdgeTable

PathLike = Union[str, Path]

#: Size of the text blocks the chunked CSV reader parses at a time.
DEFAULT_BLOCK_BYTES = 4 << 20

#: Version tag stored inside every ``.npz`` edge table.
NPZ_FORMAT_VERSION = 1

_NPZ_REQUIRED = ("src", "dst", "weight", "n_nodes", "directed")

#: ``np.fromstring`` (text mode) is deprecated but is by far the
#: fastest route from a byte run to parsed doubles; when a future
#: numpy drops it, the token tier takes over transparently.
_HAVE_FROMSTRING = hasattr(np, "fromstring")


# ----------------------------------------------------------------------
# Format dispatch
# ----------------------------------------------------------------------

def detect_format(path: PathLike) -> str:
    """``"npz"`` for ``*.npz`` paths, ``"csv"`` for everything else
    (``.gz`` compression is orthogonal and handled transparently)."""
    return "npz" if Path(path).name.lower().endswith(".npz") else "csv"


def read_edges(path: PathLike, directed: bool = True,
               delimiter: str = ",",
               labels: Optional[Sequence[str]] = None,
               format: Optional[str] = None,
               block_bytes: int = DEFAULT_BLOCK_BYTES) -> EdgeTable:
    """Read an edge table from ``path``, dispatching on format.

    ``format`` defaults to :func:`detect_format`. For CSV input,
    ``directed``, ``delimiter`` and ``labels`` behave exactly like the
    historical :func:`repro.graph.io.read_edge_csv`. ``.npz`` input is
    self-describing: the stored directedness and labels win and the
    CSV-only arguments are ignored.
    """
    fmt = format or detect_format(path)
    with span("ingest.parse", path=str(path), format=fmt) as parse:
        if fmt == "npz":
            table = read_edge_npz(path)
        elif fmt == "csv":
            table = _read_csv_table(path, directed=directed,
                                    delimiter=delimiter, labels=labels,
                                    block_bytes=block_bytes)
        else:
            raise ValueError(f"unknown edge-table format {fmt!r} "
                             "(expected 'csv' or 'npz')")
        if parse is not None:
            parse.attributes["rows"] = int(table.m)
        return table


def write_edges(table: EdgeTable, path: PathLike, delimiter: str = ",",
                format: Optional[str] = None) -> None:
    """Write ``table`` to ``path``, dispatching on format.

    CSV output (``.gz``-compressed when the suffix says so) matches
    the historical writer record for record; ``.npz`` output
    round-trips the table exactly (see :func:`write_edge_npz`).
    """
    fmt = format or detect_format(path)
    if fmt == "npz":
        write_edge_npz(table, path)
        return
    if fmt != "csv":
        raise ValueError(f"unknown edge-table format {fmt!r} "
                         "(expected 'csv' or 'npz')")
    _write_csv_table(table, path, delimiter=delimiter)


# ----------------------------------------------------------------------
# Binary .npz edge tables
# ----------------------------------------------------------------------

def write_edge_npz(table: EdgeTable, path: PathLike) -> None:
    """Write ``table`` as an ``.npz`` archive of its columnar arrays.

    The archive stores ``src``/``dst``/``weight`` plus the scalars
    ``n_nodes`` and ``directed`` and, when present, the ``labels``
    vector — everything :func:`read_edge_npz` needs to reconstruct
    the table bit for bit (including node counts larger than the
    largest index, which CSV cannot represent).
    """
    arrays = {
        "format": np.array(NPZ_FORMAT_VERSION, dtype=np.int64),
        "src": np.ascontiguousarray(table.src, dtype=np.int64),
        "dst": np.ascontiguousarray(table.dst, dtype=np.int64),
        "weight": np.ascontiguousarray(table.weight, dtype=np.float64),
        "n_nodes": np.array(table.n_nodes, dtype=np.int64),
        "directed": np.array(table.directed, dtype=np.bool_),
    }
    if table.labels is not None:
        arrays["labels"] = np.array(table.labels, dtype=np.str_)
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


def read_edge_npz(path: PathLike) -> EdgeTable:
    """Load an ``.npz`` edge table written by :func:`write_edge_npz`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as payload:
            present = set(payload.files)
            missing = [key for key in _NPZ_REQUIRED if key not in present]
            if missing:
                raise ValueError(
                    f"{path} is not a repro edge table: missing "
                    f"arrays {', '.join(missing)}")
            src = payload["src"]
            dst = payload["dst"]
            weight = payload["weight"]
            n_nodes = int(payload["n_nodes"])
            directed = bool(payload["directed"])
            labels = payload["labels"].tolist() \
                if "labels" in present else None
    except (zipfile.BadZipFile, OSError, KeyError) as error:
        raise ValueError(
            f"{path} is not an .npz edge table: {error}") from error
    return EdgeTable.from_arrays(src, dst, weight, n_nodes=n_nodes,
                                 directed=directed, labels=labels)


# ----------------------------------------------------------------------
# EdgeTableBuilder
# ----------------------------------------------------------------------

class EdgeTableBuilder:
    """Accumulate edge chunks, then build one canonical ``EdgeTable``.

    Feed :meth:`append` with aligned ``(src, dst, weight)`` arrays —
    integer index arrays, or string arrays of node labels — as they
    arrive from a streaming source. :meth:`build` then runs the whole
    pipeline once: vectorized label interning in first-seen order
    (src before dst within each row, rows in append order, matching
    the historical per-row reader), one concatenation, and one
    canonicalize-and-coalesce pass.

    String chunks whose every token parses as an integer are
    interpreted as integer node indices — the same rule the CSV
    reader has always applied — unless an explicit ``labels``
    vocabulary is given, in which case every token is looked up in it
    and unknown labels raise ``ValueError``.

    Parameters
    ----------
    directed:
        Directedness of the built table.
    n_nodes:
        Optional node count (defaults to ``max index + 1``; implied
        by ``labels`` when those are given).
    labels:
        Optional fixed label vocabulary, ``label -> position``.
    """

    def __init__(self, directed: bool = True,
                 n_nodes: Optional[int] = None,
                 labels: Optional[Sequence[str]] = None):
        self.directed = bool(directed)
        self._n_nodes = n_nodes
        self._labels = None if labels is None \
            else tuple(str(label) for label in labels)
        self._srcs: List[np.ndarray] = []
        self._dsts: List[np.ndarray] = []
        self._weights: List[np.ndarray] = []
        self._any_tokens = False
        self._rows = 0

    def __len__(self) -> int:
        """Number of rows appended so far (before coalescing)."""
        return self._rows

    def append(self, src, dst, weight) -> "EdgeTableBuilder":
        """Append one chunk of edges; returns ``self`` for chaining."""
        src = _as_endpoint_chunk(src, "src")
        dst = _as_endpoint_chunk(dst, "dst")
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 1:
            raise ValueError("weight chunk must be one-dimensional, "
                             f"got shape {weight.shape}")
        if not len(src) == len(dst) == len(weight):
            raise ValueError(
                f"chunk arrays must have equal lengths, got "
                f"src={len(src)}, dst={len(dst)}, weight={len(weight)}")
        if (src.dtype.kind == "U") != (dst.dtype.kind == "U"):
            raise ValueError("src and dst chunks must both be index "
                             "arrays or both be label arrays")
        if len(src) == 0:
            return self
        if src.dtype.kind == "U":
            self._any_tokens = True
        self._srcs.append(src)
        self._dsts.append(dst)
        self._weights.append(weight)
        self._rows += len(src)
        return self

    def build(self) -> EdgeTable:
        """Intern, concatenate and coalesce everything appended."""
        if self._rows == 0:
            n_nodes = len(self._labels) if self._labels is not None \
                else self._n_nodes
            return EdgeTable((), (), (), n_nodes=n_nodes,
                             directed=self.directed, labels=self._labels)
        weight = _concat(self._weights)
        if not self._any_tokens:
            n_nodes = self._n_nodes
            if self._labels is not None:
                n_nodes = len(self._labels)
            return EdgeTable.from_arrays(
                _concat(self._srcs), _concat(self._dsts), weight,
                n_nodes=n_nodes, directed=self.directed,
                labels=self._labels)
        src_tok = _concat_tokens(self._srcs)
        dst_tok = _concat_tokens(self._dsts)
        if self._labels is not None:
            src_idx = _map_tokens(src_tok, self._labels)
            dst_idx = _map_tokens(dst_tok, self._labels)
            return EdgeTable.from_arrays(
                src_idx, dst_idx, weight, n_nodes=len(self._labels),
                directed=self.directed, labels=self._labels)
        try:
            src_idx = src_tok.astype(np.int64)
            dst_idx = dst_tok.astype(np.int64)
        except (ValueError, OverflowError):
            src_idx = dst_idx = None
        if src_idx is not None:
            return EdgeTable.from_arrays(src_idx, dst_idx, weight,
                                         n_nodes=self._n_nodes,
                                         directed=self.directed)
        src_idx, dst_idx, labels = _intern_first_seen(src_tok, dst_tok)
        return EdgeTable.from_arrays(src_idx, dst_idx, weight,
                                     n_nodes=len(labels),
                                     directed=self.directed,
                                     labels=labels)


def _as_endpoint_chunk(values, name: str) -> np.ndarray:
    """Normalize an endpoint chunk to an int64 or unicode array."""
    array = np.asarray(values)
    if array.ndim != 1:
        raise ValueError(f"{name} chunk must be one-dimensional, "
                         f"got shape {array.shape}")
    kind = array.dtype.kind
    if kind in "iu":
        return array.astype(np.int64, copy=False)
    if kind == "U":
        return array
    if kind == "S":
        return np.char.decode(array, "utf-8")
    if kind == "O":
        return array.astype(np.str_)
    raise ValueError(f"{name} chunk has unsupported dtype "
                     f"{array.dtype}; expected integer indices or "
                     "string labels")


def _concat(chunks: List[np.ndarray]) -> np.ndarray:
    return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)


def _concat_tokens(chunks: List[np.ndarray]) -> np.ndarray:
    """Concatenate endpoint chunks as text (index chunks re-spelled)."""
    parts = [chunk if chunk.dtype.kind == "U" else chunk.astype(np.str_)
             for chunk in chunks]
    return _concat(parts)


def _intern_first_seen(src_tok: np.ndarray, dst_tok: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray, Tuple[str, ...]]:
    """Map token arrays to dense ids in first-seen order.

    "First seen" interleaves src before dst within each row — the
    exact order the historical row loop assigned ids in.
    """
    m = len(src_tok)
    joint = np.empty(2 * m,
                     dtype=np.promote_types(src_tok.dtype, dst_tok.dtype))
    joint[0::2] = src_tok
    joint[1::2] = dst_tok
    uniq, first, inverse = np.unique(joint, return_index=True,
                                     return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq))
    ids = rank[inverse]
    labels = tuple(uniq[order].tolist())
    return ids[0::2], ids[1::2], labels


def _map_tokens(tokens: np.ndarray, labels: Sequence[str]) -> np.ndarray:
    """Map tokens through a fixed label vocabulary (vectorized)."""
    index = {label: i for i, label in enumerate(labels)}
    uniq, inverse = np.unique(tokens, return_inverse=True)
    ids = np.empty(len(uniq), dtype=np.int64)
    for i, token in enumerate(uniq.tolist()):
        found = index.get(token)
        if found is None:
            raise ValueError(f"unknown node label {token!r}: not in "
                             "the provided labels")
        ids[i] = found
    return ids[inverse]


# ----------------------------------------------------------------------
# Chunked CSV reading
# ----------------------------------------------------------------------

def _open_binary(path: Path):
    if path.name.lower().endswith(".gz"):
        return gzip.open(path, "rb")
    return open(path, "rb")


def stream_csv_chunks(path: PathLike, sink, delimiter: str = ",",
                      force_tokens: bool = False,
                      block_bytes: int = DEFAULT_BLOCK_BYTES) -> bool:
    """Drive the chunked CSV parser, pushing parsed chunks into ``sink``.

    ``sink`` is anything with an ``append(src, dst, weight)`` method
    taking aligned arrays — an :class:`EdgeTableBuilder`, or a spill
    writer in :mod:`repro.stream` that never holds the whole table.
    Chunks arrive in file order; endpoint chunks are int64 index arrays
    or unicode token arrays exactly as the parser tiers produced them
    (the integer-vs-label decision stays with the sink, like the
    historical whole-file reader). Returns ``True`` when a header line
    was seen (i.e. the file was not completely empty).
    """
    path = Path(path)
    if len(delimiter) != 1:
        raise TypeError("delimiter must be a 1-character string")
    state = _ReaderState(sink, delimiter, path, force_tokens)
    blocks = 0
    with _open_binary(path) as handle:
        remainder = b""
        while True:
            chunk = handle.read(block_bytes)
            if not chunk:
                break
            blocks += 1
            chunk = remainder + chunk
            cut = chunk.rfind(b"\n")
            if cut < 0:
                remainder = chunk
                continue
            block, remainder = chunk[:cut + 1], chunk[cut + 1:]
            if b'"' in block:
                # Quoted fields can span newlines (and therefore block
                # boundaries), so newline-based chunking is unsound
                # from here on: hand the rest of the stream to the csv
                # module in one pass.
                # repro: ignore[RPA005] quoted fields can span any
                # number of blocks; the csv fallback genuinely needs
                # the whole remainder (documented O(file) escape path)
                state.consume_quoted(block + remainder + handle.read())
                remainder = b""
                break
            state.consume(block)
        if remainder:
            if b'"' in remainder:
                state.consume_quoted(remainder)
            else:
                state.consume(remainder + b"\n")
    add_attributes(blocks=blocks)
    return state.saw_header


def _read_csv_table(path: PathLike, directed: bool, delimiter: str,
                    labels: Optional[Sequence[str]],
                    block_bytes: int) -> EdgeTable:
    builder = EdgeTableBuilder(directed=directed, labels=labels)
    # An explicit vocabulary means every token is a label lookup (the
    # historical semantics), so the integer fast path must not run.
    saw_header = stream_csv_chunks(path, builder, delimiter=delimiter,
                                   force_tokens=labels is not None,
                                   block_bytes=block_bytes)
    if not saw_header:
        # A completely empty file: the historical reader returned an
        # unlabeled empty table here regardless of ``labels``.
        return EdgeTable((), (), (), directed=directed)
    return builder.build()


class _ReaderState:
    """Header accounting and per-block dispatch for the CSV reader."""

    def __init__(self, sink, delimiter: str,
                 path: Path, force_tokens: bool):
        self.sink = sink
        self.delimiter = delimiter
        self.path = path
        self.force_tokens = force_tokens
        self.saw_header = False
        self.line_no = 0

    def consume(self, block: bytes) -> None:
        """Parse one quote-free, newline-terminated block."""
        block = block.replace(b"\r\n", b"\n")
        if b"\r" in block:
            # Bare carriage returns (old-Mac rows): the csv module
            # treats them as row terminators; so do we.
            block = block.replace(b"\r", b"\n")
        if not self.saw_header:
            block = block[block.find(b"\n") + 1:]
            self.saw_header = True
            self.line_no += 1
        if not block:
            return
        first_line = self.line_no + 1
        self.line_no += block.count(b"\n")
        self._parse_block(block, first_line)

    def consume_quoted(self, tail: bytes) -> None:
        """csv-module pass over everything from the first quote on."""
        self.sink.append(*_parse_rows(
            tail, self.delimiter, self.path, self.line_no + 1,
            skip_header=not self.saw_header))
        self.saw_header = True

    def _parse_block(self, block: bytes, first_line: int) -> None:
        """Escalate one block tier by tier."""
        if ord(self.delimiter) > 127:
            # Non-ASCII delimiters span several bytes in UTF-8; the
            # byte-level tiers cannot see them.
            self.sink.append(*_parse_rows(block, self.delimiter,
                                          self.path, first_line))
            return
        if not self.force_tokens:
            data = np.frombuffer(block, dtype=np.uint8)
            fast = _parse_block_fast(data, ord(self.delimiter))
            if fast is not None:
                self.sink.append(*fast)
                return
        tokens = _parse_block_tokens(block, self.delimiter)
        if tokens is None:
            tokens = _parse_rows(block, self.delimiter, self.path,
                                 first_line)
        self.sink.append(*tokens)


def _parse_block_fast(data: np.ndarray, delim: int
                      ) -> Optional[Tuple[np.ndarray, np.ndarray,
                                          np.ndarray]]:
    """Tier 1: pure array-ops parse of ``int,int,number`` lines.

    Returns ``None`` whenever the block doesn't match that shape
    (labels, signs, whitespace, missing fields, 16+-digit indices) —
    the caller escalates to the token tier.
    """
    newlines = np.flatnonzero(data == 10)
    seps = np.flatnonzero(data == delim)
    n_lines = len(newlines)
    starts = np.empty(n_lines, dtype=np.int64)
    starts[0] = 0
    starts[1:] = newlines[:-1] + 1
    bounds = _field_bounds(starts, newlines, seps)
    if bounds is None:
        return None
    starts, ends, c1, c2, weight_end = bounds
    if len(starts) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    endpoints = _parse_int_runs(
        data, np.concatenate([starts, c1 + 1]), np.concatenate([c1, c2]))
    if endpoints is None:
        return None
    src, dst = np.split(endpoints, 2)
    as_int = _parse_int_runs(data, c2 + 1, weight_end)
    if as_int is not None:
        return src, dst, as_int.astype(np.float64)
    weight = _parse_float_fields(data, c2 + 1, weight_end)
    if weight is None:
        return None
    return src, dst, weight


def _field_bounds(starts: np.ndarray, newlines: np.ndarray,
                  seps: np.ndarray) -> Optional[Tuple[np.ndarray, ...]]:
    """Per-line field boundaries ``(starts, ends, c1, c2, weight_end)``.

    The overwhelmingly common layout — no blank lines, exactly two
    separators per line — is validated with three elementwise
    comparisons on strided views. Anything else (blank lines, extra
    fields) goes through a ``searchsorted`` per-line account; rows
    with fewer than two separators return ``None``.
    """
    n_lines = len(newlines)
    if len(seps) == 2 * n_lines:
        c1 = seps[0::2]
        c2 = seps[1::2]
        if np.all(c1 > starts) and np.all(c1 < c2) \
                and np.all(c2 < newlines):
            return starts, newlines, c1, c2, newlines
    nonblank = newlines > starts
    starts = starts[nonblank]
    ends = newlines[nonblank]
    if len(starts) == 0:
        return starts, ends, starts, starts, ends
    first_sep = np.searchsorted(seps, starts)
    counts = np.searchsorted(seps, ends) - first_sep
    if counts.min() < 2:
        return None
    c1 = seps[first_sep]
    c2 = seps[first_sep + 1]
    # Fields past the third are ignored, like the historical reader.
    weight_end = ends.copy()
    extra = counts > 2
    if extra.any():
        weight_end[extra] = seps[first_sep[extra] + 2]
    return starts, ends, c1, c2, weight_end


# SWAR constants: eight ASCII digits packed in one little-endian
# uint64 (most significant digit in the lowest byte) collapse to their
# numeric value with three multiply-shift-mask rounds.
_ASCII_ZEROS = np.uint64(0x3030303030303030)
_NIBBLES = np.uint64(0x0F0F0F0F0F0F0F0F)
_PAIR_MASK = np.uint64(0x00FF00FF00FF00FF)
_QUAD_MASK = np.uint64(0x0000FFFF0000FFFF)
_PAIR_MUL = np.uint64(2561)            # 10 * 2**8 + 1
_QUAD_MUL = np.uint64(6553601)         # 100 * 2**16 + 1
_FULL_MUL = np.uint64(42949672960001)  # 10000 * 2**32 + 1
_DIGIT_PROBE = np.uint64(0x7676767676767676)  # +0x76 flags bytes > 9
_HIGH_BITS = np.uint64(0x8080808080808080)
_SHIFT_8 = np.uint64(8)
_SHIFT_16 = np.uint64(16)
_SHIFT_32 = np.uint64(32)
#: keep-mask by field width: the trailing ``width`` bytes of the lane.
_WIDTH_KEEP = np.array(
    [0] + [(0xFFFFFFFFFFFFFFFF << (8 * (8 - width)))
           & 0xFFFFFFFFFFFFFFFF for width in range(1, 9)],
    dtype=np.uint64)


def _parse_int_runs(data: np.ndarray, starts: np.ndarray,
                    ends: np.ndarray) -> Optional[np.ndarray]:
    """Parse ``[start, end)`` byte runs as base-10 integers.

    Runs of at most 8 digits (the common case: node ids and count
    weights) are parsed as uint64 lanes — one 8-byte sliding-window
    gather per run, then three SWAR rounds for the whole block at
    once. Longer runs up to 15 digits take a place-value digit
    matrix. ``None`` when any run is empty, longer than 15 digits,
    contains a non-digit byte, or is a *non-canonical* spelling
    (leading zeros, e.g. ``007``) — the last so that an integer
    accepted here can always be re-spelled exactly, should a later
    block reveal the file to be labeled.
    """
    widths = ends - starts
    if len(widths) == 0:
        return np.empty(0, dtype=np.int64)
    if widths.min() < 1:
        return None
    max_width = int(widths.max())
    if max_width > 15:
        return None
    if max_width > 8:
        return _parse_digit_matrix(data, starts, ends, max_width)
    padded = np.concatenate([np.full(8, 0x30, dtype=np.uint8), data])
    windows = np.lib.stride_tricks.sliding_window_view(padded, 8)
    lanes = windows[ends].view("<u8").ravel()
    lanes = (lanes ^ _ASCII_ZEROS) & _WIDTH_KEEP[widths]
    if (((lanes | (lanes + _DIGIT_PROBE)) & _HIGH_BITS)).any():
        return None
    shift = ((np.uint64(8) - widths.astype(np.uint64)) * _SHIFT_8)
    leading = (lanes >> shift) & np.uint64(0xFF)
    if ((leading == 0) & (widths > 1)).any():
        return None
    lanes = (lanes & _NIBBLES) * _PAIR_MUL >> _SHIFT_8
    lanes = (lanes & _PAIR_MASK) * _QUAD_MUL >> _SHIFT_16
    lanes = (lanes & _QUAD_MASK) * _FULL_MUL >> _SHIFT_32
    return lanes.view(np.int64)


def _parse_digit_matrix(data: np.ndarray, starts: np.ndarray,
                        ends: np.ndarray,
                        max_width: int) -> Optional[np.ndarray]:
    """Place-value fallback for 9-15 digit runs (exact in int64)."""
    positions = ends[:, None] - np.arange(max_width, 0, -1,
                                          dtype=np.int64)[None, :]
    valid = positions >= starts[:, None]
    digits = data[np.where(valid, positions, 0)].astype(np.int64) - 48
    digits = np.where(valid, digits, 0)
    if ((digits < 0) | (digits > 9)).any():
        return None
    widths = ends - starts
    leading = digits[np.arange(len(digits)), max_width - widths]
    if ((leading == 0) & (widths > 1)).any():
        return None  # non-canonical spelling; see _parse_int_runs
    place = 10 ** np.arange(max_width - 1, -1, -1, dtype=np.int64)
    return (digits * place).sum(axis=1)


def _parse_float_fields(data: np.ndarray, starts: np.ndarray,
                        ends: np.ndarray) -> Optional[np.ndarray]:
    """Parse ``[start, end)`` byte runs as doubles in one C call.

    The runs are gathered into a single newline-separated buffer and
    handed to numpy's text parser (exactly the rounding ``float()``
    applies). ``None`` when the parse doesn't consume every run.
    """
    if not _HAVE_FROMSTRING:
        return None
    widths = ends - starts
    if widths.min() < 1:
        return None
    slots = widths + 1
    boundaries = np.cumsum(slots)
    total = int(boundaries[-1])
    out = np.empty(total, dtype=np.uint8)
    sep_positions = boundaries - 1
    line_of = np.repeat(np.arange(len(starts), dtype=np.int64), slots)
    offsets = np.arange(total, dtype=np.int64) \
        - np.repeat(boundaries - slots, slots)
    out[:] = data[np.minimum(starts[line_of] + offsets, len(data) - 1)]
    out[sep_positions] = 10
    text = out.tobytes().decode("latin-1")
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            values = np.fromstring(text, dtype=np.float64, sep="\n")
    except ValueError:
        return None
    if len(values) != len(starts):
        return None
    return values


def _parse_block_tokens(block: bytes, delimiter: str
                        ) -> Optional[Tuple[np.ndarray, np.ndarray,
                                            np.ndarray]]:
    """Tier 2: ``np.loadtxt``'s C tokenizer over the decoded block.

    Used for labeled endpoints and numbers the fast path declined.
    ``np.loadtxt`` strips whitespace around fields, so blocks
    containing spaces or tabs fall through to the row tier, which
    preserves them exactly like the historical reader.
    """
    if b" " in block:
        return None
    if delimiter != "\t" and b"\t" in block:
        return None
    text = block.decode()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            # repro: ignore[RPA005] parses one already-bounded block
            # (never the file): input is an in-memory chunk capped by
            # the reader's block size
            array = np.loadtxt(io.StringIO(text), dtype=str,
                               delimiter=delimiter, comments=None,
                               ndmin=2)
    except ValueError:
        return None
    if array.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    if array.shape[1] < 3:
        return None
    try:
        weight = array[:, 2].astype(np.float64)
    except ValueError:
        return None
    return (np.ascontiguousarray(array[:, 0]),
            np.ascontiguousarray(array[:, 1]), weight)


def _parse_rows(block: bytes, delimiter: str, path: Path,
                first_line: int,
                skip_header: bool = False
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tier 3: the ``csv`` module, slow but authoritative.

    Handles quoting (including fields spanning newlines) and irregular
    rows exactly like the historical reader, and raises the module's
    diagnostic errors: malformed rows name the file and 1-based line
    number. ``skip_header`` drops the first record, mirroring the
    historical ``next(reader)``.
    """
    text = block.decode()
    src_tokens: List[str] = []
    dst_tokens: List[str] = []
    weights: List[float] = []
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    if skip_header:
        next(reader, None)
    for row in reader:
        if not row:
            continue
        line = first_line + reader.line_num - 1
        if len(row) < 3:
            raise ValueError(
                f"{path}: line {line}: expected 3 fields "
                f"(src, dst, weight), got {len(row)}")
        try:
            weight = float(row[2])
        except ValueError:
            raise ValueError(f"{path}: line {line}: invalid weight "
                             f"{row[2]!r}") from None
        src_tokens.append(row[0])
        dst_tokens.append(row[1])
        weights.append(weight)
    return (np.asarray(src_tokens, dtype=np.str_),
            np.asarray(dst_tokens, dtype=np.str_),
            np.asarray(weights, dtype=np.float64))


# ----------------------------------------------------------------------
# Vectorized CSV writing
# ----------------------------------------------------------------------

#: Rows formatted per output chunk (bounds transient memory).
_WRITE_CHUNK_ROWS = 1 << 16


def _open_text_write(path: Path):
    if path.name.lower().endswith(".gz"):
        return gzip.open(path, "wt", newline="")
    return open(path, "w", newline="")


def _write_csv_table(table: EdgeTable, path: PathLike,
                     delimiter: str) -> None:
    path = Path(path)
    if table.labels is not None and _labels_need_quoting(table.labels,
                                                         delimiter):
        _write_csv_quoted(table, path, delimiter)
        return
    label_text = None if table.labels is None \
        else np.asarray(table.labels, dtype=np.str_)
    with _open_text_write(path) as handle:
        handle.write(delimiter.join(("src", "dst", "weight")) + "\n")
        for start in range(0, table.m, _WRITE_CHUNK_ROWS):
            stop = min(start + _WRITE_CHUNK_ROWS, table.m)
            src = _endpoint_text(label_text, table.src[start:stop])
            dst = _endpoint_text(label_text, table.dst[start:stop])
            # float64 -> str uses the shortest round-trip spelling,
            # identical to repr() — weights survive exactly.
            weight = table.weight[start:stop].astype("U32")
            handle.write("\n".join(
                delimiter.join(row) for row in zip(
                    src.tolist(), dst.tolist(), weight.tolist())))
            handle.write("\n")


def _endpoint_text(label_text: Optional[np.ndarray],
                   indices: np.ndarray) -> np.ndarray:
    if label_text is None:
        return indices.astype(np.str_)
    return label_text[indices]


def _labels_need_quoting(labels: Sequence[str], delimiter: str) -> bool:
    specials = (delimiter, '"', "\n", "\r")
    return any(special in label for label in labels
               for special in specials)


def _write_csv_quoted(table: EdgeTable, path: Path,
                      delimiter: str) -> None:
    """Row-at-a-time writer for labels that need csv quoting."""
    with _open_text_write(path) as handle:
        writer = csv.writer(handle, delimiter=delimiter,
                            lineterminator="\n")
        writer.writerow(["src", "dst", "weight"])
        for u, v, w in table.iter_edges():
            writer.writerow([table.label_of(u), table.label_of(v),
                             repr(w)])


# ----------------------------------------------------------------------
# Historical reference reader (parity tests and benchmarks)
# ----------------------------------------------------------------------

def read_edge_csv_rows(path: PathLike, directed: bool = True,
                       delimiter: str = ",",
                       labels: Optional[Sequence[str]] = None
                       ) -> EdgeTable:
    """The pre-ingest row-loop reader, kept verbatim as the parity
    and benchmark reference. Do not use for new code — it is the slow
    path :func:`read_edges` replaced."""
    path = Path(path)
    rows = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header = next(reader, None)
        if header is None:
            return EdgeTable((), (), (), directed=directed)
        for row in reader:
            if not row:
                continue
            rows.append((row[0], row[1], float(row[2])))

    if labels is not None:
        index = {label: i for i, label in enumerate(labels)}
    else:
        index = {}
        if all(_is_int(u) and _is_int(v) for u, v, _ in rows):
            index = None
    if index is None:
        triples = [(int(u), int(v), w) for u, v, w in rows]
        return EdgeTable.from_pairs(triples, directed=directed)

    if labels is None:
        for u, v, _ in rows:
            for name in (u, v):
                if name not in index:
                    index[name] = len(index)
        labels = sorted(index, key=index.get)
    triples = [(index[u], index[v], w) for u, v, w in rows]
    return EdgeTable.from_pairs(triples, n_nodes=len(labels),
                                directed=directed, labels=labels)


def _is_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True
