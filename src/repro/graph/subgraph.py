"""Induced subgraphs and node relabeling.

Backbones keep the original node universe (indices stay comparable with
the input network); when a downstream analysis wants a compact graph —
e.g. community discovery on the non-isolated part only — these helpers
extract induced subgraphs with dense relabeling and remember the
mapping back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.validation import as_index_array, require
from .edge_table import EdgeTable


@dataclass(frozen=True)
class Subgraph:
    """An induced subgraph plus the mapping to original node ids."""

    table: EdgeTable
    original_ids: np.ndarray

    def to_original(self, node: int) -> int:
        """Original id of a subgraph node."""
        return int(self.original_ids[node])

    def lift_labels(self, labels: np.ndarray,
                    fill: int = -1) -> np.ndarray:
        """Scatter subgraph node labels back onto the original universe.

        Nodes outside the subgraph get ``fill``.
        """
        labels = as_index_array(labels, "labels")
        require(len(labels) == self.table.n_nodes,
                "labels must cover the subgraph's nodes")
        n_original = int(self.original_ids.max()) + 1 \
            if len(self.original_ids) else 0
        out = np.full(max(n_original, 1), fill, dtype=np.int64)
        out[self.original_ids] = labels
        return out


def induced_subgraph(table: EdgeTable, nodes) -> Subgraph:
    """Subgraph on ``nodes`` with dense relabeling.

    Edges with either endpoint outside ``nodes`` are dropped. The
    subgraph's node ``i`` corresponds to ``original_ids[i]`` in the
    input.
    """
    nodes = np.unique(as_index_array(nodes, "nodes"))
    if len(nodes):
        require(int(nodes.max()) < table.n_nodes,
                "nodes contains indices outside the table")
    remap = np.full(table.n_nodes, -1, dtype=np.int64)
    remap[nodes] = np.arange(len(nodes))
    keep = (remap[table.src] >= 0) & (remap[table.dst] >= 0)
    sub = EdgeTable(remap[table.src[keep]], remap[table.dst[keep]],
                    table.weight[keep], n_nodes=len(nodes),
                    directed=table.directed, coalesce=False)
    return Subgraph(table=sub, original_ids=nodes)


def non_isolated_subgraph(table: EdgeTable) -> Subgraph:
    """Induced subgraph on the nodes with at least one edge."""
    return induced_subgraph(table, np.flatnonzero(table.degree() > 0))


def giant_component_subgraph(table: EdgeTable) -> Subgraph:
    """Induced subgraph on the largest (weak) component."""
    from .components import giant_component_mask

    return induced_subgraph(table, np.flatnonzero(
        giant_component_mask(table)))
