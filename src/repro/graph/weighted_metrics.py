"""Weighted topology metrics beyond the basics.

The paper's Topology criterion argues backbones should preserve the
"substantive and topological characteristics" of the network. These
metrics — weighted clustering (Barrat et al. 2004, the paper's [3]),
degree assortativity and reciprocity — let users check exactly that on
their own backbones.
"""

from __future__ import annotations

import numpy as np

from ..stats.correlation import pearson
from .edge_table import EdgeTable
from .graph import Graph


def weighted_clustering_coefficient(table: EdgeTable) -> np.ndarray:
    """Barrat et al.'s weighted clustering coefficient per node.

    ``c_w(i) = 1/(s_i (k_i - 1)) * sum_{j,h} (w_ij + w_ih)/2 * a_ij a_ih a_jh``

    Directed tables are symmetrized by summing. Nodes of degree < 2 get
    coefficient 0.
    """
    simple = (table if not table.directed
              else table.symmetrized("sum")).without_self_loops()
    graph = Graph(simple)
    n = simple.n_nodes
    degree = simple.degree()
    strength = simple.strength()
    neighbor_sets = []
    weight_lookup = {}
    for node in range(n):
        nbrs, weights = graph.neighbors_of(node)
        neighbor_sets.append(set(nbrs.tolist()))
        for neighbor, weight in zip(nbrs.tolist(), weights.tolist()):
            weight_lookup[(node, neighbor)] = weight
    out = np.zeros(n, dtype=np.float64)
    for i in range(n):
        k = degree[i]
        if k < 2 or strength[i] <= 0:
            continue
        nbrs = sorted(neighbor_sets[i])
        total = 0.0
        for a_index, j in enumerate(nbrs):
            for h in nbrs[a_index + 1:]:
                if h in neighbor_sets[j]:
                    total += (weight_lookup[(i, j)]
                              + weight_lookup[(i, h)]) / 2.0
        # Barrat's sum runs over ordered neighbor pairs; the unordered
        # loop above needs the factor 2 (so unit weights reduce to the
        # ordinary clustering coefficient).
        out[i] = 2.0 * total / (strength[i] * (k - 1))
    return out


def average_weighted_clustering(table: EdgeTable) -> float:
    """Mean Barrat weighted clustering over all nodes."""
    values = weighted_clustering_coefficient(table)
    if len(values) == 0:
        return 0.0
    return float(values.mean())


def degree_assortativity(table: EdgeTable) -> float:
    """Pearson correlation of endpoint degrees over edges.

    For directed tables: correlation of source out-degree with target
    in-degree. Returns ``nan`` for degenerate (constant-degree)
    networks.
    """
    working = table.without_self_loops()
    if working.m < 2:
        return float("nan")
    if working.directed:
        x = working.out_degree()[working.src].astype(float)
        y = working.in_degree()[working.dst].astype(float)
        return pearson(x, y)
    degree = working.degree().astype(float)
    # Each undirected edge contributes both orientations.
    x = np.concatenate([degree[working.src], degree[working.dst]])
    y = np.concatenate([degree[working.dst], degree[working.src]])
    return pearson(x, y)


def reciprocity(table: EdgeTable) -> float:
    """Share of directed edges whose reverse edge also exists.

    Undirected tables are perfectly reciprocal by definition.
    """
    working = table.without_self_loops()
    if working.m == 0:
        return float("nan")
    if not working.directed:
        return 1.0
    keys = set(zip(working.src.tolist(), working.dst.tolist()))
    reciprocated = sum(1 for u, v in keys if (v, u) in keys)
    return reciprocated / len(keys)


def weight_assortativity(table: EdgeTable) -> float:
    """Pearson correlation of endpoint strengths over edges (log scale).

    A weighted analogue of degree assortativity; positive values mean
    heavy nodes connect to heavy nodes, the regime where naive
    thresholding is most misleading.
    """
    working = table.without_self_loops()
    if working.m < 2:
        return float("nan")
    s_out = working.out_strength()
    s_in = working.in_strength()
    x = np.log1p(s_out[working.src])
    y = np.log1p(s_in[working.dst])
    return pearson(x, y)
