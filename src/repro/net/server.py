"""``SocketKVServer`` — the score cache as a real separate process.

A small threaded TCP server speaking the :mod:`repro.net.protocol`
frame format and serving the same op set as the in-process
:class:`~repro.pipeline.backends.kv.InMemoryKVServer` (``get`` /
``peek`` / ``put`` / ``delete`` / ``contains`` / ``keys`` / ``index``
/ ``stats`` / ``ping``), with the same record shape — metadata +
payload + a server-side last-access stamp bumped on reads — so
:func:`~repro.pipeline.backends.base.run_gc` LRU policies work
unchanged against a networked store.

Run it in-process (tests, doctests)::

    with SocketKVServer() as server:
        store = ScoreStore(f"kv://127.0.0.1:{server.port}")

or as its own process (production shape, one warm cache shared by
many clients)::

    python -m repro.net.server --host 0.0.0.0 --port 7app

``--testing`` additionally enables the debug ops (``flush``,
``set_clock``, ``debug_set_payload``) that the backend parity suite
uses to manipulate the clock and corrupt stored payloads across the
process boundary; production servers reject them.
"""

from __future__ import annotations

import argparse
import os
import socketserver
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import get_registry
from .protocol import FrameError, decode_frame, encode_frame

_SERVER_REQUESTS = get_registry().counter(
    "repro_net_server_requests_total",
    "Requests served by SocketKVServer instances in this process.",
    labels=("op",))
_SERVER_CONNECTIONS = get_registry().counter(
    "repro_net_server_connections_total",
    "Client connections accepted by SocketKVServer instances.")

#: Ops that mutate server state out-of-band for tests only.
TESTING_OPS = ("flush", "set_clock", "debug_set_payload")


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a loop of request/response frames."""

    def handle(self) -> None:
        owner: "SocketKVServer" = self.server.owner
        _SERVER_CONNECTIONS.inc()
        while True:
            try:
                header, payload = decode_frame(self.rfile.read)
            except (EOFError, FrameError, OSError):
                return  # client went away (or spoke garbage): drop it
            response, body = owner.serve(header, payload)
            try:
                self.wfile.write(encode_frame(response, body))
                self.wfile.flush()
            except OSError:
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class SocketKVServer:
    """Threaded stdlib-socket KV server for score entries and objects.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks a free one (read ``.port``
        after start).
    testing:
        Enable the :data:`TESTING_OPS` debug ops. Never set this on
        a shared server: ``flush`` drops every entry.
    clock:
        Time source for last-access stamps (tests inject a frozen
        one; ``set_clock`` overrides it remotely under ``testing``).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 testing: bool = False, clock=time.time):
        self.host = host
        self.testing = bool(testing)
        self._clock = clock
        self._lock = threading.Lock()
        self.data: Dict[str, Dict[str, Any]] = {}
        self.requests: Dict[str, int] = {}
        self._started = time.monotonic()
        self._server = _TCPServer((host, port), _Handler,
                                  bind_and_activate=False)
        self._server.owner = self
        self._thread: Optional[threading.Thread] = None
        self._requested_port = port

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "SocketKVServer":
        self._server.server_bind()
        self._server.server_activate()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"repro-net-kv:{self.port}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SocketKVServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------

    def serve(self, header: Dict[str, Any],
              payload: bytes) -> Tuple[Dict[str, Any], bytes]:
        """Serve one decoded request; returns ``(header, payload)``.

        Never raises: protocol-level problems come back as
        ``{"ok": False, ...}`` responses so one bad request cannot
        take the connection (or the server) down.
        """
        op = header.get("op")
        _SERVER_REQUESTS.inc(op=str(op))
        with self._lock:
            self.requests[str(op)] = self.requests.get(str(op), 0) + 1
            try:
                return self._dispatch(op, header, payload)
            except _BadRequest as error:
                return {"ok": False, "kind": "bad-request",
                        "error": str(error)}, b""
            except Exception as error:  # pragma: no cover - safety net
                return {"ok": False, "kind": "transient",
                        "error": f"{type(error).__name__}: {error}"}, b""

    def _dispatch(self, op, header, payload):
        key = header.get("key")
        if op == "ping":
            return {"ok": True, "result": "pong"}, b""
        if op == "get" or op == "peek":
            record = self.data.get(key)
            if record is None:
                return {"ok": True, "found": False}, b""
            if op == "get":
                record["last_access"] = self._clock()
            body = record["payload"] or b""
            return {"ok": True, "found": True,
                    "record": {"meta": record["meta"],
                               "size": record["size"],
                               "last_access": record["last_access"],
                               "has_payload":
                                   record["payload"] is not None}}, body
        if op == "put":
            value = header.get("value")
            if not isinstance(value, dict) \
                    or not isinstance(value.get("meta"), dict):
                raise _BadRequest("put requires a value with a meta dict")
            has_payload = bool(value.get("has_payload"))
            self.data[key] = {
                "meta": value["meta"],
                "payload": payload if has_payload else None,
                "size": int(value.get("size", len(payload))),
                "last_access": self._clock(),
            }
            return {"ok": True, "result": True}, b""
        if op == "delete":
            return {"ok": True,
                    "result": self.data.pop(key, None) is not None}, b""
        if op == "contains":
            return {"ok": True, "result": key in self.data}, b""
        if op == "keys":
            return {"ok": True, "result": sorted(self.data)}, b""
        if op == "index":
            return {"ok": True, "result": [
                [stored_key, record["size"], record["last_access"],
                 record["payload"] is None]
                for stored_key, record in self.data.items()]}, b""
        if op == "stats":
            return {"ok": True, "result": {
                "entries": len(self.data),
                "bytes": sum(r["size"] for r in self.data.values()),
                "requests": dict(self.requests),
                "uptime_s": time.monotonic() - self._started,
                "testing": self.testing,
                "pid": os.getpid(),
            }}, b""
        if op in TESTING_OPS:
            return self._dispatch_testing(op, header, payload)
        raise _BadRequest(f"unknown op {op!r}")

    def _dispatch_testing(self, op, header, payload):
        if not self.testing:
            raise _BadRequest(
                f"testing op {op!r} disabled (start the server with "
                "--testing to enable it)")
        if op == "flush":
            self.data.clear()
            return {"ok": True, "result": True}, b""
        if op == "set_clock":
            value = header.get("value")
            if isinstance(value, dict):
                value = value.get("value")
            value = float(value)
            self._clock = lambda: value
            return {"ok": True, "result": value}, b""
        if op == "debug_set_payload":
            record = self.data.get(header.get("key"))
            if record is None:
                raise _BadRequest("no such key")
            record["payload"] = payload
            return {"ok": True, "result": True}, b""
        raise _BadRequest(f"unknown testing op {op!r}")


class _BadRequest(Exception):
    """Client error: reported back, never retried."""


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.net.server``: run until interrupted.

    Prints ``repro-net listening on HOST:PORT`` once bound (so
    subprocess harnesses can read the chosen port from stdout), then
    serves until SIGINT/SIGTERM.
    """
    parser = argparse.ArgumentParser(
        prog="repro-net-server",
        description="stdlib socket KV server for repro score caches")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks a free port (default)")
    parser.add_argument("--testing", action="store_true",
                        help="enable debug ops (flush/set_clock/...)")
    args = parser.parse_args(argv)
    server = SocketKVServer(host=args.host, port=args.port,
                            testing=args.testing).start()
    print(f"repro-net listening on {server.host}:{server.port}",
          flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
