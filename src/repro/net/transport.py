"""``SocketKVTransport`` — the network client behind ``KVBackend``.

Speaks the :mod:`repro.net.protocol` frame format to a
:class:`~repro.net.server.SocketKVServer` (or anything wire
compatible) and maps every socket-level failure onto the existing
``KVBackend`` error taxonomy:

- timeouts → :class:`~repro.pipeline.backends.kv.KVTimeoutError`
- resets, refusals, truncated or corrupted frames →
  :class:`~repro.pipeline.backends.kv.KVTransientError`

so the retry/backoff/:class:`KVUnavailableError` machinery — and
everything above it (store degradation, ``probe_backend()`` re-arm,
daemon health) — works unchanged over a real network. The connection
is persistent and re-dialed transparently after any fault, which is
what makes "kill the server, bring it back, the store re-arms" a
client-visible non-event.

The transport also carries a ``spec()`` (``kv://host:port``) so
``KVBackend.spec()`` round-trips through worker processes: workers
reconnect to the same server instead of silently falling back to a
private in-memory cache.
"""

from __future__ import annotations

import contextlib
import socket
import threading
from typing import Any, Dict, Optional

from ..obs.metrics import get_registry
from ..obs.trace import span
from ..pipeline.backends.kv import KVTimeoutError, KVTransientError
from .protocol import FrameError, decode_frame, encode_frame

_NET_REQUESTS = get_registry().counter(
    "repro_net_requests_total",
    "KV requests sent over socket transports.", labels=("op",))
_NET_ERRORS = get_registry().counter(
    "repro_net_errors_total",
    "Socket transport faults by kind (timeout/transient/rejected).",
    labels=("kind",))
_NET_CONNECTS = get_registry().counter(
    "repro_net_connections_total",
    "TCP connections dialed by socket transports.")
_NET_BYTES_SENT = get_registry().counter(
    "repro_net_bytes_sent_total",
    "Request bytes written by socket transports.")
_NET_BYTES_RECEIVED = get_registry().counter(
    "repro_net_bytes_received_total",
    "Response bytes read by socket transports.")


class SocketKVTransport:
    """Persistent-connection client for the socket KV protocol.

    Satisfies the ``KVBackend`` transport seam — ``request(op,
    key=..., value=..., timeout=...)`` — one instance per backend;
    a lock serializes concurrent requests on the shared connection.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Default per-request socket timeout; ``KVBackend`` overrides
        it per call with its own budget.
    """

    def __init__(self, host: str, port: int, timeout: float = 5.0):
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    def spec(self) -> str:
        """Address spec, the transport half of ``KVBackend.spec()``."""
        return f"kv://{self.host}:{self.port}"

    def __repr__(self) -> str:
        return f"SocketKVTransport({self.host!r}, {self.port})"

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def _connect(self, timeout: float) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP,
                                  socket.TCP_NODELAY, 1)
            _NET_CONNECTS.inc()
        self._sock.settimeout(timeout)
        return self._sock

    def close(self) -> None:
        with self._lock:
            self._drop()

    def _drop(self) -> None:
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None

    # ------------------------------------------------------------------
    # the KVBackend transport seam
    # ------------------------------------------------------------------

    def request(self, op: str, key: Optional[str] = None,
                value: Optional[Dict[str, Any]] = None,
                timeout: Optional[float] = None):
        budget = self.timeout if timeout is None else float(timeout)
        header: Dict[str, Any] = {"op": op}
        if key is not None:
            header["key"] = key
        payload = b""
        if value is not None:
            slim = {k: v for k, v in value.items() if k != "payload"}
            if "payload" in value:
                raw = value["payload"]
                slim["has_payload"] = raw is not None
                payload = raw or b""
            header["value"] = slim
        _NET_REQUESTS.inc(op=op)
        with span("net.request", op=op, host=self.host,
                  port=self.port), self._lock:
            try:
                reply, body = self._exchange(
                    encode_frame(header, payload), budget)
            except socket.timeout as error:
                self._drop()
                _NET_ERRORS.inc(kind="timeout")
                raise KVTimeoutError(
                    f"{op} to {self.host}:{self.port} timed out "
                    f"after {budget:.3f}s") from error
            except (OSError, EOFError, FrameError) as error:
                self._drop()
                _NET_ERRORS.inc(kind="transient")
                raise KVTransientError(
                    f"{op} to {self.host}:{self.port} failed: "
                    f"{error}") from error
        return self._interpret(op, reply, body)

    def _exchange(self, frame: bytes, budget: float):
        sock = self._connect(budget)
        sock.sendall(frame)
        _NET_BYTES_SENT.inc(len(frame))

        def read(n: int) -> bytes:
            chunk = sock.recv(min(n, 1 << 20))
            _NET_BYTES_RECEIVED.inc(len(chunk))
            return chunk

        return decode_frame(read)

    def _interpret(self, op: str, reply: Dict[str, Any], body: bytes):
        if not reply.get("ok"):
            message = str(reply.get("error", "unspecified server error"))
            if reply.get("kind") == "bad-request":
                _NET_ERRORS.inc(kind="rejected")
                raise ValueError(message)
            _NET_ERRORS.inc(kind="transient")
            raise KVTransientError(message)
        if op in ("get", "peek"):
            if not reply.get("found"):
                return None
            record = dict(reply["record"])
            record["payload"] = body if record.pop("has_payload") \
                else None
            return record
        return reply.get("result")
