"""``repro.net`` — a real networked transport for the score cache.

The pieces, bottom-up:

- :mod:`repro.net.protocol` — length-prefixed binary frames with
  end-to-end payload digests.
- :class:`SocketKVServer` — a threaded stdlib-socket KV server run
  in-process or as its own process (``python -m repro.net.server``),
  serving the same op set and record shape as the in-memory
  transport.
- :class:`SocketKVTransport` — the client side, plugging into the
  existing ``KVBackend`` retry/timeout/degradation machinery, so
  ``ScoreStore("kv://host:port")`` gives two independent processes
  one warm shared cache.
- :func:`put_object` / :func:`get_object` — whole files (edge
  tables) as digest-verified KV records, feeding the
  ``flow("kv://host:port/edges.npz")`` remote sources.
- :class:`ChaosProxy` — scripted socket-level fault injection
  (:class:`Drop` / :class:`Stall` / :class:`Truncate`) for testing
  the retry and degradation paths against real network failures.
"""

from .faults import ChaosProxy, Drop, Stall, Truncate
from .objects import (OBJECT_SCHEMA, ObjectIntegrityError, get_object,
                      put_object)
from .protocol import FrameError
from .server import SocketKVServer
from .transport import SocketKVTransport

__all__ = [
    "ChaosProxy",
    "Drop",
    "FrameError",
    "OBJECT_SCHEMA",
    "ObjectIntegrityError",
    "SocketKVServer",
    "SocketKVTransport",
    "Stall",
    "Truncate",
    "get_object",
    "put_object",
]
