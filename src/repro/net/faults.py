"""Socket-level fault injection for the networked KV transport.

:class:`ChaosProxy` sits between a :class:`SocketKVTransport` and a
:class:`~repro.net.server.SocketKVServer` and misbehaves on cue, at
the TCP layer — below everything the client can see — so tests
exercise the exact failure modes real networks produce:

- :class:`Drop` — accept the connection, then close it immediately
  (reset-style: the client's next read sees EOF).
- :class:`Stall` — accept and go silent, so the client burns its
  full socket timeout.
- :class:`Truncate` — proxy the exchange but forward only the first
  N response bytes before closing (a frame cut off mid-payload).

Behaviors are consumed one per *connection*, in order; once the
scripted queue is empty the proxy forwards transparently. Because
every fault kills the connection, the client re-dials for its next
attempt and deterministically receives the next behavior — which is
what makes "two drops then success → exactly two retries" assertable.

This is the transport-layer sibling of the application-layer chaos
harness in :mod:`repro.serve.faults` (worker kills, backend
outages); together they cover the failure stack end to end.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Drop:
    """Close the client connection as soon as it is accepted."""


@dataclass(frozen=True)
class Stall:
    """Hold the accepted connection silent for ``seconds``."""

    seconds: float = 30.0


@dataclass(frozen=True)
class Truncate:
    """Forward only the first ``limit`` response bytes, then close."""

    limit: int = 8


class ChaosProxy:
    """Scripted TCP proxy in front of a KV server.

    Parameters
    ----------
    upstream:
        ``(host, port)`` of the real server.
    host, port:
        Listen address; port ``0`` picks a free one (read ``.port``).
    """

    def __init__(self, upstream: Tuple[str, int],
                 host: str = "127.0.0.1", port: int = 0):
        self.upstream = upstream
        self.host = host
        self._behaviors: List[object] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._thread: Optional[threading.Thread] = None
        self.connections = 0

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def inject(self, *behaviors: object) -> None:
        """Queue behaviors, one consumed per accepted connection."""
        with self._lock:
            self._behaviors.extend(behaviors)

    def _next_behavior(self) -> Optional[object]:
        with self._lock:
            return self._behaviors.pop(0) if self._behaviors else None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ChaosProxy":
        self._listener.listen(16)
        self._listener.settimeout(0.1)
        self._thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-chaos-proxy:{self.port}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with contextlib.suppress(OSError):
            self._listener.close()

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # proxying
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            behavior = self._next_behavior()
            threading.Thread(target=self._serve_one,
                             args=(client, behavior),
                             daemon=True).start()

    def _serve_one(self, client: socket.socket,
                   behavior: Optional[object]) -> None:
        try:
            if isinstance(behavior, Drop):
                return
            if isinstance(behavior, Stall):
                deadline = time.monotonic() + behavior.seconds
                while time.monotonic() < deadline \
                        and not self._stop.is_set():
                    time.sleep(0.01)
                return
            limit = behavior.limit if isinstance(behavior, Truncate) \
                else None
            self._pipe(client, limit)
        finally:
            with contextlib.suppress(OSError):
                client.close()

    def _pipe(self, client: socket.socket,
              response_limit: Optional[int]) -> None:
        """Forward both directions, capping server→client bytes."""
        try:
            upstream = socket.create_connection(self.upstream,
                                                timeout=5.0)
        except OSError:
            return
        done = threading.Event()

        def forward_requests() -> None:
            try:
                while not done.is_set():
                    chunk = client.recv(1 << 16)
                    if not chunk:
                        break
                    upstream.sendall(chunk)
            except OSError:
                pass
            finally:
                with contextlib.suppress(OSError):
                    upstream.shutdown(socket.SHUT_WR)

        pump = threading.Thread(target=forward_requests, daemon=True)
        pump.start()
        sent = 0
        try:
            while True:
                chunk = upstream.recv(1 << 16)
                if not chunk:
                    break
                if response_limit is not None:
                    chunk = chunk[:max(0, response_limit - sent)]
                    if not chunk:
                        break
                client.sendall(chunk)
                sent += len(chunk)
                if response_limit is not None \
                        and sent >= response_limit:
                    break
        except OSError:
            pass
        finally:
            done.set()
            with contextlib.suppress(OSError):
                upstream.close()
