"""``python -m repro.net`` — run the socket KV server."""

import sys

from .server import main

if __name__ == "__main__":
    sys.exit(main())
