"""Wire format for the ``repro.net`` socket KV service.

One request/response exchange is a pair of *frames*. A frame is::

    magic   4 bytes   b"RKV1"
    hlen    uint32 BE length of the JSON header
    plen    uint64 BE length of the binary payload (0 when absent)
    header  hlen bytes, UTF-8 JSON object
    payload plen bytes, raw

The header carries everything JSON-serializable (op, key, metadata,
result); the payload carries npz bytes untouched. Whenever a payload
is present the header also carries its SHA-256 under
``payload_sha256`` and both sides verify it, so a flipped bit in
flight surfaces as a retryable :class:`FrameError` instead of a
corrupt cache entry at rest.

Size ceilings (:data:`MAX_HEADER_BYTES`, :data:`MAX_PAYLOAD_BYTES`)
bound what a single frame may ask either side to allocate — a
malformed or hostile peer cannot request a 2**64-byte read.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Dict, Optional, Tuple

#: Frame magic; bump with the struct layout, not the header schema.
MAGIC = b"RKV1"

_PREFIX = struct.Struct(">4sIQ")

#: Ceiling on the JSON header: ops, keys and metadata are small.
MAX_HEADER_BYTES = 4 * 1024 * 1024

#: Ceiling on one payload (score arrays, fetched edge tables).
MAX_PAYLOAD_BYTES = 4 * 1024 * 1024 * 1024


class FrameError(Exception):
    """Malformed, truncated or digest-mismatched frame."""


def payload_digest(payload: bytes) -> str:
    """Hex SHA-256 of a frame payload."""
    return hashlib.sha256(payload).hexdigest()


def encode_frame(header: Dict[str, Any],
                 payload: Optional[bytes] = None) -> bytes:
    """Serialize one frame; stamps ``payload_sha256`` when needed."""
    if payload:
        header = dict(header)
        header["payload_sha256"] = payload_digest(payload)
    body = payload or b""
    head = json.dumps(header, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(head) > MAX_HEADER_BYTES:
        raise FrameError(f"header too large ({len(head)} bytes)")
    if len(body) > MAX_PAYLOAD_BYTES:
        raise FrameError(f"payload too large ({len(body)} bytes)")
    return _PREFIX.pack(MAGIC, len(head), len(body)) + head + body


def read_exact(read, n: int) -> bytes:
    """Read exactly ``n`` bytes via ``read(k)`` or raise.

    ``read`` is any ``socket.makefile("rb").read``-style callable; a
    short read means the peer hung up mid-frame, which callers treat
    as a transient fault.
    """
    chunks = []
    remaining = n
    while remaining:
        chunk = read(remaining)
        if not chunk:
            raise FrameError(
                f"connection closed mid-frame ({n - remaining}/{n} "
                "bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def decode_frame(read) -> Tuple[Dict[str, Any], bytes]:
    """Read one frame from ``read``; returns ``(header, payload)``.

    Verifies the magic, the size ceilings and — when a payload is
    present — its digest against ``header["payload_sha256"]``.
    Raises :class:`FrameError` on any violation and ``EOFError`` when
    the stream is already at EOF (clean peer shutdown between
    frames).
    """
    first = read(_PREFIX.size)
    if not first:
        raise EOFError("connection closed")
    prefix = first if len(first) == _PREFIX.size else \
        first + read_exact(read, _PREFIX.size - len(first))
    magic, hlen, plen = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if hlen > MAX_HEADER_BYTES:
        raise FrameError(f"header too large ({hlen} bytes)")
    if plen > MAX_PAYLOAD_BYTES:
        raise FrameError(f"payload too large ({plen} bytes)")
    try:
        header = json.loads(read_exact(read, hlen).decode("utf-8"))
    except ValueError as error:
        raise FrameError(f"undecodable frame header: {error}") from error
    if not isinstance(header, dict):
        raise FrameError("frame header is not a JSON object")
    payload = read_exact(read, plen) if plen else b""
    if payload:
        expected = header.get("payload_sha256")
        actual = payload_digest(payload)
        if expected != actual:
            raise FrameError(
                f"payload digest mismatch (header {expected!r}, "
                f"body {actual})")
    return header, payload
