"""Whole-file objects (edge tables, artifacts) in a KV store.

Score entries are not the only thing worth sharing over the wire:
``flow("kv://host:port/edges.npz")`` needs the *input table* itself
to live server-side. These helpers store a file as one KV record —
metadata carries the name, byte count and SHA-256; the payload is
the raw bytes — and fetch it back with the digest verified end to
end, reusing the full ``KVBackend`` retry/timeout machinery.

Objects share the keyspace with score entries but use their own
``schema`` tag, so a score lookup that collides with an object key
decodes as a schema mismatch (a miss), never as corrupt data.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

from ..pipeline.backends import RawEntry, StoreBackend, open_backend

#: Schema tag distinguishing object records from score entries.
OBJECT_SCHEMA = "repro.net.object/v1"


class ObjectIntegrityError(Exception):
    """Fetched object bytes do not match the stored digest."""


def _resolve(target: Union[str, Path, StoreBackend]):
    """``(backend, owned)`` — ``owned`` means we opened it here."""
    if isinstance(target, StoreBackend):
        return target, False
    return open_backend(target), True


def put_object(target: Union[str, Path, StoreBackend], key: str,
               path: Union[str, Path]) -> str:
    """Upload ``path`` under ``key``; returns a fetchable URL.

    ``target`` is a backend spec (``kv://host:port``) or an open
    backend. The returned URL (``kv://host:port/<key>``) feeds
    straight into ``flow(...)``; for backends without a network spec
    the bare key is returned instead.
    """
    data = Path(path).read_bytes()
    meta = {
        "schema": OBJECT_SCHEMA,
        "key": key,
        "object": {
            "name": Path(path).name,
            "bytes": len(data),
            "sha256": hashlib.sha256(data).hexdigest(),
        },
    }
    backend, owned = _resolve(target)
    try:
        backend.put(key, RawEntry(meta=meta, payload=data))
        spec = backend.spec()
    finally:
        if owned:
            backend.close()
    if spec and spec.startswith("kv://"):
        return f"{spec.partition('?')[0].rstrip('/')}/{key}"
    return key


def get_object(target: Union[str, Path, StoreBackend],
               key: str) -> bytes:
    """Fetch the object stored under ``key``, digest-verified.

    Raises ``KeyError`` when the key is absent or holds a non-object
    record, :class:`ObjectIntegrityError` when the bytes do not hash
    to the digest recorded at upload.
    """
    backend, owned = _resolve(target)
    try:
        entry = backend.get(key, touch=True)
    finally:
        if owned:
            backend.close()
    if entry is None or entry.meta.get("schema") != OBJECT_SCHEMA:
        raise KeyError(f"no object stored under {key!r}")
    payload = entry.payload or b""
    expected = entry.meta.get("object", {}).get("sha256")
    actual = hashlib.sha256(payload).hexdigest()
    if expected != actual:
        raise ObjectIntegrityError(
            f"object {key!r} digest mismatch (stored {expected!r}, "
            f"fetched {actual})")
    return payload
