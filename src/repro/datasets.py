"""Bundled example datasets (mirroring the paper's data release).

The paper releases some of its country networks "to ensure result
reproducibility" while the full dataset stays proprietary. Equivalent
here: seeded synthetic datasets with stable, documented content, plus an
exporter that writes them as the same ``src,dst,weight`` CSVs the paper
ships — and, since the ingestion refactor, as binary ``.npz`` edge
tables alongside. Loading never touches the filesystem — datasets
regenerate from fixed seeds — so results are bit-reproducible on any
machine.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from .generators.occupations import (OccupationStudy,
                                     generate_occupation_study)
from .generators.world import SyntheticWorld
from .graph.edge_table import EdgeTable
from .graph.ingest import write_edge_npz
from .graph.io import write_edge_csv

#: The world every bundled country network comes from.
_RELEASE_SEED = 2017          # the paper's publication year
_RELEASE_COUNTRIES = 96
_RELEASE_YEARS = 3


def release_world() -> SyntheticWorld:
    """The fixed world behind the bundled country networks."""
    return SyntheticWorld(n_countries=_RELEASE_COUNTRIES,
                          n_years=_RELEASE_YEARS, seed=_RELEASE_SEED)


def load_country_network(name: str, year: int = 0) -> EdgeTable:
    """One bundled country network snapshot (e.g. ``"trade"``, year 0)."""
    return release_world().network(name, year)


def load_country_years(name: str) -> List[EdgeTable]:
    """All yearly snapshots of one bundled country network."""
    return release_world().years(name)


def load_occupation_study() -> OccupationStudy:
    """The bundled occupation/skill case-study dataset."""
    return generate_occupation_study(n_occupations=220, n_skills=150,
                                     n_major_groups=8,
                                     seed=_RELEASE_SEED)


def dataset_catalog() -> Dict[str, str]:
    """Names and one-line descriptions of every bundled dataset."""
    catalog = {}
    world = release_world()
    for name in world.network_names():
        spec = world.spec(name)
        catalog[name] = (f"{spec.kind} network, "
                         f"{'directed' if spec.directed else 'undirected'}, "
                         f"{_RELEASE_YEARS} yearly snapshots, "
                         f"{_RELEASE_COUNTRIES} countries")
    catalog["occupations"] = ("skill co-occurrence network + labor flow "
                              "matrix, 220 occupations")
    return catalog


def export_all(directory) -> List[Path]:
    """Write every bundled dataset under ``directory``, in both formats.

    Every network ships as a ``src,dst,weight`` CSV (the paper's
    release shape, human-inspectable) *and* as the binary ``.npz``
    edge table (exact round-trip of labels, directedness and node
    count; loads without parsing). Country networks are written one
    file pair per year (``<name>_year<k>.csv`` / ``.npz``); the
    occupation study as the co-occurrence edge list pair plus a dense
    flow matrix CSV. Returns the written paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    def emit(table: EdgeTable, stem: str) -> None:
        csv_path = directory / f"{stem}.csv"
        write_edge_csv(table, csv_path)
        written.append(csv_path)
        npz_path = directory / f"{stem}.npz"
        write_edge_npz(table, npz_path)
        written.append(npz_path)

    world = release_world()
    for name in world.network_names():
        for year in range(_RELEASE_YEARS):
            emit(world.network(name, year), f"{name}_year{year}")
    study = load_occupation_study()
    emit(study.cooccurrence, "occupations_cooccurrence")
    flows_path = directory / "occupations_flows.csv"
    with flows_path.open("w") as handle:
        handle.write("origin,destination,switchers\n")
        n = study.n_occupations
        for origin in range(n):
            for destination in range(n):
                count = study.flows[origin, destination]
                if count > 0:
                    handle.write(f"{origin},{destination},"
                                 f"{int(count)}\n")
    written.append(flows_path)
    return written
