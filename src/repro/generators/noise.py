"""The paper's synthetic noise model (Section V-A, Fig. 4).

Starting from a planted topology with degrees ``k_i``:

* every **true** edge ``(i, j)`` gets weight ``(k_i + k_j) * U(η, 1)``;
* every **non-edge** is filled in with noise ``(k_i + k_j) * U(0, η)``.

``η`` is the noise knob: at ``η → 0`` noise weights vanish and true
weights stay near their ceiling; as ``η`` grows the two distributions
overlap and the planted structure drowns. Weights are proportional to
endpoint degrees, which reproduces the "broad, locally correlated with
topology" property the methods must cope with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.edge_table import EdgeTable
from ..util.validation import check_probability, require
from .seeds import SeedLike, make_rng


@dataclass(frozen=True)
class NoisyNetwork:
    """A noisy network plus its planted ground truth."""

    observed: EdgeTable
    truth: EdgeTable
    eta: float

    @property
    def n_true_edges(self) -> int:
        """Edge budget for recovery comparisons."""
        return self.truth.m


def add_noise(truth: EdgeTable, eta: float,
              seed: SeedLike = None) -> NoisyNetwork:
    """Fill the complement of ``truth`` with the paper's noise weights.

    ``truth`` must be an undirected table; its degrees define the weight
    scale ``k_i + k_j`` for both signal and noise.
    """
    require(not truth.directed, "the Fig. 4 noise model is undirected")
    eta = check_probability(eta, "eta")
    rng = make_rng(seed)
    n = truth.n_nodes
    degrees = truth.degree().astype(np.float64)

    src_all, dst_all = np.triu_indices(n, k=1)
    true_keys = truth.without_self_loops().edge_keys()
    all_keys = src_all.astype(np.int64) * n + dst_all
    is_true = np.isin(all_keys, true_keys)

    scale = degrees[src_all] + degrees[dst_all]
    draw = np.where(is_true,
                    rng.uniform(eta, 1.0, len(src_all)),
                    rng.uniform(0.0, eta, len(src_all)))
    weight = scale * draw
    observed = EdgeTable(src_all, dst_all, weight, n_nodes=n,
                         directed=False, coalesce=False)
    return NoisyNetwork(observed=observed, truth=truth, eta=eta)
