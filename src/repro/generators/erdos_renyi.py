"""Erdős–Rényi random graphs with uniform random weights.

The paper's scalability experiment (Fig. 9) times the backbone methods on
ER graphs "with uniform random weights" and "average degree of a node set
to three" at growing sizes; :func:`erdos_renyi_gnm` is the exact workload
generator for that benchmark.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.edge_table import EdgeTable
from ..util.validation import require
from .seeds import SeedLike, make_rng


def erdos_renyi_gnm(n_nodes: int, n_edges: int, seed: SeedLike = None,
                    directed: bool = False,
                    weight_range: Tuple[float, float] = (1.0, 100.0)
                    ) -> EdgeTable:
    """Sample a G(n, m) graph with ``n_edges`` distinct (non-loop) edges.

    Weights are drawn uniformly from ``weight_range``. Sampling uses
    rejection on edge keys, which is fast while ``n_edges`` is well below
    the number of possible pairs (the sparse regime of Fig. 9).
    """
    require(n_nodes >= 2, f"need at least two nodes, got {n_nodes}")
    possible = n_nodes * (n_nodes - 1)
    if not directed:
        possible //= 2
    require(0 <= n_edges <= possible,
            f"n_edges={n_edges} out of range [0, {possible}]")
    rng = make_rng(seed)
    chosen: np.ndarray = np.empty(0, dtype=np.int64)
    need = n_edges
    keys = set()
    src_list = []
    dst_list = []
    while need > 0:
        batch = max(need * 2, 16)
        u = rng.integers(0, n_nodes, batch)
        v = rng.integers(0, n_nodes, batch)
        for a, b in zip(u.tolist(), v.tolist()):
            if a == b or need == 0:
                continue
            if not directed and a > b:
                a, b = b, a
            key = a * n_nodes + b
            if key in keys:
                continue
            keys.add(key)
            src_list.append(a)
            dst_list.append(b)
            need -= 1
    low, high = weight_range
    require(low <= high, "weight_range must be (low, high)")
    weight = rng.uniform(low, high, n_edges)
    return EdgeTable(src_list, dst_list, weight, n_nodes=n_nodes,
                     directed=directed, coalesce=False)


def erdos_renyi_gnp(n_nodes: int, p: float, seed: SeedLike = None,
                    directed: bool = False,
                    weight_range: Tuple[float, float] = (1.0, 100.0)
                    ) -> EdgeTable:
    """Sample a G(n, p) graph (each pair independently with prob ``p``)."""
    require(n_nodes >= 2, f"need at least two nodes, got {n_nodes}")
    require(0.0 <= p <= 1.0, f"p must be in [0, 1], got {p}")
    rng = make_rng(seed)
    if directed:
        src, dst = np.nonzero(~np.eye(n_nodes, dtype=bool))
    else:
        src, dst = np.triu_indices(n_nodes, k=1)
    keep = rng.uniform(size=len(src)) < p
    src, dst = src[keep], dst[keep]
    low, high = weight_range
    weight = rng.uniform(low, high, len(src))
    return EdgeTable(src, dst, weight, n_nodes=n_nodes, directed=directed,
                     coalesce=False)


def average_degree_edges(n_nodes: int, average_degree: float,
                         directed: bool = False) -> int:
    """Edge count giving the requested average degree.

    For undirected graphs average degree ``d`` needs ``n * d / 2`` edges;
    directed graphs count both in- and out-degree, so the same formula
    applies to total degree.
    """
    require(average_degree >= 0, "average_degree must be non-negative")
    return int(round(n_nodes * average_degree / 2.0))
