"""Synthetic data generators: random graphs, noise models, the gravity
world and the occupation case-study substrate."""

from .barabasi_albert import barabasi_albert
from .erdos_renyi import (average_degree_edges, erdos_renyi_gnm,
                          erdos_renyi_gnp)
from .noise import NoisyNetwork, add_noise
from .occupations import OccupationStudy, generate_occupation_study
from .planted import PlantedPartition, planted_partition
from .seeds import make_rng, spawn_rngs
from .world import (NETWORK_NAMES, NETWORK_SPECS, CountryCovariates,
                    NetworkSpec, SyntheticWorld, haversine_matrix)

__all__ = [
    "CountryCovariates",
    "NETWORK_NAMES",
    "NETWORK_SPECS",
    "NetworkSpec",
    "NoisyNetwork",
    "OccupationStudy",
    "PlantedPartition",
    "SyntheticWorld",
    "add_noise",
    "average_degree_edges",
    "barabasi_albert",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "generate_occupation_study",
    "haversine_matrix",
    "make_rng",
    "planted_partition",
    "spawn_rngs",
]
