"""Synthetic occupation/skill data for the paper's case study (Section VI).

The paper links an O*NET-derived skill co-occurrence network between
occupations to CPS occupational labor flows. Neither dataset ships with
this repository, so we generate an equivalent:

* occupations belong to latent *major groups* (the "first digit" of the
  classification) subdivided into *two-digit* codes;
* skills have group-affinity profiles; each occupation receives an
  **importance** and a **level** score per skill (affinity + noise);
* following the paper, an occupation-skill association is kept when both
  scores exceed the skill's across-occupation averages;
* the co-occurrence weight of two occupations is the number of skills
  they share — a dense, noisy, undirected count network;
* labor flows are Poisson draws whose intensity rises with *true* skill
  similarity and the occupations' sizes, so flows are predictable from
  skill overlap but only through the noise.

This preserves the case study's logic: backbones that keep genuinely
related occupation pairs improve the flow predictions, and community
structure in the backbone should align with the expert classification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.edge_table import EdgeTable
from ..util.validation import require
from .seeds import SeedLike, spawn_rngs


@dataclass(frozen=True)
class OccupationStudy:
    """All artifacts of the synthetic case-study dataset."""

    cooccurrence: EdgeTable
    flows: np.ndarray
    major_group: np.ndarray
    two_digit: np.ndarray
    sizes: np.ndarray
    skill_matrix: np.ndarray
    true_similarity: np.ndarray

    @property
    def n_occupations(self) -> int:
        return len(self.sizes)

    def flow_pairs(self):
        """Directed ``(i, j)`` index arrays for all ordered pairs."""
        n = self.n_occupations
        src, dst = np.nonzero(~np.eye(n, dtype=bool))
        return src, dst


def generate_occupation_study(n_occupations: int = 220, n_skills: int = 150,
                              n_major_groups: int = 8,
                              seed: SeedLike = 0) -> OccupationStudy:
    """Build the synthetic O*NET/CPS substitute.

    Parameters mirror the real data's rough shape: a few hundred
    occupations and skills, eight-ish major groups, two-digit subgroups
    nested inside them.
    """
    require(n_occupations >= 20, "need at least 20 occupations")
    require(n_skills >= 10, "need at least 10 skills")
    require(2 <= n_major_groups <= n_occupations // 2,
            "n_major_groups out of range")
    rng_groups, rng_scores, rng_sizes, rng_flows = spawn_rngs(seed, 4)

    major_group = np.sort(rng_groups.integers(0, n_major_groups,
                                              n_occupations))
    # Two-digit codes: split each major group into up to three subgroups.
    sub = rng_groups.integers(0, 3, n_occupations)
    two_digit = major_group * 3 + sub

    # Skill-group affinity: each skill loads on a couple of groups.
    group_affinity = rng_groups.normal(0.0, 1.0,
                                       (n_major_groups, n_skills))
    sub_shift = rng_groups.normal(0.0, 0.4,
                                  (n_major_groups * 3, n_skills))
    base = group_affinity[major_group] + sub_shift[two_digit]

    # Occupations differ in skill breadth: generalists clear the
    # above-average bar for many skills, specialists for few. This is
    # what gives the co-occurrence network its heterogeneous strengths
    # (and the Disparity Filter its characteristic node drops).
    breadth = rng_scores.normal(0.0, 0.6, (n_occupations, 1))
    importance = base + breadth + rng_scores.normal(
        0.0, 0.9, (n_occupations, n_skills))
    level = base + breadth + rng_scores.normal(
        0.0, 0.9, (n_occupations, n_skills))

    # Paper's rule: keep the association when both scores are above the
    # skill's across-occupation averages.
    keep = ((importance > importance.mean(axis=0, keepdims=True))
            & (level > level.mean(axis=0, keepdims=True)))
    skill_matrix = keep

    counts = keep.astype(np.int64)
    cooccurrence_matrix = (counts @ counts.T).astype(np.float64)
    np.fill_diagonal(cooccurrence_matrix, 0.0)
    labels = tuple(f"O{code:02d}.{i:03d}"
                   for i, code in enumerate(two_digit))
    cooccurrence = EdgeTable.from_dense(cooccurrence_matrix,
                                        directed=False, labels=labels)

    # Occupation sizes (employment) are heavy-tailed.
    sizes = np.exp(rng_sizes.normal(8.0, 1.0, n_occupations))

    # True similarity drives flows: cosine similarity of the *latent*
    # profiles (not the thresholded observations).
    norms = np.linalg.norm(base, axis=1, keepdims=True)
    unit = base / np.maximum(norms, 1e-12)
    true_similarity = np.clip(unit @ unit.T, -1.0, 1.0)
    np.fill_diagonal(true_similarity, 0.0)

    size_product = np.sqrt(np.outer(sizes, sizes))
    intensity = size_product * np.exp(2.2 * true_similarity)
    intensity *= 40_000.0 / intensity.sum()
    flows = rng_flows.poisson(intensity).astype(np.float64)
    # Stayers: most workers do not switch occupations.
    np.fill_diagonal(flows, np.round(sizes * 0.6))
    return OccupationStudy(cooccurrence=cooccurrence, flows=flows,
                           major_group=major_group, two_digit=two_digit,
                           sizes=sizes, skill_matrix=skill_matrix,
                           true_similarity=true_similarity)
