"""Deterministic random-number plumbing.

Every generator takes either an integer seed or an existing
``numpy.random.Generator``; experiments pass integers so that entire
pipelines are reproducible run-to-run.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``Generator`` from an int seed, a generator, or fresh."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the streams are statistically
    independent regardless of how many draws each consumer makes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        sequence = seed.bit_generator.seed_seq
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
