"""Synthetic country-network world (substitute for the paper's data).

The paper evaluates on six proprietary country-country networks
(Business, Country Space, Flight, Migration, Ownership, Trade), each
observed in several years. None of those datasets can be redistributed,
so this module builds a *gravity-model world* that reproduces the
statistical properties the experiments rely on:

* count-valued edge weights with broad, locally correlated distributions
  (paper Figs. 5 and 6);
* directed flows, directed stocks and an undirected co-occurrence
  network;
* repeated yearly snapshots of a *fixed latent truth* observed through
  sampling noise — the premise of the variance validation (Table I) and
  the stability criterion (Fig. 8);
* latent intensities genuinely driven by observable covariates
  (distance, population, language, trade, FDI, economic complexity), so
  backbones that suppress noise improve the OLS fits of Table II.

Every world is fully determined by its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..graph.edge_table import EdgeTable
from ..util.validation import require
from .seeds import SeedLike, spawn_rngs

#: Earth radius used by the haversine distance (km).
_EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class NetworkSpec:
    """Static description of one of the six network types."""

    name: str
    directed: bool
    kind: str  # "flow", "stock" or "cooccurrence"
    overdispersion: float  # gamma mixing variance of yearly sampling


NETWORK_SPECS: Dict[str, NetworkSpec] = {
    "business": NetworkSpec("business", True, "flow", 0.08),
    "country_space": NetworkSpec("country_space", False, "cooccurrence",
                                 0.0),
    "flight": NetworkSpec("flight", True, "flow", 0.05),
    "migration": NetworkSpec("migration", True, "stock", 0.03),
    "ownership": NetworkSpec("ownership", True, "stock", 0.04),
    "trade": NetworkSpec("trade", True, "flow", 0.10),
}

#: Paper ordering for tables and figures.
NETWORK_NAMES: Tuple[str, ...] = ("business", "country_space", "flight",
                                  "migration", "ownership", "trade")


@dataclass
class CountryCovariates:
    """Observable country and pair attributes the regressions use."""

    labels: Tuple[str, ...]
    population: np.ndarray
    gdp_per_capita: np.ndarray
    eci: np.ndarray
    latitude: np.ndarray
    longitude: np.ndarray
    distance_km: np.ndarray
    common_language: np.ndarray
    shared_history: np.ndarray
    fdi: np.ndarray = field(default=None)

    @property
    def gdp(self) -> np.ndarray:
        """Total GDP = population x GDP per capita."""
        return self.population * self.gdp_per_capita

    @property
    def n_countries(self) -> int:
        return len(self.population)


def haversine_matrix(latitude: np.ndarray,
                     longitude: np.ndarray) -> np.ndarray:
    """Great-circle distances (km) between all coordinate pairs."""
    lat = np.radians(np.asarray(latitude, dtype=np.float64))
    lon = np.radians(np.asarray(longitude, dtype=np.float64))
    dlat = lat[:, None] - lat[None, :]
    dlon = lon[:, None] - lon[None, :]
    a = (np.sin(dlat / 2.0) ** 2
         + np.cos(lat)[:, None] * np.cos(lat)[None, :]
         * np.sin(dlon / 2.0) ** 2)
    return 2.0 * _EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


class SyntheticWorld:
    """A seeded world emitting the six yearly country networks.

    Parameters
    ----------
    n_countries:
        Number of countries (nodes).
    n_years:
        Number of yearly snapshots per network.
    seed:
        Master seed; every derived quantity is deterministic in it.
    n_products:
        Size of the product space behind the Country Space network.
    """

    def __init__(self, n_countries: int = 120, n_years: int = 3,
                 seed: SeedLike = 0, n_products: int = 400):
        require(n_countries >= 10, "need at least 10 countries")
        require(n_years >= 1, "need at least one year")
        require(n_products >= 10, "need at least 10 products")
        self.n_countries = int(n_countries)
        self.n_years = int(n_years)
        self.n_products = int(n_products)
        (rng_geo, rng_econ, rng_social, rng_latent, rng_products,
         rng_years) = spawn_rngs(seed, 6)
        # A per-world salt keeps yearly sampling streams distinct across
        # worlds while staying deterministic in the master seed.
        self._world_salt = int(rng_years.integers(2 ** 31))
        self.covariates = self._build_covariates(rng_geo, rng_econ,
                                                 rng_social)
        self._latent: Dict[str, np.ndarray] = {}
        self._build_latents(rng_latent)
        self._build_product_space(rng_products)
        self._year_cache: Dict[Tuple[str, int], EdgeTable] = {}
        self._year_noise: Dict[Tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_covariates(self, rng_geo, rng_econ,
                          rng_social) -> CountryCovariates:
        n = self.n_countries
        labels = tuple(f"C{i:03d}" for i in range(n))
        latitude = np.degrees(np.arcsin(rng_geo.uniform(-1, 1, n)))
        longitude = rng_geo.uniform(-180.0, 180.0, n)
        distance = haversine_matrix(latitude, longitude)

        population = np.exp(rng_econ.normal(16.0, 1.4, n))
        gdp_per_capita = np.exp(rng_econ.normal(9.0, 1.1, n))
        # Economic complexity correlates with income (rho ~ 0.7).
        eci = (0.7 * ((np.log(gdp_per_capita) - 9.0) / 1.1)
               + 0.3 * rng_econ.normal(size=n))

        # ~12 language groups with skewed sizes.
        group_weights = rng_social.dirichlet(np.full(12, 0.6))
        language = rng_social.choice(12, size=n, p=group_weights)
        common_language = (language[:, None] == language[None, :])
        np.fill_diagonal(common_language, False)
        # Colonial/history ties: more likely within a language group.
        tie_probability = np.where(common_language, 0.25, 0.01)
        upper = np.triu(rng_social.uniform(size=(n, n)) < tie_probability, 1)
        shared_history = upper | upper.T
        return CountryCovariates(
            labels=labels, population=population,
            gdp_per_capita=gdp_per_capita, eci=eci, latitude=latitude,
            longitude=longitude, distance_km=distance,
            common_language=common_language,
            shared_history=shared_history)

    def _gravity(self, rng, origin_mass, destination_mass,
                 distance_elasticity, language_boost=0.0,
                 history_boost=0.0, pair_sigma=0.8,
                 symmetric=False) -> np.ndarray:
        """A generic gravity kernel with persistent pair-level effects."""
        cov = self.covariates
        n = self.n_countries
        log_distance = np.log(cov.distance_km + 50.0)
        kernel = (np.log(origin_mass)[:, None]
                  + np.log(destination_mass)[None, :]
                  - distance_elasticity * log_distance
                  + language_boost * cov.common_language
                  + history_boost * cov.shared_history)
        pair_effect = rng.normal(0.0, pair_sigma, (n, n))
        if symmetric:
            pair_effect = (pair_effect + pair_effect.T) / np.sqrt(2.0)
        kernel = kernel + pair_effect
        np.fill_diagonal(kernel, -np.inf)
        intensity = np.exp(kernel - kernel[np.isfinite(kernel)].max())
        np.fill_diagonal(intensity, 0.0)
        return intensity

    def _build_latents(self, rng) -> None:
        cov = self.covariates
        # Trade: classic gravity on GDP with strong distance decay.
        trade = self._gravity(rng, cov.gdp ** 0.9, cov.gdp ** 0.8,
                              distance_elasticity=1.1,
                              language_boost=0.4, pair_sigma=1.0)
        self._latent["trade"] = _scale_total(trade, 5e6)

        # Business travel: driven by trade plus origin income.
        business_kernel = (0.75 * np.log(self._latent["trade"] + 1e-12)
                           + 0.25 * np.log(cov.gdp_per_capita)[:, None]
                           + rng.normal(0.0, 0.5,
                                        (self.n_countries,) * 2))
        np.fill_diagonal(business_kernel, -np.inf)
        business = np.exp(business_kernel
                          - business_kernel[
                              np.isfinite(business_kernel)].max())
        np.fill_diagonal(business, 0.0)
        self._latent["business"] = _scale_total(business, 8e5)

        # Flights: gravity on population, symmetric pair effects.
        flight = self._gravity(rng, cov.population ** 0.8,
                               cov.population ** 0.8,
                               distance_elasticity=0.9,
                               pair_sigma=0.6, symmetric=True)
        self._latent["flight"] = _scale_total(flight, 2e6)

        # Migration stocks: population masses, language and history.
        migration = self._gravity(rng, cov.population ** 0.7,
                                  cov.population ** 0.9,
                                  distance_elasticity=0.8,
                                  language_boost=1.0, history_boost=1.2,
                                  pair_sigma=0.9)
        self._latent["migration"] = _scale_total(migration, 1e6)

        # Ownership stocks: origin income dominates, weak distance decay.
        ownership = self._gravity(rng, cov.gdp ** 1.1,
                                  cov.gdp ** 0.5,
                                  distance_elasticity=0.3,
                                  language_boost=0.3, pair_sigma=1.2)
        self._latent["ownership"] = _scale_total(ownership, 3e5)

        # Observable FDI tracks latent ownership with reporting noise.
        fdi = self._latent["ownership"] * np.exp(
            rng.normal(0.0, 0.4, (self.n_countries,) * 2))
        np.fill_diagonal(fdi, 0.0)
        self.covariates.fdi = fdi * 1.0e3

    def _build_product_space(self, rng) -> None:
        """Latent export propensities for the Country Space network."""
        complexity = rng.normal(0.0, 1.0, self.n_products)
        self._product_complexity = complexity
        affinity = (self.covariates.eci[:, None] - complexity[None, :])
        noise = rng.normal(0.0, 0.8, (self.n_countries, self.n_products))
        # Export probability rises with country complexity relative to
        # product complexity; baseline keeps simple products widespread.
        self._export_logit = 1.2 * affinity + noise + 0.3

    def _export_matrix(self, year: int) -> np.ndarray:
        """Boolean RCA matrix for a given year (slowly evolving)."""
        rng = np.random.default_rng([year, 982451653, self._world_salt])
        yearly_noise = rng.normal(0.0, 0.35,
                                  (self.n_countries, self.n_products))
        return (self._export_logit + yearly_noise) > 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def network_names(self) -> Tuple[str, ...]:
        """The six network names in paper order."""
        return NETWORK_NAMES

    def spec(self, name: str) -> NetworkSpec:
        """Static description of a network type."""
        self._check_name(name)
        return NETWORK_SPECS[name]

    def latent_intensity(self, name: str) -> np.ndarray:
        """The noiseless truth behind a network (dense matrix).

        For Country Space this is the expected co-occurrence count under
        the export-propensity model.
        """
        self._check_name(name)
        if name == "country_space":
            probability = 1.0 / (1.0 + np.exp(-self._export_logit / 0.86))
            expected = probability @ probability.T
            np.fill_diagonal(expected, 0.0)
            return expected
        return self._latent[name]

    def network(self, name: str, year: int = 0) -> EdgeTable:
        """One yearly snapshot of a network as an edge table."""
        self._check_name(name)
        require(0 <= year < self.n_years,
                f"year {year} out of range [0, {self.n_years})")
        key = (name, year)
        if key not in self._year_cache:
            self._year_cache[key] = self._sample_year(name, year)
        return self._year_cache[key]

    def years(self, name: str) -> List[EdgeTable]:
        """All yearly snapshots of a network."""
        return [self.network(name, year) for year in range(self.n_years)]

    def dense_weights(self, name: str, year: int = 0) -> np.ndarray:
        """Dense weight matrix of a snapshot (zeros included)."""
        return self.network(name, year).to_dense()

    def _sample_year(self, name: str, year: int) -> EdgeTable:
        spec = NETWORK_SPECS[name]
        rng = np.random.default_rng(
            [year, NETWORK_NAMES.index(name), self._world_salt])
        labels = self.covariates.labels
        if spec.kind == "cooccurrence":
            exports = self._export_matrix(year)
            counts = (exports.astype(np.int64)
                      @ exports.astype(np.int64).T).astype(np.float64)
            np.fill_diagonal(counts, 0.0)
            return EdgeTable.from_dense(counts, directed=False,
                                        labels=labels)
        intensity = self._latent[name]
        growth = (1.025 ** year)
        if spec.overdispersion > 0:
            shape = 1.0 / spec.overdispersion
            mixing = rng.gamma(shape, 1.0 / shape, intensity.shape)
        else:
            mixing = 1.0
        lam = intensity * growth * mixing
        counts = rng.poisson(lam).astype(np.float64)
        np.fill_diagonal(counts, 0.0)
        return EdgeTable.from_dense(counts, directed=True, labels=labels)

    def _check_name(self, name: str) -> None:
        require(name in NETWORK_SPECS,
                f"unknown network {name!r}; choose from {NETWORK_NAMES}")


def _scale_total(intensity: np.ndarray, target_total: float) -> np.ndarray:
    """Rescale a non-negative matrix to a target grand total."""
    total = intensity.sum()
    require(total > 0, "intensity matrix must have positive mass")
    return intensity * (target_total / total)
