"""Planted-partition networks buried in noise (paper Fig. 1).

The paper's opening example is a ~150-node network where "virtually every
possible connection is expressed in the data" yet a latent community
structure exists; after backboning, community discovery recovers the
ground-truth classes. This generator reproduces that setting with
count-valued weights: within-community pairs interact at a higher Poisson
rate than cross-community pairs, and every pair receives a baseline noise
rate so the raw network is an almost-complete hairball.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.edge_table import EdgeTable
from ..util.validation import require
from .seeds import SeedLike, make_rng


@dataclass(frozen=True)
class PlantedPartition:
    """A noisy network with ground-truth community labels."""

    table: EdgeTable
    labels: np.ndarray

    @property
    def n_communities(self) -> int:
        return int(self.labels.max()) + 1


def planted_partition(n_nodes: int = 151, n_communities: int = 5,
                      within_rate: float = 10.0, between_rate: float = 2.0,
                      noise_rate: float = 6.0,
                      seed: SeedLike = None) -> PlantedPartition:
    """Sample a planted-partition count network.

    Every unordered pair receives ``Poisson(noise_rate)`` background
    interactions plus ``Poisson(within_rate)`` (same community) or
    ``Poisson(between_rate)`` (different community) structural ones.
    With the defaults nearly every pair has positive weight, matching
    the paper's "every possible connection is expressed" setup.
    """
    require(n_nodes >= 2, "need at least two nodes")
    require(1 <= n_communities <= n_nodes,
            "n_communities must be in [1, n_nodes]")
    for name, value in (("within_rate", within_rate),
                        ("between_rate", between_rate),
                        ("noise_rate", noise_rate)):
        require(value >= 0, f"{name} must be non-negative")
    rng = make_rng(seed)
    labels = rng.integers(0, n_communities, n_nodes)
    src, dst = np.triu_indices(n_nodes, k=1)
    same = labels[src] == labels[dst]
    rate = np.where(same, within_rate, between_rate) + noise_rate
    weight = rng.poisson(rate).astype(np.float64)
    keep = weight > 0
    table = EdgeTable(src[keep], dst[keep], weight[keep], n_nodes=n_nodes,
                      directed=False, coalesce=False)
    return PlantedPartition(table=table, labels=labels)
