"""Barabási–Albert preferential attachment, from scratch.

The paper's synthetic recovery experiment (Fig. 4) plants a BA topology
with 200 nodes and average degree 3 and then buries it in noise. BA with
``m`` attachments per arriving node yields average degree ``≈ 2m``; to
hit non-even targets like 3, :func:`barabasi_albert` accepts a
fractional ``m`` and alternates between ``floor(m)`` and ``ceil(m)``
attachments with the matching probability.
"""

from __future__ import annotations

import numpy as np

from ..graph.edge_table import EdgeTable
from ..util.validation import require
from .seeds import SeedLike, make_rng


def barabasi_albert(n_nodes: int, m: float = 1.5, seed: SeedLike = None
                    ) -> EdgeTable:
    """Grow a BA graph; returns an unweighted (weight 1) undirected table.

    Parameters
    ----------
    n_nodes:
        Final number of nodes.
    m:
        Mean number of edges each arriving node attaches with. May be
        fractional (e.g. 1.5 for the paper's average degree 3).
    seed:
        RNG seed.
    """
    require(n_nodes >= 2, f"need at least two nodes, got {n_nodes}")
    require(m >= 1.0, f"m must be at least 1, got {m}")
    require(m <= n_nodes - 1, f"m={m} too large for {n_nodes} nodes")
    rng = make_rng(seed)
    m_low = int(np.floor(m))
    high_probability = m - m_low

    # Repeated-node list: each endpoint appears once per incident edge,
    # so uniform sampling from it is degree-proportional sampling.
    attachment_pool = []
    src_list = []
    dst_list = []

    # Seed clique of m_seed = ceil(m) + 1 nodes keeps early steps valid.
    m_seed = int(np.ceil(m)) + 1
    m_seed = min(m_seed, n_nodes)
    for u in range(m_seed):
        for v in range(u + 1, m_seed):
            src_list.append(u)
            dst_list.append(v)
            attachment_pool.extend((u, v))

    for new_node in range(m_seed, n_nodes):
        m_now = m_low + (1 if rng.uniform() < high_probability else 0)
        m_now = min(m_now, new_node)
        targets = set()
        while len(targets) < m_now:
            pick = attachment_pool[rng.integers(0, len(attachment_pool))]
            targets.add(int(pick))
        for target in targets:
            src_list.append(new_node)
            dst_list.append(target)
            attachment_pool.extend((new_node, target))

    return EdgeTable(src_list, dst_list, np.ones(len(src_list)),
                     n_nodes=n_nodes, directed=False, coalesce=False)
