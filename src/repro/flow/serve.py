"""Batched execution: N plans, one scoring pass per distinct request.

:func:`serve` is the service-shaped entry point the ROADMAP's
"score once, filter many ways" north star asks for: hand it a batch of
plans — many users, many deltas, many budgets, same sources — and it

1. compiles the batch (:mod:`repro.flow.compile`): each distinct
   source parsed once, each plan lowered to a score-cache key;
2. runs every *distinct* scoring request at most once, consulting the
   :class:`~repro.pipeline.store.ScoreStore` first and fanning cold
   requests out across worker processes (the same ``workers=`` knob
   and backend-spec reopening as the sweep executor; memory-only
   stores have worker results shipped back and adopted, exactly like
   :meth:`~repro.pipeline.executor.Pipeline.warm`);
3. applies each plan's filter and metrics serially — cheap compared
   to scoring, and share-budget plans over one scored table share a
   single ranking pass (``top_share_many``, bit-identical to
   per-plan filtering by contract).

Per-plan failures are *isolated*: any scoring, filtering or metric
exception — the deterministic Sinkhorn non-convergence (recorded as a
negative cache entry), a budget that the method rejects, an unexpected
bug in one method — is surfaced as that plan's :attr:`FlowResult.error`
instead of poisoning the batch; :meth:`Plan.run` re-raises it to match
the legacy single-call path bit for bit. A worker process dying
mid-batch degrades to a serial re-run of the lost scoring requests
(see :func:`repro.util.parallel.parallel_map`); it never surfaces a
raw ``BrokenProcessPool``. :func:`serve_compiled` is the
already-compiled entry point the long-lived daemon
(:mod:`repro.serve`) builds on to add compile-time isolation too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..backbones.doubly_stochastic import SinkhornConvergenceError
from ..graph.edge_table import EdgeTable
from ..obs.trace import span
from ..pipeline.executor import score_with_store
from ..pipeline.store import ScoreStore
from ..util.parallel import parallel_map, resolve_workers
from .compile import CompiledPlan, compile_plans
from .plan import Plan


@dataclass
class FlowResult:
    """Outcome of one plan in a served batch.

    ``backbone`` is the extracted edge table (``None`` when scoring
    failed), ``values`` the metric values aligned with the plan's
    metric specs, ``kept_share`` the backbone's share of the source's
    non-loop edges, and ``cache_key`` the score-store key the request
    resolved to. ``table`` references the resolved source table
    (shared across the batch, not a copy).
    """

    plan: Plan
    cache_key: str
    table: Optional[EdgeTable] = None
    backbone: Optional[EdgeTable] = None
    values: Tuple[float, ...] = ()
    kept_share: Optional[float] = None
    error: Optional[Exception] = field(default=None, repr=False)
    #: O(1) summary of the source table (always set for streamed
    #: plans, whose ``table`` is ``None`` by design).
    base: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def metrics(self) -> Dict[str, float]:
        """Metric values keyed by metric name."""
        keys = [spec.key for spec in self.plan.metric_specs]
        return dict(zip(keys, self.values))


def serve(plans: Sequence[Plan], store: Optional[ScoreStore] = None,
          workers: Optional[int] = None) -> List[FlowResult]:
    """Execute a batch of plans; see the module docstring.

    ``store`` defaults to a fresh memory-only :class:`ScoreStore`, so
    deduplication across the batch always happens; pass a persistent
    store (or backend spec via ``ScoreStore("…")``) to reuse scores
    across batches and processes. Results are returned in plan order.
    """
    plans = list(plans)
    if not plans:
        return []
    if store is None:
        store = ScoreStore()
    compiled = compile_plans(plans, store)
    return serve_compiled(compiled, store, workers)


def serve_compiled(compiled: Sequence[CompiledPlan],
                   store: ScoreStore,
                   workers: Optional[int] = None) -> List[FlowResult]:
    """Score, filter and measure an already-compiled batch.

    The execution half of :func:`serve`, split out so callers that
    compile with their own isolation policy (the daemon compiles per
    source group to contain unreadable sources) reuse the exact same
    scheduling, deduplication and per-plan error handling.
    """
    scored_by_key, error_by_key = _score_batch(compiled, store, workers)
    stream_backbones, stream_errors = _serve_streams(
        compiled, scored_by_key, error_by_key)
    shared = _shared_rankings(compiled, scored_by_key, error_by_key)
    results = []
    nonloop_m: Dict[int, int] = {}  # per shared table, computed once
    for index, item in enumerate(compiled):
        base = None if item.stream is None else item.stream.summary
        error = error_by_key.get(item.key)
        if error is None:
            error = stream_errors.get(index)
        if error is not None:
            results.append(FlowResult(plan=item.plan, cache_key=item.key,
                                      table=item.table, base=base,
                                      error=error))
            continue
        try:
            with span("plan.extract", key=item.key[:16]):
                backbone = shared.get(index)
                if backbone is None:
                    backbone = stream_backbones.get(index)
                if backbone is None:
                    backbone = _apply_filter(item,
                                             scored_by_key[item.key])
                if item.stream is not None:
                    base_m = item.stream.nonloop_m
                else:
                    base_m = nonloop_m.get(id(item.table))
                    if base_m is None:
                        base_m = item.table.without_self_loops().m
                        nonloop_m[id(item.table)] = base_m
                kept = backbone.m / max(base_m, 1)
                values = tuple(metric(backbone)
                               for metric in item.metrics)
        except Exception as error:
            # Filter/metric isolation: a budget the method rejects (or
            # a metric blowing up) fails this plan, not its batchmates.
            results.append(FlowResult(plan=item.plan, cache_key=item.key,
                                      table=item.table, base=base,
                                      error=error))
            continue
        results.append(FlowResult(plan=item.plan, cache_key=item.key,
                                  table=item.table, backbone=backbone,
                                  values=values, kept_share=kept,
                                  base=base))
    return results


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------

def _score_batch(compiled: Sequence[CompiledPlan], store: ScoreStore,
                 workers: Optional[int]):
    """Run every distinct scoring request at most once.

    Exactly one store lookup per distinct cache key (so hit-rate
    accounting matches the request count users see); cold keys are
    optionally fanned out across worker processes first, workers
    writing through the store's backend spec or shipping results back
    for adoption when the store is memory-only.
    """
    unique: Dict[str, CompiledPlan] = {}
    for item in compiled:
        found = unique.get(item.key)
        # Prefer an in-memory representative: when a streamed and an
        # in-memory plan share a key (same source, same scoring), the
        # one scoring pass must run on the materialized table so both
        # can consume it.
        if found is None or (found.stream is not None
                             and item.stream is None):
            unique[item.key] = item

    with span("flow.score", requests=len(compiled),
              unique=len(unique)):
        count = min(resolve_workers(workers), len(unique))
        if count > 1:
            pending = [item for key, item in unique.items()
                       if item.stream is None and key not in store]
            if len(pending) > 1:
                spec = store.worker_spec()
                payloads = [(item.method, item.table, spec, item.key)
                            for item in pending]
                # retry_serial: a worker killed mid-batch degrades to
                # scoring the lost requests in-process, never to a raw
                # BrokenProcessPool surfacing to the caller.
                outcomes = parallel_map(_score_remote, payloads,
                                        workers=min(count,
                                                    len(pending)),
                                        retry_serial=True)
                for worker_stats, extras in outcomes:
                    for key, entry in extras:
                        store.adopt(key, entry)
                    store.stats.merge(worker_stats)

        scored_by_key, error_by_key = {}, {}
        for key, item in unique.items():
            if item.stream is not None:
                # Streamed request: a warm cache answers with the full
                # ScoredEdges (the stream's fingerprint matches the
                # in-memory table's, so keys are shared); a miss is
                # served by pass 2 instead — streaming never
                # materializes the score array, so it cannot warm the
                # store itself.
                cached = store.get(key)
                if cached is not None:
                    scored_by_key[key] = cached
                continue
            try:
                scored_by_key[key] = score_with_store(
                    item.method, item.table, store, key=key)
            except Exception as error:
                # Per-plan isolation: deterministic failures (Sinkhorn
                # non-convergence) are negative-cached by the store;
                # any other scoring exception still fails only the
                # plans that share this key, never the batch.
                error_by_key[key] = error
    return scored_by_key, error_by_key


def _score_remote(payload) -> Tuple[object, tuple]:
    """Worker-side scoring (module-level for picklability).

    Mirrors the executor's worker contract: with a reopenable backend
    spec the worker writes straight through it; with a memory-only
    parent the worker ships its entries (scored tables and negative
    verdicts alike) back for adoption.
    """
    method, table, spec, key = payload
    store = ScoreStore(spec)
    try:
        score_with_store(method, table, store, key=key)
    except SinkhornConvergenceError:
        pass  # the negative entry is cached; the parent re-raises it
    except Exception:
        # Non-cacheable failure: ship nothing; the parent's serial
        # pass recomputes, hits the same error and isolates it per
        # plan instead of this worker poisoning the pool map.
        pass
    extras = tuple(store.memory_entries()) if spec is None else ()
    return store.stats, extras


# ----------------------------------------------------------------------
# Streaming (pass 2 of repro.stream)
# ----------------------------------------------------------------------

def _serve_streams(compiled: Sequence[CompiledPlan], scored_by_key,
                   error_by_key):
    """Run the out-of-core pass 2 once per stream for the plans the
    score cache could not answer.

    Plans over one stream are extracted together (each distinct cache
    key scored once per block); job ids are the compiled indexes, so
    the results drop straight into the per-plan loop. Per-job errors
    come back with in-memory precedence and isolation.
    """
    from ..stream import stream_extract

    by_stream: Dict[int, Tuple[object, List[Tuple[int, CompiledPlan]]]]
    by_stream = {}
    for index, item in enumerate(compiled):
        if (item.stream is None or item.key in scored_by_key
                or item.key in error_by_key):
            continue
        entry = by_stream.setdefault(id(item.stream),
                                     (item.stream, []))
        entry[1].append((index, item))
    backbones: Dict[int, EdgeTable] = {}
    errors: Dict[int, Exception] = {}
    for stream, members in by_stream.values():
        jobs = [(index, item.key, item.method, item.budget)
                for index, item in members]
        got, bad = stream_extract(stream, jobs)
        backbones.update(got)
        errors.update(bad)
    return backbones, errors


# ----------------------------------------------------------------------
# Filtering
# ----------------------------------------------------------------------

def _shared_rankings(compiled: Sequence[CompiledPlan], scored_by_key,
                     error_by_key) -> Dict[int, EdgeTable]:
    """One ranking pass per scored table for raw-share plan groups.

    Sweep-compiled batches put many ``rank="score"`` share budgets on
    one scored table; ranking once via ``top_share_many`` is
    bit-identical to per-plan ``top_share`` (the PR 2 contract) and
    kills the per-plan lexsort.
    """
    groups: Dict[str, List[int]] = {}
    for index, item in enumerate(compiled):
        budget = item.budget
        if (budget is not None and budget.rank == "score"
                and budget.share is not None
                and not item.method.parameter_free
                and item.key in scored_by_key):
            groups.setdefault(item.key, []).append(index)
    shared: Dict[int, EdgeTable] = {}
    for key, indexes in groups.items():
        shares = [compiled[i].budget.share for i in indexes]
        backbones = scored_by_key[key].top_share_many(shares)
        shared.update(zip(indexes, backbones))
    return shared


def _apply_filter(item: CompiledPlan, scored) -> EdgeTable:
    """One plan's filter phase on (possibly cached) scores.

    ``rank="method"`` (and no budget at all) routes through the
    method's own ``extract_from_scores`` — the exact code path
    ``method.extract`` runs, which is what makes plan-vs-legacy
    bit-identity hold by construction. ``rank="score"`` applies the
    raw-score filters share sweeps use.
    """
    budget = item.budget
    if budget is None or budget.rank == "method":
        kwargs = {} if budget is None else budget.budget_kwargs()
        return item.method.extract_from_scores(scored, **kwargs)
    if item.method.parameter_free:
        # Passing the budget through makes an explicit budget on a
        # parameter-free method raise exactly as rank="method" does,
        # instead of being silently ignored.
        return item.method.extract_from_scores(scored,
                                               **budget.budget_kwargs())
    if budget.threshold is not None:
        return scored.filter(budget.threshold)
    if budget.share is not None:
        return scored.top_share(budget.share)
    if budget.n_edges is not None:
        return scored.top_k(budget.n_edges)
    return item.method.extract_from_scores(scored)
