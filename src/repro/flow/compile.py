"""Lowering plans onto the pipeline: tables, fingerprints, cache keys.

Compilation is the step between the declarative :class:`Plan` and the
existing execution machinery (:func:`repro.pipeline.executor.
score_with_store`, backend spec strings, ``workers=``). For a batch of
plans it

1. resolves every *distinct* source exactly once — a file is hashed
   once and parsed at most once per batch, however many plans point at
   it, and a store's source binding (``bind_source`` /
   ``resolve_source``, persisted since PR 4) supplies the table
   fingerprint on warm runs so key derivation never re-hashes a parsed
   table;
2. builds the configured method instance and derives the score-cache
   key (:func:`~repro.pipeline.fingerprint.fingerprint_score_request`)
   — the key deliberately excludes extraction-only knobs, which is
   what lets N plans at different deltas or shares share one scoring
   pass;
3. resolves metric specs against the source table (so ``"coverage"``
   measures retention against the input).

The result, one :class:`CompiledPlan` per plan, is everything
:func:`repro.flow.serve` needs to schedule scoring and apply filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..backbones.base import BackboneMethod
from ..graph.edge_table import EdgeTable
from ..obs.trace import span
from ..pipeline.fingerprint import (fingerprint_score_request,
                                    fingerprint_table)
from ..pipeline.store import ScoreStore
from ..util.validation import require
from .plan import Plan
from .spec import FilterSpec, TableSource


@dataclass
class CompiledPlan:
    """A plan lowered onto concrete data and cache keys."""

    plan: Plan
    table: Optional[EdgeTable]  # None only in key-derivation mode
    table_fp: str
    source_fp: str
    method: BackboneMethod
    key: str  # score-cache key (table x score-relevant method config)
    budget: Optional[FilterSpec]
    metrics: Tuple


def compile_plans(plans: Sequence[Plan], store: Optional[ScoreStore],
                  need_tables: bool = True) -> List[CompiledPlan]:
    """Compile a batch, resolving each distinct source exactly once.

    ``store`` may be ``None`` (no source bindings are read or written);
    callers that want batch deduplication pass at least a memory-only
    :class:`ScoreStore`. ``need_tables=False`` is the key-derivation
    mode behind ``--explain``: when the store's source binding already
    supplies a file's table fingerprint, the file is not parsed at all
    (``table`` is ``None`` and metric specs stay unresolved).
    """
    # source spec -> (source_fp, table, table_fp); file sources are
    # hashable frozen specs, table sources memoize by table identity.
    by_spec: Dict[object, Tuple[str, Optional[EdgeTable], str]] = {}
    compiled = []
    with span("flow.compile", plans=len(plans)):
        _compile_into(plans, store, need_tables, by_spec, compiled)
    return compiled


def _compile_into(plans, store, need_tables, by_spec, compiled):
    for plan in plans:
        require(isinstance(plan, Plan),
                f"serve expects Plan objects, got {type(plan).__name__}")
        require(plan.method_spec is not None,
                "plan has no method; call .method(code) before running")
        memo_key = (id(plan.source.table)
                    if isinstance(plan.source, TableSource)
                    else plan.source)
        found = by_spec.get(memo_key)
        if found is None:
            found = _resolve_source(plan.source, store,
                                    need_table=need_tables)
            by_spec[memo_key] = found
        source_fp, table, table_fp = found
        method = plan.method_spec.build()
        key = fingerprint_score_request(table, method,
                                        table_fingerprint=table_fp)
        metrics = () if table is None else tuple(
            spec.build(table) for spec in plan.metric_specs)
        compiled.append(CompiledPlan(plan=plan, table=table,
                                     table_fp=table_fp,
                                     source_fp=source_fp, method=method,
                                     key=key, budget=plan.budget_spec,
                                     metrics=metrics))


def _resolve_source(source, store: Optional[ScoreStore],
                    need_table: bool = True):
    """(source fingerprint, table, table fingerprint) for one source.

    For table sources the source fingerprint *is* the table
    fingerprint. For file sources the store's source binding supplies
    the table fingerprint when known (warm runs never call
    :func:`fingerprint_table`, and key-only callers passing
    ``need_table=False`` skip the parse entirely); a fresh binding is
    recorded otherwise.
    """
    if isinstance(source, TableSource):
        table = source.table
        table_fp = fingerprint_table(table)
        return table_fp, table, table_fp
    source_fp = source.fingerprint()
    table_fp = None if store is None else store.resolve_source(source_fp)
    if table_fp is not None and not need_table:
        return source_fp, None, table_fp
    table = source.resolve()
    if table_fp is None:
        table_fp = fingerprint_table(table)
        if store is not None:
            store.bind_source(source_fp, table_fp)
    return source_fp, table, table_fp
