"""Lowering plans onto the pipeline: tables, fingerprints, cache keys.

Compilation is the step between the declarative :class:`Plan` and the
existing execution machinery (:func:`repro.pipeline.executor.
score_with_store`, backend spec strings, ``workers=``). For a batch of
plans it

1. resolves every *distinct* source exactly once — a file is hashed
   once and parsed at most once per batch, however many plans point at
   it, and a store's source binding (``bind_source`` /
   ``resolve_source``, persisted since PR 4) supplies the table
   fingerprint on warm runs so key derivation never re-hashes a parsed
   table;
2. builds the configured method instance and derives the score-cache
   key (:func:`~repro.pipeline.fingerprint.fingerprint_score_request`)
   — the key deliberately excludes extraction-only knobs, which is
   what lets N plans at different deltas or shares share one scoring
   pass;
3. resolves metric specs against the source table (so ``"coverage"``
   measures retention against the input).

The result, one :class:`CompiledPlan` per plan, is everything
:func:`repro.flow.serve` needs to schedule scoring and apply filters.
"""

from __future__ import annotations

from contextlib import suppress
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..backbones.base import BackboneMethod
from ..graph.edge_table import EdgeTable
from ..obs.trace import span
from ..pipeline.fingerprint import (fingerprint_score_request,
                                    fingerprint_table)
from ..pipeline.store import ScoreStore
from ..stream import (StreamingUnsupported, auto_threshold_bytes,
                      open_stream, supports_streaming)
from ..util.validation import require
from .plan import Plan
from .spec import FilterSpec, TableSource


@dataclass
class CompiledPlan:
    """A plan lowered onto concrete data and cache keys."""

    plan: Plan
    table: Optional[EdgeTable]  # None only in key-derivation mode
    table_fp: str
    source_fp: str
    method: BackboneMethod
    key: str  # score-cache key (table x score-relevant method config)
    budget: Optional[FilterSpec]
    metrics: Tuple
    #: The out-of-core handle when the plan compiled to the streaming
    #: path (``table`` is then ``None``; the cache key is unchanged —
    #: the stream's fingerprint equals the in-memory table's).
    stream: Optional[object] = field(default=None, repr=False)


def compile_plans(plans: Sequence[Plan], store: Optional[ScoreStore],
                  need_tables: bool = True,
                  allow_streaming: bool = True) -> List[CompiledPlan]:
    """Compile a batch, resolving each distinct source exactly once.

    ``store`` may be ``None`` (no source bindings are read or written);
    callers that want batch deduplication pass at least a memory-only
    :class:`ScoreStore`. ``need_tables=False`` is the key-derivation
    mode behind ``--explain``: when the store's source binding already
    supplies a file's table fingerprint, the file is not parsed at all
    (``table`` is ``None`` and metric specs stay unresolved).
    ``allow_streaming=False`` forces the in-memory path regardless of
    the plans' ``streaming`` setting (used by entry points that must
    materialize full score arrays, e.g. :meth:`Plan.scores`).
    """
    # source spec -> (source_fp, table, table_fp); file sources are
    # hashable frozen specs, table sources memoize by table identity.
    by_spec: Dict[object, Tuple[str, Optional[EdgeTable], str]] = {}
    streams: Dict[object, Tuple[str, object]] = {}
    compiled = []
    with span("flow.compile", plans=len(plans)):
        _compile_into(plans, store, need_tables, by_spec, streams,
                      compiled, allow_streaming)
    return compiled


def _compile_into(plans, store, need_tables, by_spec, streams, compiled,
                  allow_streaming):
    for plan in plans:
        require(isinstance(plan, Plan),
                f"serve expects Plan objects, got {type(plan).__name__}")
        require(plan.method_spec is not None,
                "plan has no method; call .method(code) before running")
        method = plan.method_spec.build()
        if _wants_stream(plan, method, need_tables, allow_streaming):
            source_fp, stream = _resolve_stream(plan.source, store,
                                                streams)
            key = fingerprint_score_request(
                None, method, table_fingerprint=stream.table_fp)
            metrics = tuple(spec.build(stream.summary)
                            for spec in plan.metric_specs)
            compiled.append(CompiledPlan(plan=plan, table=None,
                                         table_fp=stream.table_fp,
                                         source_fp=source_fp,
                                         method=method, key=key,
                                         budget=plan.budget_spec,
                                         metrics=metrics, stream=stream))
            continue
        memo_key = (id(plan.source.table)
                    if isinstance(plan.source, TableSource)
                    else plan.source)
        found = by_spec.get(memo_key)
        if found is None:
            found = _resolve_source(plan.source, store,
                                    need_table=need_tables)
            by_spec[memo_key] = found
        source_fp, table, table_fp = found
        key = fingerprint_score_request(table, method,
                                        table_fingerprint=table_fp)
        metrics = () if table is None else tuple(
            spec.build(table) for spec in plan.metric_specs)
        compiled.append(CompiledPlan(plan=plan, table=table,
                                     table_fp=table_fp,
                                     source_fp=source_fp, method=method,
                                     key=key, budget=plan.budget_spec,
                                     metrics=metrics))


def _wants_stream(plan, method, need_tables, allow_streaming) -> bool:
    """The compile decision: does this plan run out-of-core?

    ``streaming=True`` demands it (and raises
    :class:`StreamingUnsupported` for whole-graph methods);
    ``"auto"`` streams supported methods when the source file reaches
    :func:`auto_threshold_bytes`, silently staying in memory
    otherwise. Key-derivation mode (``need_tables=False``) never
    streams — it never touches the data at all when bindings are warm.
    """
    streaming = getattr(plan, "streaming", "auto")
    if streaming is False or not allow_streaming or not need_tables:
        return False
    if isinstance(plan.source, TableSource):
        require(streaming is not True,
                "streaming=True needs a file or remote source; an "
                "in-memory EdgeTable is already materialized")
        return False
    if streaming is True:
        if not supports_streaming(method):
            raise StreamingUnsupported(method)
        return True
    if not supports_streaming(method):
        return False
    size = _source_size(plan.source)
    return size is not None and size >= auto_threshold_bytes()


def _source_size(source) -> Optional[int]:
    """Source bytes for the ``"auto"`` decision; ``None`` = unknown."""
    try:
        return _stream_path(source).stat().st_size
    except (OSError, ValueError):
        return None


def _stream_path(source) -> Path:
    """The local file behind a source spec (fetching remote bytes)."""
    local = getattr(source, "local_path", None)
    if callable(local):
        return Path(local())
    path = getattr(source, "path", None)
    require(path is not None,
            f"cannot stream from {type(source).__name__}: it exposes "
            "neither a local path nor local_path()")
    return Path(path)


def _resolve_stream(source, store: Optional[ScoreStore], streams):
    """(source fingerprint, CanonicalStream) for one source, memoized.

    Pass 1 always runs — even on a warm store — because scoring needs
    the node aggregates and metrics need the table summary; what warm
    runs skip is pass-2 scoring (the store answers by cache key, and
    the stream's fingerprint matches the in-memory table's).
    """
    try:
        found = streams.get(source)
    except TypeError:  # unhashable third-party spec: no memoization
        found = None
    if found is not None:
        return found
    source_fp = source.fingerprint()
    fmt = getattr(source, "format", None)
    formatter = getattr(source, "_format", None)
    if fmt is None and callable(formatter):
        fmt = formatter()
    with span("flow.stream", source=source.describe()):
        stream = open_stream(_stream_path(source),
                             directed=getattr(source, "directed", True),
                             delimiter=getattr(source, "delimiter", ","),
                             format=fmt)
    if store is not None and store.resolve_source(source_fp) is None:
        store.bind_source(source_fp, stream.table_fp)
    found = (source_fp, stream)
    with suppress(TypeError):
        streams[source] = found
    return found


def _resolve_source(source, store: Optional[ScoreStore],
                    need_table: bool = True):
    """(source fingerprint, table, table fingerprint) for one source.

    For table sources the source fingerprint *is* the table
    fingerprint. For file sources the store's source binding supplies
    the table fingerprint when known (warm runs never call
    :func:`fingerprint_table`, and key-only callers passing
    ``need_table=False`` skip the parse entirely); a fresh binding is
    recorded otherwise.
    """
    if isinstance(source, TableSource):
        table = source.table
        table_fp = fingerprint_table(table)
        return table_fp, table, table_fp
    source_fp = source.fingerprint()
    table_fp = None if store is None else store.resolve_source(source_fp)
    if table_fp is not None and not need_table:
        return source_fp, None, table_fp
    table = source.resolve()
    if table_fp is None:
        table_fp = fingerprint_table(table)
        if store is not None:
            store.bind_source(source_fp, table_fp)
    return source_fp, table, table_fp
