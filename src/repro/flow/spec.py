"""Declarative, picklable building blocks of flow plans.

A :class:`~repro.flow.plan.Plan` is assembled from four kinds of spec,
each a small frozen object that *describes* work without doing any:

* **source specs** — where the edge table comes from.
  :class:`FileSource` wraps a path (``.csv``, ``.csv.gz`` or ``.npz``;
  ``file://`` URLs and ``Path`` objects are accepted) plus its parse
  options and is fingerprinted from the raw file bytes via
  :func:`repro.pipeline.fingerprint.fingerprint_file` — no parsing.
  :class:`TableSource` wraps an in-memory
  :class:`~repro.graph.edge_table.EdgeTable` and fingerprints its
  content. Other URL schemes route through the pluggable resolver
  registry in :mod:`repro.flow.sources` — ``http(s)://`` and
  ``kv://host:port/key`` ship with
  :class:`~repro.flow.sources.RemoteSource` (fetch, spool,
  fingerprint through the local-file path), and third parties add
  schemes with :func:`~repro.flow.sources.register_scheme`.
* :class:`MethodSpec` — a backbone method named by registry code plus
  constructor parameters (``MethodSpec.of("nc", delta=1.0)``; codes are
  case-insensitive). :class:`MethodInstance` wraps an already-built
  :class:`~repro.backbones.base.BackboneMethod` for callers that hold
  one; it stays picklable but cannot be serialized to JSON.
* :class:`FilterSpec` — at most one of ``threshold`` / ``share`` /
  ``n_edges`` plus a ``rank`` mode. ``rank="method"`` (the default)
  filters through the method's own
  :meth:`~repro.backbones.base.BackboneMethod.extract_from_scores`,
  reproducing ``method.extract`` bit for bit; ``rank="score"`` ranks
  raw scores the way share sweeps do (``ScoredEdges.top_share``),
  reproducing :func:`repro.evaluation.sweep.share_sweep`.
* metric specs — :class:`MetricSpec` names one of the registered
  metrics (resolved against the source table at run time, so
  ``"coverage"`` measures retention against the *input*);
  :class:`CallableMetric` wraps any picklable callable (e.g. the
  stability metric built from a stack of yearly tables).

Everything here survives ``pickle`` and — except for the two
explicitly in-memory escape hatches — round-trips through JSON, which
is what makes plans shippable artifacts (``repro flow run plan.json``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from ..backbones.base import BackboneMethod
from ..backbones.registry import get_method, method_codes
from ..graph.edge_table import EdgeTable
from ..graph.ingest import detect_format, read_edges
from ..pipeline.fingerprint import (fingerprint_file,
                                    fingerprint_source_request,
                                    fingerprint_table)
from ..pipeline.tasks import METRIC_BUILDERS, Metric
from ..util.validation import require


class PlanSerializationError(ValueError):
    """A plan holds in-memory objects that JSON cannot carry."""


# ----------------------------------------------------------------------
# Source specs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FileSource:
    """An edge file on disk plus the options it is parsed with.

    The fingerprint hashes the raw bytes (one sequential read, no
    parsing) combined with the parse options — byte-compatible with
    the source bindings the CLI ``sweep`` subcommand has stored since
    PR 4, so plans resolve old caches' bindings.
    """

    path: str
    directed: bool = True
    delimiter: str = ","
    format: Optional[str] = None  # autodetected from the suffix if None

    kind = "file"

    def __post_init__(self):
        if isinstance(self.path, os.PathLike):
            object.__setattr__(self, "path", os.fspath(self.path))
        require(isinstance(self.path, str) and self.path,
                "FileSource needs a non-empty path")

    def fingerprint(self) -> str:
        """Source-request digest from the raw file bytes (no parse)."""
        return fingerprint_source_request(
            fingerprint_file(self.path), directed=self.directed,
            delimiter=self.delimiter,
            format=self.format or detect_format(self.path))

    def resolve(self) -> EdgeTable:
        """Parse the file into an :class:`EdgeTable`."""
        return read_edges(self.path, directed=self.directed,
                          delimiter=self.delimiter, format=self.format)

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": "file", "path": self.path}
        if self.directed is not True:
            payload["directed"] = self.directed
        if self.delimiter != ",":
            payload["delimiter"] = self.delimiter
        if self.format is not None:
            payload["format"] = self.format
        return payload

    def describe(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (f"file {self.path} "
                f"({self.format or detect_format(self.path)}, {kind})")


@dataclass(frozen=True, eq=False)
class TableSource:
    """An in-memory :class:`EdgeTable` (fingerprinted by content)."""

    table: EdgeTable

    kind = "table"

    def fingerprint(self) -> str:
        return fingerprint_table(self.table)

    def resolve(self) -> EdgeTable:
        return self.table

    def to_json(self) -> Dict[str, object]:
        raise PlanSerializationError(
            "a plan over an in-memory EdgeTable cannot be saved to "
            "JSON; write the table to a file (write_edges) and build "
            "the plan from the path instead")

    def describe(self) -> str:
        kind = "directed" if self.table.directed else "undirected"
        return (f"in-memory table ({self.table.m} edges, "
                f"{self.table.n_nodes} nodes, {kind})")


def as_source(source, directed: bool = True, delimiter: str = ",",
              format: Optional[str] = None):
    """Coerce a user-facing source argument into a source spec.

    Accepts an :class:`EdgeTable`, an existing source spec (anything
    with ``fingerprint()`` / ``resolve()`` / ``describe()``), a path
    or ``Path``, or a URL whose scheme is registered in
    :mod:`repro.flow.sources` (``file://``, ``http(s)://``,
    ``kv://host:port/key`` out of the box). Unknown schemes raise a
    ``ValueError`` that enumerates the registered ones.
    """
    from .sources import is_source_spec, resolve_url

    if isinstance(source, (FileSource, TableSource)):
        return source
    if isinstance(source, EdgeTable):
        return TableSource(source)
    if isinstance(source, os.PathLike):
        source = os.fspath(source)
    if not isinstance(source, str) and is_source_spec(source):
        return source
    require(isinstance(source, str),
            f"cannot build a flow source from {type(source).__name__}; "
            "pass an EdgeTable, a path, a registered-scheme URL or a "
            "source spec")
    if "://" in source:
        return resolve_url(source, directed=directed,
                           delimiter=delimiter, format=format)
    return FileSource(path=source, directed=directed, delimiter=delimiter,
                      format=format)


def source_from_json(payload: Dict[str, object]):
    """Inverse of ``FileSource.to_json`` / ``RemoteSource.to_json``."""
    require(isinstance(payload, dict)
            and payload.get("kind") in ("file", "remote"),
            "plan JSON source must be a {'kind': 'file'|'remote', ...} "
            "mapping")
    if payload.get("kind") == "remote":
        from .sources import RemoteSource
        return RemoteSource(url=str(payload["url"]),
                            directed=bool(payload.get("directed", True)),
                            delimiter=str(payload.get("delimiter", ",")),
                            format=payload.get("format"))
    return FileSource(path=str(payload["path"]),
                      directed=bool(payload.get("directed", True)),
                      delimiter=str(payload.get("delimiter", ",")),
                      format=payload.get("format"))


# ----------------------------------------------------------------------
# Method specs
# ----------------------------------------------------------------------

def _canonical_code(code: str) -> str:
    """Resolve a registry code case-insensitively (``"nc"`` -> ``"NC"``)."""
    by_lower = {known.lower(): known for known in method_codes()}
    require(code.lower() in by_lower,
            f"unknown backbone code {code!r}; known codes: "
            f"{', '.join(method_codes())}")
    return by_lower[code.lower()]


@dataclass(frozen=True)
class MethodSpec:
    """A backbone method named symbolically: registry code + params."""

    code: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, method, **params):
        """``MethodSpec`` from a code string, or wrap a live instance."""
        if isinstance(method, BackboneMethod):
            require(not params,
                    "constructor params only apply to method codes; "
                    "configure the instance directly instead")
            return MethodInstance(method)
        if isinstance(method, (MethodSpec, MethodInstance)):
            require(not params,
                    "constructor params only apply to method codes")
            return method
        require(isinstance(method, str),
                f"method must be a registry code or a BackboneMethod, "
                f"got {type(method).__name__}")
        return cls(code=_canonical_code(method),
                   params=tuple(sorted(params.items())))

    def build(self) -> BackboneMethod:
        return get_method(self.code, **dict(self.params))

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"code": self.code}
        if self.params:
            payload["params"] = dict(self.params)
        return payload


@dataclass(frozen=True, eq=False)
class MethodInstance:
    """An already-configured method object (picklable, not JSON-able)."""

    method: BackboneMethod

    @property
    def code(self) -> str:
        return self.method.code

    def build(self) -> BackboneMethod:
        return self.method

    def to_json(self) -> Dict[str, object]:
        raise PlanSerializationError(
            "a plan holding a live method instance cannot be saved to "
            "JSON; build the plan with a registry code "
            "(.method('NC', delta=...)) instead")


def method_from_json(payload: Dict[str, object]) -> MethodSpec:
    """Inverse of ``MethodSpec.to_json``."""
    require(isinstance(payload, dict) and "code" in payload,
            "plan JSON method must be a {'code': ..., ...} mapping")
    params = payload.get("params") or {}
    require(isinstance(params, dict), "method params must be a mapping")
    return MethodSpec.of(str(payload["code"]), **params)


# ----------------------------------------------------------------------
# Filter specs
# ----------------------------------------------------------------------

#: Budget keywords a plan's ``.budget(...)`` / ``.run_many(...)`` accept.
BUDGET_KEYS = ("threshold", "share", "n_edges")


@dataclass(frozen=True)
class FilterSpec:
    """One budget (or none, meaning the method's default) plus ranking.

    ``rank="method"`` routes extraction through the method's own
    ``extract_from_scores`` — the exact code path ``method.extract``
    runs, so plan results are bit-identical to the legacy call by
    construction. ``rank="score"`` ranks the raw scores the way share
    sweeps always have (NC unadjusted, ties broken by weight then row),
    which is what sweep-compiled plan batches use.
    """

    threshold: Optional[float] = None
    share: Optional[float] = None
    n_edges: Optional[int] = None
    rank: str = "method"

    def __post_init__(self):
        given = [name for name in BUDGET_KEYS
                 if getattr(self, name) is not None]
        require(len(given) <= 1,
                f"give at most one of threshold/share/n_edges, "
                f"got {given}")
        require(self.rank in ("method", "score"),
                f"rank must be 'method' or 'score', got {self.rank!r}")
        if self.share is not None:
            require(0.0 <= self.share <= 1.0,
                    f"share must be in [0, 1], got {self.share}")

    def budget_kwargs(self) -> Dict[str, object]:
        """The non-``None`` budget as ``extract`` keyword arguments."""
        return {name: getattr(self, name) for name in BUDGET_KEYS
                if getattr(self, name) is not None}

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = dict(self.budget_kwargs())
        if self.rank != "method":
            payload["rank"] = self.rank
        return payload


def filter_from_json(payload: Dict[str, object]) -> FilterSpec:
    """Inverse of ``FilterSpec.to_json``."""
    require(isinstance(payload, dict), "plan JSON filter must be a mapping")
    unknown = set(payload) - set(BUDGET_KEYS) - {"rank"}
    require(not unknown, f"unknown filter fields {sorted(unknown)}")
    kwargs = {name: payload[name] for name in BUDGET_KEYS
              if payload.get(name) is not None}
    return FilterSpec(rank=str(payload.get("rank", "method")), **kwargs)


# ----------------------------------------------------------------------
# Metric specs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MetricSpec:
    """A registered metric by name, resolved against the source table."""

    name: str

    def __post_init__(self):
        require(self.name in METRIC_BUILDERS,
                f"unknown metric {self.name!r}; choose from "
                f"{sorted(METRIC_BUILDERS)}")

    @property
    def key(self) -> str:
        return self.name

    def build(self, base: EdgeTable) -> Metric:
        return METRIC_BUILDERS[self.name](base)

    def to_json(self) -> object:
        return self.name


@dataclass(frozen=True, eq=False)
class CallableMetric:
    """Any picklable backbone -> float callable (not JSON-able)."""

    metric: Callable[[EdgeTable], float]

    @property
    def key(self) -> str:
        return type(self.metric).__name__

    def build(self, base: EdgeTable) -> Metric:
        return self.metric

    def to_json(self) -> object:
        raise PlanSerializationError(
            "a plan holding a metric callable cannot be saved to JSON; "
            "use a named metric (e.g. 'density') instead")


def as_metric(spec) -> Union[MetricSpec, CallableMetric]:
    """Coerce a user-facing metric argument into a metric spec."""
    if isinstance(spec, (MetricSpec, CallableMetric)):
        return spec
    if isinstance(spec, str):
        return MetricSpec(spec)
    require(callable(spec),
            f"metrics must be names or callables, got "
            f"{type(spec).__name__}")
    return CallableMetric(spec)


def metrics_from_json(payload: Sequence[object]):
    """Inverse of the metrics list in plan JSON."""
    require(isinstance(payload, (list, tuple)),
            "plan JSON metrics must be a list of names")
    return tuple(MetricSpec(str(name)) for name in payload)
