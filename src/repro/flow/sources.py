"""Pluggable source-scheme resolvers for ``flow(source)``.

Historically ``flow("s3://…")`` died at a hard-coded gate that knew
about local paths and ``file://`` only. The gate is now a registry:
every URL scheme maps to a *resolver* — a callable turning the URL
plus parse options into a source spec (an object with
``fingerprint()`` / ``resolve()`` / ``describe()``) — and anyone can
add one::

    from repro.flow.sources import register_scheme

    def s3_resolver(url, *, directed, delimiter, format):
        return MyS3Source(url, directed, delimiter, format)

    register_scheme("s3", s3_resolver)

Built-in schemes:

- ``file://`` — stripped to a local :class:`~repro.flow.spec.FileSource`.
- ``http://`` / ``https://`` — :class:`RemoteSource`; the file is
  fetched with chunked ranged reads (falling back to one streamed
  ``GET`` when the server ignores ``Range``), spooled locally, then
  fingerprinted and parsed through the exact local-file code path.
- ``kv://host:port/key`` — :class:`RemoteSource` over an object
  stored in a :mod:`repro.net` KV server (see
  :func:`repro.net.put_object`), digest-verified end to end.

Because :class:`RemoteSource` fingerprints the *fetched bytes* with
the same :func:`~repro.pipeline.fingerprint.fingerprint_file` +
:func:`~repro.pipeline.fingerprint.fingerprint_source_request`
combination ``FileSource`` uses, a remote URL and a local copy of the
same file produce identical source fingerprints — warm caches carry
over no matter which side populated them.

Fetched bytes are spooled once per URL per process (under a temp
directory cleaned at exit). The spool is a byte-capped LRU: when the
spooled files together exceed :func:`fetch_cache_limit` (the
``REPRO_FETCH_CACHE_BYTES`` environment variable, default 256 MiB,
overridable with :func:`set_fetch_cache_limit`), the least recently
used spool files are deleted — the next access refetches them — so a
long-lived process touching many URLs holds bounded disk/tmpfs, not
one spool file per URL forever. Evictions are counted in the metrics
registry (``repro_fetch_spool_evictions_total``).
:func:`clear_fetch_cache` drops the whole spool, which tests use to
force refetches.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import os
import posixpath
import re
import shutil
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple
from urllib.error import URLError
from urllib.parse import urlsplit
from urllib.request import Request, urlopen

from ..graph.edge_table import EdgeTable
from ..graph.ingest import detect_format, read_edges
from ..obs.metrics import get_registry
from ..pipeline.fingerprint import (fingerprint_file,
                                    fingerprint_source_request)
from ..util.validation import require

#: Bytes per ranged HTTP request; large enough that edge tables move
#: in a handful of round trips, small enough to bound one read.
HTTP_CHUNK_BYTES = 8 * 1024 * 1024

#: Socket timeout per HTTP request.
HTTP_TIMEOUT = 30.0


class SourceFetchError(ValueError):
    """A remote source could not be fetched or verified."""


# ----------------------------------------------------------------------
# The resolver registry (the old scheme gate, made pluggable)
# ----------------------------------------------------------------------

#: scheme -> resolver(url, *, directed, delimiter, format) -> spec
_RESOLVERS: Dict[str, Callable] = {}
_REGISTRY_LOCK = threading.Lock()


def register_scheme(scheme: str, resolver: Callable,
                    replace: bool = False) -> None:
    """Register ``resolver`` for ``scheme://…`` source URLs.

    The resolver is called as ``resolver(url, *, directed,
    delimiter, format)`` and must return a source spec — any object
    with ``fingerprint()``, ``resolve()`` and ``describe()``.
    Re-registering an existing scheme requires ``replace=True``.
    """
    require(isinstance(scheme, str)
            and re.fullmatch(r"[a-z][a-z0-9+.-]*", scheme) is not None,
            f"bad scheme {scheme!r}: expected lowercase URL-scheme "
            "characters")
    require(callable(resolver), "resolver must be callable")
    with _REGISTRY_LOCK:
        if scheme in _RESOLVERS and not replace:
            raise ValueError(
                f"scheme {scheme!r} is already registered; pass "
                "replace=True to override it")
        _RESOLVERS[scheme] = resolver


def unregister_scheme(scheme: str) -> None:
    """Remove a registered scheme (no-op when absent)."""
    with _REGISTRY_LOCK:
        _RESOLVERS.pop(scheme, None)


def registered_schemes() -> Tuple[str, ...]:
    """Sorted scheme names the registry currently resolves."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_RESOLVERS))


def resolver_for(scheme: str) -> Optional[Callable]:
    with _REGISTRY_LOCK:
        return _RESOLVERS.get(scheme)


def resolve_url(url: str, *, directed: bool = True,
                delimiter: str = ",",
                format: Optional[str] = None):
    """Route a ``scheme://…`` source URL through the registry."""
    scheme = url.partition("://")[0].lower()
    resolver = resolver_for(scheme)
    if resolver is None:
        known = ", ".join(f"{name}://" for name in registered_schemes())
        raise ValueError(
            f"unsupported source scheme {scheme!r}; registered "
            f"schemes: {known} (plus bare local paths); add new ones "
            "with repro.flow.sources.register_scheme")
    return resolver(url, directed=directed, delimiter=delimiter,
                    format=format)


def is_source_spec(obj) -> bool:
    """True for any object satisfying the source-spec contract."""
    return all(callable(getattr(obj, name, None))
               for name in ("fingerprint", "resolve", "describe"))


# ----------------------------------------------------------------------
# The fetch spool
# ----------------------------------------------------------------------

#: Default byte cap on spooled fetches (overridden by the
#: ``REPRO_FETCH_CACHE_BYTES`` env var / :func:`set_fetch_cache_limit`).
DEFAULT_FETCH_CACHE_BYTES = 256 << 20

_SPOOL_LOCK = threading.Lock()
_SPOOL_DIR: Optional[Path] = None
#: url -> spool path, in least-recently-used-first order.
_SPOOLED: "OrderedDict[str, Path]" = OrderedDict()
#: url -> spooled byte size (kept in lockstep with ``_SPOOLED``).
_SPOOL_SIZES: Dict[str, int] = {}
_SPOOL_TOTAL = 0
_FETCH_CACHE_LIMIT: Optional[int] = None

_SPOOL_EVICTIONS = get_registry().counter(
    "repro_fetch_spool_evictions_total",
    "Fetch-spool files evicted by the LRU byte cap.")


def fetch_cache_limit() -> int:
    """The spool byte cap currently in force.

    :func:`set_fetch_cache_limit` wins over the
    ``REPRO_FETCH_CACHE_BYTES`` environment variable, which wins over
    :data:`DEFAULT_FETCH_CACHE_BYTES`.
    """
    if _FETCH_CACHE_LIMIT is not None:
        return _FETCH_CACHE_LIMIT
    text = os.environ.get("REPRO_FETCH_CACHE_BYTES")
    if text is not None:
        with contextlib.suppress(ValueError):
            return max(0, int(text))
    return DEFAULT_FETCH_CACHE_BYTES


def set_fetch_cache_limit(limit: Optional[int]) -> None:
    """Override the spool byte cap; ``None`` restores env/default.

    Lowering the cap takes effect at the next fetch (nothing is
    evicted eagerly).
    """
    global _FETCH_CACHE_LIMIT
    require(limit is None or (isinstance(limit, int) and limit >= 0),
            f"fetch cache limit must be a non-negative int or None, "
            f"got {limit!r}")
    _FETCH_CACHE_LIMIT = limit


def _spool_insert(url: str, dest: Path) -> None:
    """Record a fresh spool file and evict LRU entries over the cap.

    The just-inserted entry is never evicted — a file larger than the
    whole cap still has to be usable once — so the spool can transiently
    exceed the cap by one oversized file.
    """
    global _SPOOL_TOTAL
    size = dest.stat().st_size
    _SPOOLED[url] = dest
    _SPOOLED.move_to_end(url)
    _SPOOL_TOTAL += size - _SPOOL_SIZES.get(url, 0)
    _SPOOL_SIZES[url] = size
    limit = fetch_cache_limit()
    while _SPOOL_TOTAL > limit and len(_SPOOLED) > 1:
        stale_url, stale_path = next(iter(_SPOOLED.items()))
        if stale_url == url:  # pragma: no cover - len>1 guards this
            break
        del _SPOOLED[stale_url]
        _SPOOL_TOTAL -= _SPOOL_SIZES.pop(stale_url)
        stale_path.unlink(missing_ok=True)
        _SPOOL_EVICTIONS.inc()


def _spool_dir() -> Path:
    global _SPOOL_DIR
    if _SPOOL_DIR is None:
        _SPOOL_DIR = Path(tempfile.mkdtemp(prefix="repro-sources-"))
        atexit.register(shutil.rmtree, _SPOOL_DIR,
                        ignore_errors=True)
    return _SPOOL_DIR


def clear_fetch_cache() -> None:
    """Forget every spooled fetch (the next access refetches)."""
    global _SPOOL_TOTAL
    with _SPOOL_LOCK:
        _SPOOLED.clear()
        _SPOOL_SIZES.clear()
        _SPOOL_TOTAL = 0


def url_filename(url: str) -> str:
    """The file name a URL's path ends in (may be empty)."""
    return posixpath.basename(urlsplit(url).path)


def _fetch(url: str) -> Path:
    """Spooled local copy of ``url`` (fetched once per process)."""
    with _SPOOL_LOCK:
        cached = _SPOOLED.get(url)
        if cached is not None and cached.exists():
            _SPOOLED.move_to_end(url)  # freshen for LRU eviction
            return cached
        scheme = url.partition("://")[0].lower()
        name = re.sub(r"[^A-Za-z0-9._-]", "_",
                      url_filename(url)) or "source"
        digest = hashlib.sha256(url.encode("utf-8")).hexdigest()[:16]
        dest = _spool_dir() / f"{digest}-{name}"
        if scheme in ("http", "https"):
            _http_fetch(url, dest)
        elif scheme == "kv":
            _kv_fetch(url, dest)
        else:  # pragma: no cover - resolvers gate the schemes
            raise SourceFetchError(f"no fetcher for {url!r}")
        _spool_insert(url, dest)
        return dest


def _http_fetch(url: str, dest: Path,
                chunk_bytes: int = HTTP_CHUNK_BYTES,
                timeout: float = HTTP_TIMEOUT) -> None:
    """Download ``url`` with ranged reads, falling back to one GET.

    Servers answering ``206 Partial Content`` are read in
    ``chunk_bytes`` ranges (bounding per-request memory and making
    huge tables resumable-by-construction); a ``200`` means ``Range``
    was ignored and the body streams down whole.
    """
    part = dest.with_suffix(dest.suffix + ".part")
    offset = 0
    total: Optional[int] = None
    try:
        with open(part, "wb") as sink:
            while True:
                request = Request(url, headers={
                    "Range":
                        f"bytes={offset}-{offset + chunk_bytes - 1}"})
                with urlopen(request, timeout=timeout) as response:
                    status = response.getcode()
                    if status != 206:
                        # Range unsupported: one streamed full read.
                        sink.seek(0)
                        sink.truncate()
                        shutil.copyfileobj(response, sink)
                        break
                    data = response.read()
                    sink.write(data)
                    offset += len(data)
                    total = _content_range_total(
                        response.headers.get("Content-Range"), total)
                if total is not None:
                    if offset >= total:
                        break
                elif len(data) < chunk_bytes:
                    break
                if not data:
                    break
    except URLError as error:
        part.unlink(missing_ok=True)
        raise SourceFetchError(
            f"failed to fetch {url}: {error}") from error
    if total is not None and offset != total:
        part.unlink(missing_ok=True)
        raise SourceFetchError(
            f"short ranged download of {url}: got {offset} of "
            f"{total} bytes")
    part.replace(dest)


def _content_range_total(header: Optional[str],
                         fallback: Optional[int]) -> Optional[int]:
    """Total size from a ``Content-Range: bytes a-b/total`` header."""
    if header:
        _, _, text = header.partition("/")
        if text.strip().isdigit():
            return int(text)
    return fallback


def _kv_fetch(url: str, dest: Path) -> None:
    """Fetch an object from ``kv://host:port/key`` (digest-verified)."""
    parts = urlsplit(url)
    key = parts.path.lstrip("/")
    if not parts.netloc or ":" not in parts.netloc or not key:
        raise SourceFetchError(
            f"bad kv source URL {url!r}; expected kv://host:port/key")
    from ..net.objects import get_object
    from ..pipeline.backends import KVUnavailableError
    try:
        data = get_object(f"kv://{parts.netloc}", key)
    except KeyError as error:
        raise SourceFetchError(str(error)) from error
    except KVUnavailableError as error:
        raise SourceFetchError(
            f"kv server unreachable for {url}: {error}") from error
    dest.write_bytes(data)


# ----------------------------------------------------------------------
# RemoteSource: fetched bytes through the local-file code path
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RemoteSource:
    """A remote edge file (``http(s)://`` or ``kv://host:port/key``).

    Fetches once per process, then behaves exactly like a
    :class:`~repro.flow.spec.FileSource` over the spooled bytes —
    including the fingerprint, so remote and local copies of the same
    file share one cache lineage.
    """

    url: str
    directed: bool = True
    delimiter: str = ","
    format: Optional[str] = None  # autodetected from the URL if None

    kind = "remote"

    def __post_init__(self):
        require(isinstance(self.url, str) and "://" in self.url,
                "RemoteSource needs a scheme:// URL")

    def _format(self) -> str:
        return self.format or detect_format(url_filename(self.url))

    def local_path(self) -> Path:
        """The spooled local copy (fetching it on first use)."""
        return _fetch(self.url)

    def fingerprint(self) -> str:
        return fingerprint_source_request(
            fingerprint_file(self.local_path()),
            directed=self.directed, delimiter=self.delimiter,
            format=self._format())

    def resolve(self) -> EdgeTable:
        return read_edges(self.local_path(), directed=self.directed,
                          delimiter=self.delimiter,
                          format=self._format())

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": "remote",
                                      "url": self.url}
        if self.directed is not True:
            payload["directed"] = self.directed
        if self.delimiter != ",":
            payload["delimiter"] = self.delimiter
        if self.format is not None:
            payload["format"] = self.format
        return payload

    def describe(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"remote {self.url} ({self._format()}, {kind})"


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------

def _file_resolver(url, *, directed, delimiter, format):
    from .spec import FileSource
    return FileSource(path=url.partition("://")[2],
                      directed=directed, delimiter=delimiter,
                      format=format)


def _remote_resolver(url, *, directed, delimiter, format):
    return RemoteSource(url=url, directed=directed,
                        delimiter=delimiter, format=format)


register_scheme("file", _file_resolver)
register_scheme("http", _remote_resolver)
register_scheme("https", _remote_resolver)
register_scheme("kv", _remote_resolver)
