"""The declarative request: ``flow(source).method(...).budget(...)``.

A :class:`Plan` is a pure description — source spec, method spec,
filter spec, metric specs — with no parsed table, no scores and no file
handles inside. Builder methods return *new* plans (plans are frozen),
so partial plans are safely shared and specialized::

    base = flow("edges.csv", directed=False).method("nc")
    strict = base.budget(threshold=0.0)           # the paper's rule
    matched = base.budget(share=0.1)              # budget-matched

Nothing touches the data until :meth:`Plan.run` (one request),
:meth:`Plan.run_many` (a grid of variants) or :func:`repro.flow.serve`
(an arbitrary batch) — and compilation deduplicates scoring across a
batch, so N requests over one source at different deltas or shares
perform a single scoring pass.

Plans are picklable, JSON round-trippable when built from paths and
registry codes (:meth:`Plan.to_json` / :meth:`Plan.from_json` — the
``repro flow run plan.json`` artifact format) and fingerprinted:
:meth:`Plan.fingerprint` hashes the full request identity (source
bytes, method class + complete config, filter, metrics), while the
coarser score-cache key (which deliberately *excludes*
extraction-only knobs like NC's delta) appears in
:meth:`Plan.describe` / :meth:`Plan.explain`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..backbones.base import ScoredEdges
from ..pipeline.fingerprint import canonical_json
from ..util.validation import require
from .spec import (BUDGET_KEYS, FilterSpec, MethodSpec, as_metric,
                   as_source, filter_from_json, method_from_json,
                   metrics_from_json, source_from_json)

#: Version tag of the plan JSON artifact and the plan fingerprint.
PLAN_SCHEMA_VERSION = 1


def flow(source, directed: bool = True, delimiter: str = ",",
         format: Optional[str] = None, streaming="auto") -> "Plan":
    """Start a plan from a source: path, ``file://`` URL or EdgeTable.

    ``directed`` / ``delimiter`` / ``format`` apply to file sources
    exactly as in :func:`repro.graph.ingest.read_edges` (and are
    ignored for ``.npz``, which is self-describing).

    ``streaming`` chooses the execution path: ``False`` always
    materializes the table in memory, ``True`` always runs the
    out-of-core two-pass pipeline (:mod:`repro.stream`; compile raises
    :class:`~repro.stream.StreamingUnsupported` for methods that need
    the full graph), and ``"auto"`` (the default) streams supported
    methods when the source file is at least
    :func:`repro.stream.auto_threshold_bytes` large. Results and cache
    keys are identical either way — streaming is an execution knob,
    not part of the request identity.

    >>> from repro.flow import flow
    >>> plan = flow("edges.csv", directed=False).method("nc", delta=1.0)
    >>> plan = plan.budget(share=0.1).metrics("density", "coverage")
    >>> plan.method_spec.code
    'NC'
    """
    return Plan(source=as_source(source, directed=directed,
                                 delimiter=delimiter, format=format),
                streaming=_checked_streaming(streaming))


def _checked_streaming(streaming):
    require(streaming in (True, False, "auto"),
            f"streaming must be True, False or 'auto', "
            f"got {streaming!r}")
    return streaming


@dataclass(frozen=True, eq=False)
class Plan:
    """A fingerprinted backbone request; see the module docstring."""

    source: object
    method_spec: Optional[object] = None
    budget_spec: Optional[FilterSpec] = None
    metric_specs: Tuple[object, ...] = ()
    #: Execution knob (``True`` / ``False`` / ``"auto"``): whether the
    #: out-of-core pipeline runs. Deliberately excluded from
    #: :meth:`fingerprint` — both paths produce identical results.
    streaming: object = "auto"

    # ------------------------------------------------------------------
    # Builders (each returns a new Plan)
    # ------------------------------------------------------------------

    def method(self, method, **params) -> "Plan":
        """Choose the backbone method: a registry code (case-insensitive)
        plus constructor params, or a live ``BackboneMethod``."""
        return replace(self, method_spec=MethodSpec.of(method, **params))

    def budget(self, threshold: Optional[float] = None,
               share: Optional[float] = None,
               n_edges: Optional[int] = None,
               rank: str = "method") -> "Plan":
        """Choose the filter budget (at most one of the three).

        With no arguments the method's own default budget applies at
        run time (NC's ``score - delta*sdev > 0`` rule, HSS's salience
        threshold, ...). ``rank="score"`` selects the raw-score sweep
        ranking instead of the method's extraction rule.
        """
        spec = FilterSpec(threshold=threshold, share=share,
                          n_edges=n_edges, rank=rank)
        return replace(self, budget_spec=spec)

    def metrics(self, *specs) -> "Plan":
        """Attach metrics (names like ``"density"`` or callables) to be
        evaluated on the extracted backbone."""
        return replace(self, metric_specs=tuple(as_metric(spec)
                                                for spec in specs))

    # ------------------------------------------------------------------
    # Execution (the only methods that touch data)
    # ------------------------------------------------------------------

    def run(self, store=None, workers: Optional[int] = None):
        """Execute this plan; returns a :class:`repro.flow.FlowResult`.

        Scoring failures that the legacy path raises (e.g. Sinkhorn
        non-convergence) are raised here too.
        """
        from .serve import serve

        result = serve([self], store=store, workers=workers)[0]
        if result.error is not None:
            raise result.error
        return result

    def run_many(self, store=None, workers: Optional[int] = None,
                 **grid) -> List[object]:
        """Run a grid of variants of this plan as one deduplicated batch.

        Keyword arguments name either a budget knob (``share=[...]``,
        ``threshold=[...]``, ``n_edges=[...]``) or a method constructor
        parameter (``delta=[...]``); each maps to a sequence of values
        and the cartesian product is served. Because compilation
        deduplicates score work by cache key, k variants that differ
        only in extraction knobs (deltas, shares) trigger exactly one
        scoring pass.
        """
        from .serve import serve

        return serve(self.variants(**grid), store=store, workers=workers)

    def scores(self, store=None) -> ScoredEdges:
        """Score the source with the plan's method (cached; no filter)."""
        from .compile import compile_plans
        from ..pipeline.executor import score_with_store
        from ..pipeline.store import ScoreStore

        # Explicit None check: an *empty* ScoreStore is falsy (len 0)
        # but must still be used, not silently replaced.
        # allow_streaming=False: this entry point returns the full
        # in-memory ScoredEdges, which streaming never materializes.
        compiled = compile_plans(
            [self], ScoreStore() if store is None else store,
            allow_streaming=False)[0]
        return score_with_store(compiled.method, compiled.table,
                                store, key=compiled.key)

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------

    def variants(self, **grid) -> List["Plan"]:
        """The cartesian grid of plans :meth:`run_many` would serve."""
        plans: List[Plan] = [self]
        for name, values in grid.items():
            values = list(values)
            require(len(values) > 0,
                    f"variant grid for {name!r} is empty")
            plans = [plan._with(name, value)
                     for plan in plans for value in values]
        return plans

    def _with(self, name: str, value) -> "Plan":
        """One variant: replace a budget knob or a method parameter."""
        if name in BUDGET_KEYS:
            rank = self.budget_spec.rank if self.budget_spec else "method"
            return self.budget(rank=rank, **{name: value})
        require(isinstance(self.method_spec, MethodSpec),
                f"variant parameter {name!r} needs a symbolic method "
                "spec (build the plan with a registry code)")
        params = dict(self.method_spec.params)
        params[name] = value
        spec = MethodSpec(code=self.method_spec.code,
                          params=tuple(sorted(params.items())))
        return replace(self, method_spec=spec)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Hex digest of the full request identity.

        Two plans share a fingerprint exactly when running them must
        produce the same backbone and metrics: source content (file
        bytes + parse options, or table content), method class and
        complete configuration (extraction-only knobs *included* —
        unlike the score-cache key), filter spec and metric names.
        """
        identity = {
            "schema": PLAN_SCHEMA_VERSION,
            "source": self.source.fingerprint(),
            "method": (None if self.method_spec is None
                       else self.method_spec.build().describe()),
            "filter": (None if self.budget_spec is None
                       else self.budget_spec.to_json()),
            "metrics": [spec.key for spec in self.metric_specs],
        }
        digest = hashlib.sha256()
        digest.update(f"repro.plan/v{PLAN_SCHEMA_VERSION}".encode())
        digest.update(canonical_json(identity).encode())
        return digest.hexdigest()

    def describe(self, store=None) -> Dict[str, object]:
        """The compiled plan as data: fingerprints, config, cache key.

        Parses the source (cheaply; never scores) unless ``store``
        already holds a binding for it — a warm store answers from
        the file hash alone. This is what ``--explain`` prints.
        """
        from .compile import compile_plans
        from ..pipeline.store import ScoreStore

        compiled = compile_plans(
            [self], ScoreStore() if store is None else store,
            need_tables=False)[0]
        method = compiled.method
        budget = self.budget_spec or FilterSpec()
        payload: Dict[str, object] = {
            "plan": self.fingerprint(),
            "source": {
                "spec": self.source.describe(),
                "fingerprint": compiled.source_fp,
            },
            "method": method.describe(),
            "filter": dict(method.filter_spec(**budget.budget_kwargs()),
                           rank=budget.rank),
            "metrics": [spec.key for spec in self.metric_specs],
            "cache": {
                "table": compiled.table_fp,
                "score_key": compiled.key,
            },
        }
        return payload

    def explain(self, store=None) -> str:
        """Human-readable :meth:`describe` (the ``--explain`` output)."""
        info = self.describe(store=store)
        method = info["method"]
        config = ", ".join(f"{key}={value!r}" for key, value
                           in sorted(method["config"].items()))
        filt = dict(info["filter"])
        rank = filt.pop("rank")
        kind = filt.pop("kind")
        budget = ", ".join(f"{key}={value!r}"
                           for key, value in filt.items())
        lines = [
            f"plan        {info['plan']}",
            f"source      {info['source']['spec']}",
            f"            fingerprint {info['source']['fingerprint']}",
            f"method      {method['code']} — {method['name']}"
            + (f" ({config})" if config else ""),
            f"filter      {budget} [rank={rank}]"
            if budget else f"filter      {kind}",
            f"metrics     {', '.join(info['metrics']) or '(none)'}",
            f"cache       table {info['cache']['table']}",
            f"            score key {info['cache']['score_key']}",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON artifacts
    # ------------------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to the ``plan.json`` artifact format.

        Only plans built from file paths, registry method codes and
        named metrics serialize; in-memory escape hatches raise
        :class:`~repro.flow.spec.PlanSerializationError`.
        """
        require(self.method_spec is not None,
                "cannot serialize a plan without a method")
        payload = {
            "plan": PLAN_SCHEMA_VERSION,
            "source": self.source.to_json(),
            "method": self.method_spec.to_json(),
            "filter": (None if self.budget_spec is None
                       else self.budget_spec.to_json()),
            "metrics": [spec.to_json() for spec in self.metric_specs],
        }
        if self.streaming != "auto":
            payload["streaming"] = self.streaming
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Plan":
        """Inverse of :meth:`to_json` (validated)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"plan JSON is not valid JSON: {error}") \
                from None
        require(isinstance(payload, dict), "plan JSON must be an object")
        require(payload.get("plan") == PLAN_SCHEMA_VERSION,
                f"unsupported plan schema {payload.get('plan')!r} "
                f"(expected {PLAN_SCHEMA_VERSION})")
        plan = cls(source=source_from_json(payload["source"]),
                   method_spec=method_from_json(payload["method"]))
        if payload.get("filter") is not None:
            plan = replace(plan,
                           budget_spec=filter_from_json(payload["filter"]))
        if payload.get("metrics"):
            plan = replace(plan, metric_specs=metrics_from_json(
                payload["metrics"]))
        if "streaming" in payload:
            plan = replace(plan, streaming=_checked_streaming(
                payload["streaming"]))
        # Surface config errors (unknown codes, bad budgets) at load
        # time, not at run time on a remote worker.
        plan.method_spec.build()
        return plan
