"""One declarative, fingerprinted request API from source to backbone.

``repro.flow`` turns the library's four hand-wired entry points
(``method.extract``, ``Pipeline``, ``sweep_methods``, the CLI) into a
single shape: build a *plan* — a pure, picklable, fingerprinted
description of source, method, budget and metrics — and hand it (or a
whole batch of them) to the runtime, which lowers it onto the cached,
sharded pipeline. Nothing touches data until ``.run()``.

>>> from repro.flow import flow
>>> from repro.graph.edge_table import EdgeTable
>>> table = EdgeTable.from_pairs(
...     [(0, 1, 10.0), (0, 2, 10.0), (0, 3, 12.0), (0, 4, 12.0),
...      (0, 5, 12.0), (1, 2, 4.0)], directed=False)
>>> result = (flow(table).method("nc", delta=1.0)
...           .metrics("density", "edges").run())
>>> result.backbone.m == int(result.metrics["edges"])
True

The same plan shape scales from one request to a served batch:
``serve(plans, store=..., workers=...)`` deduplicates score work by
cache key, so N requests over one source at different deltas or
budgets perform exactly one scoring pass — the "score once, filter
many ways" regime of the paper's evaluation (Secs. V-D/E/F), served
concurrently. ``Plan.run_many`` builds such batches from parameter
grids, and :mod:`repro.flow.sweep` compiles whole paper sweeps
(Figs. 7-8, Table II) into plan batches.

Plans built from file paths and registry codes round-trip through
JSON (``Plan.to_json`` / ``Plan.from_json``), making them shippable
artifacts: ``repro flow run plan.json`` executes one, and
``repro backbone --explain`` prints the compiled form (source
fingerprint, method config, cache key) without executing anything.

Sources are pluggable by URL scheme (:mod:`repro.flow.sources`):
``flow("http://…/edges.npz")`` and ``flow("kv://host:port/edges.npz")``
fetch the bytes (ranged reads / digest-verified KV objects), spool
them locally and fingerprint them exactly like a local file — so the
score cache is shared between local and remote copies of the same
table — and :func:`register_scheme` adds new schemes without touching
this package.
"""

from ..stream import StreamingUnsupported
from .compile import CompiledPlan, compile_plans
from .plan import PLAN_SCHEMA_VERSION, Plan, flow
from .serve import FlowResult, serve
from .sources import (RemoteSource, register_scheme, registered_schemes,
                      unregister_scheme)
from .spec import (BUDGET_KEYS, CallableMetric, FileSource, FilterSpec,
                   MethodInstance, MethodSpec, MetricSpec,
                   PlanSerializationError, TableSource, as_metric,
                   as_source)
from .sweep import fold_sweep, run_sweep_plans, sweep_plans

__all__ = [
    "BUDGET_KEYS",
    "CallableMetric",
    "CompiledPlan",
    "FileSource",
    "FilterSpec",
    "FlowResult",
    "MethodInstance",
    "MethodSpec",
    "MetricSpec",
    "PLAN_SCHEMA_VERSION",
    "Plan",
    "PlanSerializationError",
    "RemoteSource",
    "StreamingUnsupported",
    "TableSource",
    "as_metric",
    "as_source",
    "compile_plans",
    "flow",
    "fold_sweep",
    "register_scheme",
    "registered_schemes",
    "run_sweep_plans",
    "serve",
    "sweep_plans",
    "unregister_scheme",
]
