"""Share sweeps as plan batches.

A share sweep — the workload behind paper Figs. 7-8 and Table II — is
just a structured batch of flow requests: for every budgeted method,
one plan per share with the raw-score sweep ranking
(``rank="score"``); for every parameter-free method, a single plan at
its natural share. :func:`sweep_plans` performs that compilation and
:func:`run_sweep_plans` serves the batch and folds the results back
into the classic ``{code: SweepSeries}`` mapping, bit-identical to
:func:`repro.evaluation.sweep.sweep_methods` — which now routes its
cached/sharded path through here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..backbones.base import BackboneMethod
from ..evaluation.sweep import DEFAULT_SHARES, SweepSeries
from .plan import Plan, flow
from .serve import FlowResult, serve


def sweep_plans(methods: Sequence[BackboneMethod], source,
                metric, shares: Sequence[float] = DEFAULT_SHARES
                ) -> List[Plan]:
    """Compile ``sweep_methods(methods, source, metric, shares)`` into
    a plan batch.

    ``source`` is anything :func:`repro.flow.flow` accepts (or an
    existing partial plan); ``metric`` is a registered metric name or
    a picklable callable. Plan order is methods-major, shares-minor —
    the order :func:`fold_sweep` consumes.
    """
    base = source if isinstance(source, Plan) else flow(source)
    base = base.metrics(metric)
    plans: List[Plan] = []
    for method in methods:
        stem = base.method(method)
        if method.parameter_free:
            plans.append(stem)
        else:
            plans.extend(stem.budget(share=share, rank="score")
                         for share in shares)
    return plans


def fold_sweep(methods: Sequence[BackboneMethod],
               results: Sequence[FlowResult],
               shares: Sequence[float] = DEFAULT_SHARES
               ) -> Dict[str, SweepSeries]:
    """Fold served :func:`sweep_plans` results into sweep series.

    Mirrors the legacy conventions exactly: parameter-free methods
    contribute one point at their natural share, and a method whose
    scoring is inapplicable (Sinkhorn non-convergence) maps to an
    empty series.
    """
    series: Dict[str, SweepSeries] = {}
    cursor = 0
    for method in methods:
        width = 1 if method.parameter_free else len(shares)
        chunk = results[cursor:cursor + width]
        cursor += width
        if any(result.error is not None for result in chunk):
            series[method.code] = SweepSeries(code=method.code, shares=[],
                                              values=[],
                                              parameter_free=True)
        elif method.parameter_free:
            series[method.code] = SweepSeries(
                code=method.code, shares=[chunk[0].kept_share],
                values=[chunk[0].values[0]], parameter_free=True)
        else:
            series[method.code] = SweepSeries(
                code=method.code, shares=list(shares),
                values=[result.values[0] for result in chunk],
                parameter_free=False)
    return series


def run_sweep_plans(methods: Sequence[BackboneMethod], source, metric,
                    shares: Sequence[float] = DEFAULT_SHARES,
                    store=None, workers: Optional[int] = None
                    ) -> Dict[str, SweepSeries]:
    """Compile, serve and fold a sweep in one call."""
    plans = sweep_plans(methods, source, metric, shares=shares)
    results = serve(plans, store=store, workers=workers)
    return fold_sweep(methods, results, shares=shares)
