"""Mapping between the NC parameter ``delta`` and significance levels.

The paper (Section IV) treats the delta filter as "roughly equivalent to a
one-tailed test of statistical significance", quoting delta values 1.28,
1.64 and 2.32 for p-values 0.1, 0.05 and 0.01.
"""

from __future__ import annotations

import numpy as np

from .distributions import normal_quantile, normal_sf

#: The paper's suggested settings (one-tailed p-value -> delta).
PAPER_DELTAS = {0.1: 1.28, 0.05: 1.64, 0.01: 2.32}


def delta_for_p_value(p: float) -> float:
    """One-tailed critical value: smallest delta with ``P(Z > delta) <= p``."""
    p = float(p)
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie strictly in (0, 1), got {p}")
    return float(normal_quantile(1.0 - p))


def p_value_for_delta(delta: float) -> float:
    """One-tailed p-value of a given delta."""
    return float(normal_sf(float(delta)))


def delta_table() -> np.ndarray:
    """Return the paper's (p, delta) pairs alongside the exact values.

    Columns: nominal p, the paper's rounded delta, the exact normal
    quantile. Used by the documentation tests to show the approximation
    the paper makes.
    """
    rows = []
    for p, rounded in sorted(PAPER_DELTAS.items()):
        rows.append((p, rounded, delta_for_p_value(p)))
    return np.asarray(rows, dtype=np.float64)
