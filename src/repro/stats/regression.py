"""Ordinary least squares, from scratch on numpy.

The paper's Quality criterion (Section V-E) fits
``log(N_ij + 1) = beta * X_ij + eps`` on the full edge set and on the
backbone-restricted edge set, and compares the two R². This module
provides the estimator, fit statistics and a small design-matrix builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from . import special

from ..util.validation import as_float_array, require


@dataclass(frozen=True)
class OLSResult:
    """Fitted OLS model."""

    coefficients: np.ndarray
    names: Tuple[str, ...]
    r_squared: float
    adj_r_squared: float
    n_obs: int
    stderr: np.ndarray = field(repr=False)
    residuals: np.ndarray = field(repr=False)
    fitted: np.ndarray = field(repr=False)

    def coefficient(self, name: str) -> float:
        """Return the estimate for the named regressor."""
        return float(self.coefficients[self.names.index(name)])

    def t_values(self) -> np.ndarray:
        """t-statistics of the coefficients."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.coefficients / self.stderr

    def p_values(self) -> np.ndarray:
        """Two-sided p-values of the coefficients."""
        df = self.n_obs - len(self.coefficients)
        if df <= 0:
            return np.full(len(self.coefficients), np.nan)
        t = self.t_values()
        out = np.empty_like(t)
        for i, value in enumerate(t):
            if not np.isfinite(value):
                out[i] = np.nan
            else:
                out[i] = special.betainc(df / 2.0, 0.5,
                                         df / (df + value * value))
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict responses for a new design matrix (without intercept
        column when the model was fit with ``add_intercept=True``; the
        intercept is re-added automatically)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if "intercept" in self.names and X.shape[1] == len(self.names) - 1:
            X = np.column_stack([np.ones(len(X)), X])
        require(X.shape[1] == len(self.names),
                f"X has {X.shape[1]} columns, model expects "
                f"{len(self.names)}")
        return X @ self.coefficients


def ols(y, X, add_intercept: bool = True,
        names: Optional[Sequence[str]] = None) -> OLSResult:
    """Fit ``y = X beta + eps`` by least squares.

    Parameters
    ----------
    y:
        Response vector of length ``n``.
    X:
        Regressor matrix ``(n, k)`` (a single vector is promoted to one
        column).
    add_intercept:
        Prepend a constant column (default). R² is then computed around
        the mean of ``y``; without an intercept, around zero.
    names:
        Optional regressor names for reporting.
    """
    y = as_float_array(y, "y")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[:, None]
    require(X.ndim == 2, "X must be a matrix")
    require(X.shape[0] == len(y),
            f"X has {X.shape[0]} rows but y has {len(y)}")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains non-finite values")
    k_original = X.shape[1]
    if names is None:
        names = tuple(f"x{i}" for i in range(k_original))
    else:
        names = tuple(names)
        require(len(names) == k_original,
                "names must have one entry per regressor column")
    if add_intercept:
        X = np.column_stack([np.ones(len(y)), X])
        names = ("intercept",) + names
    n, k = X.shape
    require(n >= k, f"need at least {k} observations, got {n}")

    coefficients, _, rank, _ = np.linalg.lstsq(X, y, rcond=None)
    fitted = X @ coefficients
    residuals = y - fitted
    ss_res = float((residuals ** 2).sum())
    baseline = y - y.mean() if add_intercept else y
    ss_tot = float((baseline ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    df = n - k
    if df > 0 and ss_tot > 0:
        adj = 1.0 - (1.0 - r_squared) * (n - 1) / df
    else:
        adj = float("nan")
    if df > 0 and rank == k:
        sigma_squared = ss_res / df
        xtx_inv = np.linalg.pinv(X.T @ X)
        stderr = np.sqrt(np.clip(np.diag(xtx_inv) * sigma_squared, 0, None))
    else:
        stderr = np.full(k, np.nan)
    return OLSResult(coefficients=coefficients, names=names,
                     r_squared=r_squared, adj_r_squared=adj, n_obs=n,
                     stderr=stderr, residuals=residuals, fitted=fitted)


def design_matrix(columns: Dict[str, np.ndarray]
                  ) -> Tuple[np.ndarray, List[str]]:
    """Stack named vectors into a design matrix.

    Returns ``(X, names)`` with columns in insertion order; all vectors
    must share one length.
    """
    names = list(columns)
    require(bool(names), "design_matrix needs at least one column")
    arrays = [as_float_array(columns[name], name) for name in names]
    length = len(arrays[0])
    for name, arr in zip(names, arrays):
        require(len(arr) == length,
                f"column {name!r} has length {len(arr)}, expected {length}")
    return np.column_stack(arrays), names
