"""Correlation coefficients used throughout the evaluation.

The paper reports three flavours:

* plain Pearson correlation (Table I, variance validation),
* log-log Pearson correlation (Fig. 6, local weight correlation),
* Spearman rank correlation (Fig. 8, stability).

Significance is assessed with the usual t-statistic, whose two-sided
p-value comes from the regularized incomplete beta function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from . import special

from ..util.validation import as_float_array, check_same_length
from .ranking import rankdata_average


@dataclass(frozen=True)
class CorrelationResult:
    """A correlation estimate with its two-sided p-value."""

    coefficient: float
    p_value: float
    n_obs: int


def pearson(x, y) -> float:
    """Pearson product-moment correlation of two equal-length vectors.

    Returns ``nan`` when either vector is constant or shorter than 2.
    """
    x = as_float_array(x, "x")
    y = as_float_array(y, "y")
    check_same_length("x", x, "y", y)
    if len(x) < 2:
        return float("nan")
    xc = x - x.mean()
    yc = y - y.mean()
    denominator = np.sqrt((xc ** 2).sum() * (yc ** 2).sum())
    if denominator == 0.0:
        return float("nan")
    return float(np.clip((xc * yc).sum() / denominator, -1.0, 1.0))


def pearson_test(x, y) -> CorrelationResult:
    """Pearson correlation with a two-sided t-test p-value."""
    x = as_float_array(x, "x")
    y = as_float_array(y, "y")
    check_same_length("x", x, "y", y)
    r = pearson(x, y)
    n = len(x)
    return CorrelationResult(r, _correlation_p_value(r, n), n)


def spearman(x, y) -> float:
    """Spearman rank correlation (average ranks, paper Section V-F)."""
    x = as_float_array(x, "x")
    y = as_float_array(y, "y")
    check_same_length("x", x, "y", y)
    if len(x) < 2:
        return float("nan")
    return pearson(rankdata_average(x), rankdata_average(y))


def spearman_test(x, y) -> CorrelationResult:
    """Spearman correlation with a two-sided t-test p-value."""
    x = as_float_array(x, "x")
    y = as_float_array(y, "y")
    check_same_length("x", x, "y", y)
    rho = spearman(x, y)
    return CorrelationResult(rho, _correlation_p_value(rho, len(x)), len(x))


def log_log_pearson(x, y) -> float:
    """Pearson correlation of ``log10`` values (paper Fig. 6).

    Pairs where either value is non-positive are dropped, matching how
    log-log scatter plots discard them.
    """
    x = as_float_array(x, "x")
    y = as_float_array(y, "y")
    check_same_length("x", x, "y", y)
    keep = (x > 0) & (y > 0)
    if keep.sum() < 2:
        return float("nan")
    return pearson(np.log10(x[keep]), np.log10(y[keep]))


def _correlation_p_value(r: float, n: int) -> float:
    """Two-sided p-value of a correlation via the exact beta identity."""
    if n < 3 or not np.isfinite(r):
        return float("nan")
    r = float(np.clip(r, -1.0, 1.0))
    if abs(r) == 1.0:
        return 0.0
    df = n - 2
    # |t| = |r| sqrt(df / (1 - r^2)); P(|T| > t) = I_{df/(df+t^2)}(df/2, 1/2)
    t_squared = r * r * df / (1.0 - r * r)
    return float(special.betainc(df / 2.0, 0.5, df / (df + t_squared)))
