"""Moment utilities: sample variance across repeated measurements and the
delta method.

Table I of the paper validates the NC variance model by correlating the
*predicted* variance of the transformed edge weight against the *observed*
variance across yearly snapshots; the observed side is the per-edge sample
variance computed here.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..util.validation import require


def sample_mean_variance(rows: Sequence[np.ndarray]):
    """Per-position sample mean and (ddof=1) variance across ``rows``.

    ``rows`` is a sequence of equal-length vectors — e.g. one vector of
    edge scores per year. Requires at least two rows.
    """
    require(len(rows) >= 2, "need at least two repeated measurements")
    stacked = np.vstack([np.asarray(row, dtype=np.float64) for row in rows])
    return stacked.mean(axis=0), stacked.var(axis=0, ddof=1)


def delta_method_variance(var_x, derivative):
    """First-order delta method: ``V[g(X)] ~= g'(mu)^2 V[X]``.

    ``derivative`` may be an array of evaluated derivatives or a callable
    applied to nothing (pre-evaluated arrays are the common case in the NC
    pipeline).
    """
    if isinstance(derivative, Callable):
        derivative = derivative()
    derivative = np.asarray(derivative, dtype=np.float64)
    var_x = np.asarray(var_x, dtype=np.float64)
    return var_x * derivative ** 2


def weighted_mean(values, weights):
    """Weighted arithmetic mean."""
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    require(values.shape == weights.shape,
            "values and weights must align")
    total = weights.sum()
    require(total > 0, "weights must not all be zero")
    return float((values * weights).sum() / total)
