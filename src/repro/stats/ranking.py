"""Rank transforms with average tie handling.

Spearman correlation — the paper's stability metric (Section V-F) — is the
Pearson correlation of average ranks, so tie handling must match the usual
"average" convention.
"""

from __future__ import annotations

import numpy as np

from ..util.validation import as_float_array


def rankdata_average(values) -> np.ndarray:
    """Return 1-based ranks, assigning tied values their average rank."""
    values = as_float_array(values, "values")
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(n, dtype=np.float64)
    sorted_values = values[order]
    # Group boundaries between runs of equal values.
    boundaries = np.flatnonzero(np.diff(sorted_values) != 0) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [n]])
    for start, stop in zip(starts, stops):
        average_rank = 0.5 * (start + stop - 1) + 1.0
        ranks[order[start:stop]] = average_rank
    return ranks
