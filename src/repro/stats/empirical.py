"""Empirical distribution summaries (paper Fig. 5).

The paper plots, for each network, the complementary cumulative
distribution of edge weights on log-log axes — the share of edges with
weight at least ``w``. These helpers compute the plotted series plus the
quantile facts quoted in the text (median vs. top-1% weights).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..util.validation import as_float_array


def ccdf_points(values) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(x, share_of_values >= x)`` over the distinct values."""
    values = as_float_array(values, "values")
    if len(values) == 0:
        return np.empty(0), np.empty(0)
    x = np.unique(values)
    sorted_values = np.sort(values)
    # index of the first element >= x gives the count below x.
    below = np.searchsorted(sorted_values, x, side="left")
    share_at_least = 1.0 - below / len(values)
    return x, share_at_least


def ecdf_points(values) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(x, share_of_values <= x)`` over the distinct values."""
    values = as_float_array(values, "values")
    if len(values) == 0:
        return np.empty(0), np.empty(0)
    x = np.unique(values)
    sorted_values = np.sort(values)
    upto = np.searchsorted(sorted_values, x, side="right")
    return x, upto / len(values)


def quantile(values, q: float) -> float:
    """Linear-interpolation quantile of ``values`` for ``q`` in [0, 1]."""
    values = as_float_array(values, "values")
    if len(values) == 0:
        return float("nan")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    return float(np.quantile(values, q))


def weight_spread_summary(values) -> Dict[str, float]:
    """Summary facts the paper quotes about weight distributions.

    Returns the median of positive values, the top-1% threshold, and the
    span in orders of magnitude between the smallest and largest positive
    value.
    """
    values = as_float_array(values, "values")
    positive = values[values > 0]
    if len(positive) == 0:
        return {"median": float("nan"), "top_1pct": float("nan"),
                "orders_of_magnitude": float("nan")}
    return {
        "median": float(np.median(positive)),
        "top_1pct": float(np.quantile(positive, 0.99)),
        "orders_of_magnitude": float(np.log10(positive.max())
                                     - np.log10(positive.min())),
    }
