"""Special functions with a pure-Python fallback when scipy is absent.

The library needs five pieces of ``scipy.special`` — ``erf``, ``erfc``,
``erfinv``, ``gammaln`` and the regularized incomplete beta
``betainc`` — and nothing else. When scipy is installed this module
re-exports the scipy implementations unchanged (bit-identical results,
C speed). Without scipy it substitutes stdlib-``math``-based
equivalents accurate to ~1e-13 relative error: ``math.erf``/``erfc``/
``lgamma`` vectorized, a Newton-polished Winitzki initial guess for
``erfinv``, and the classic Lentz continued-fraction evaluation of the
incomplete beta (Numerical Recipes 6.4).

The fallbacks exist so the whole backboning stack — NC scoring, the
statistics substrate, every experiment — keeps running on a
numpy-only install; the shortest-path engine already degrades the same
way (:mod:`repro.graph.sp_engine`). They are markedly slower (pure
Python per element), which is acceptable for the no-scipy CI lane and
emergency deployments, not for production scoring.

``HAVE_SCIPY`` reports which implementation is live; the ``_fallback_*``
names are always defined so tests can compare them against scipy when
both are available.
"""

from __future__ import annotations

import math

import numpy as np

try:
    from scipy import special as _scipy_special
except ImportError:
    _scipy_special = None

#: True when the scipy implementations are in use.
HAVE_SCIPY = _scipy_special is not None

#: Iteration cap for the incomplete-beta continued fraction.
_BETACF_MAX_ITERATIONS = 300
#: Relative convergence tolerance of the continued fraction.
_BETACF_EPS = 3e-15
#: Floor keeping Lentz denominators away from zero.
_BETACF_FPMIN = 1e-300


def _vectorized(scalar_func):
    """numpy-broadcasting wrapper returning scalars for scalar input."""
    vectorized = np.vectorize(scalar_func, otypes=[np.float64])

    def wrapper(*args):
        result = vectorized(*args)
        if result.ndim == 0:
            return float(result)
        return result

    return wrapper


def _erfinv_scalar(y: float) -> float:
    """Inverse error function via Winitzki's guess + Newton polish."""
    if math.isnan(y):
        return math.nan
    if y <= -1.0:
        return -math.inf if y == -1.0 else math.nan
    if y >= 1.0:
        return math.inf if y == 1.0 else math.nan
    if y == 0.0:
        return 0.0
    a = 0.147
    log_term = math.log1p(-y * y)
    t = 2.0 / (math.pi * a) + log_term / 2.0
    x = math.copysign(math.sqrt(math.sqrt(t * t - log_term / a) - t), y)
    # Newton's method on erf(x) - y; the guess is already ~2e-3
    # accurate, so three steps reach double precision.
    half_sqrt_pi = math.sqrt(math.pi) / 2.0
    for _ in range(3):
        error = math.erf(x) - y
        x -= error * half_sqrt_pi * math.exp(min(x * x, 700.0))
    return x


def _betacf(a: float, b: float, x: float) -> float:
    """Lentz continued fraction for the incomplete beta (NR 6.4)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _BETACF_FPMIN:
        d = _BETACF_FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _BETACF_MAX_ITERATIONS + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _BETACF_FPMIN:
            d = _BETACF_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _BETACF_FPMIN:
            c = _BETACF_FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _BETACF_FPMIN:
            d = _BETACF_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _BETACF_FPMIN:
            c = _BETACF_FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _BETACF_EPS:
            break
    return h


def _betainc_scalar(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta ``I_x(a, b)`` for ``a, b > 0``."""
    if math.isnan(a) or math.isnan(b) or math.isnan(x):
        return math.nan
    if a <= 0.0 or b <= 0.0:
        return math.nan
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                 + a * math.log(x) + b * math.log1p(-x))
    front = math.exp(log_front)
    # The continued fraction converges fastest below the distribution
    # mean; use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


_fallback_erf = _vectorized(math.erf)
_fallback_erfc = _vectorized(math.erfc)
_fallback_gammaln = _vectorized(math.lgamma)
_fallback_erfinv = _vectorized(_erfinv_scalar)
_fallback_betainc = _vectorized(_betainc_scalar)


if HAVE_SCIPY:
    erf = _scipy_special.erf
    erfc = _scipy_special.erfc
    erfinv = _scipy_special.erfinv
    gammaln = _scipy_special.gammaln
    betainc = _scipy_special.betainc
else:
    erf = _fallback_erf
    erfc = _fallback_erfc
    erfinv = _fallback_erfinv
    gammaln = _fallback_gammaln
    betainc = _fallback_betainc

__all__ = ["HAVE_SCIPY", "betainc", "erf", "erfc", "erfinv", "gammaln"]
