"""Probability distributions used by the Noise-Corrected null model.

The NC backbone needs three pieces of distribution theory (paper Section
IV):

* the **binomial** edge-weight model ``N_ij ~ Binomial(N.., P_ij)``,
* the **beta** conjugate prior/posterior for ``P_ij`` with a
  method-of-moments parameterization (paper Eqs. 5–8),
* the **hypergeometric**-motivated prior moments of ``P_ij``.

Only moments, densities and tail areas actually used by the library are
implemented; the incomplete beta and error functions come from
:mod:`repro.stats.special` (scipy when installed, pure-Python
fallbacks otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from . import special

from ..util.validation import check_positive, check_probability


# ---------------------------------------------------------------------------
# Normal helpers
# ---------------------------------------------------------------------------

_SQRT2 = np.sqrt(2.0)


def normal_cdf(x):
    """Standard normal cumulative distribution function."""
    return 0.5 * (1.0 + special.erf(np.asarray(x, dtype=np.float64) / _SQRT2))


def normal_sf(x):
    """Standard normal survival function ``P(Z > x)``."""
    return 0.5 * special.erfc(np.asarray(x, dtype=np.float64) / _SQRT2)


def normal_quantile(p):
    """Inverse standard normal CDF."""
    p = np.asarray(p, dtype=np.float64)
    if np.any((p <= 0) | (p >= 1)):
        raise ValueError("quantile probabilities must lie strictly in (0, 1)")
    return _SQRT2 * special.erfinv(2.0 * p - 1.0)


# ---------------------------------------------------------------------------
# Beta distribution
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Beta:
    """A ``BETA[alpha, beta]`` distribution on the unit interval."""

    alpha: float
    beta: float

    def __post_init__(self):
        check_positive(self.alpha, "alpha")
        check_positive(self.beta, "beta")

    @property
    def mean(self) -> float:
        """Paper Eq. 5: ``alpha / (alpha + beta)``."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def variance(self) -> float:
        """Paper Eq. 6."""
        total = self.alpha + self.beta
        return (self.alpha * self.beta) / (total ** 2 * (total + 1.0))

    def pdf(self, x):
        """Probability density at ``x``."""
        x = np.asarray(x, dtype=np.float64)
        log_norm = (special.gammaln(self.alpha + self.beta)
                    - special.gammaln(self.alpha)
                    - special.gammaln(self.beta))
        with np.errstate(divide="ignore", invalid="ignore"):
            log_pdf = (log_norm + (self.alpha - 1.0) * np.log(x)
                       + (self.beta - 1.0) * np.log1p(-x))
        return np.where((x < 0) | (x > 1), 0.0, np.exp(log_pdf))

    def cdf(self, x):
        """Cumulative distribution (regularized incomplete beta)."""
        x = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
        return special.betainc(self.alpha, self.beta, x)

    def posterior(self, successes: float, failures: float) -> "Beta":
        """Conjugate update after binomial evidence (paper Eq. 4)."""
        if successes < 0 or failures < 0:
            raise ValueError("evidence counts must be non-negative")
        return Beta(self.alpha + successes, self.beta + failures)


def beta_from_moments(mean, variance) -> np.ndarray:
    """Method-of-moments ``(alpha, beta)`` (paper Eqs. 7 and 8).

    Works element-wise on arrays; returns a stacked array of shape
    ``(2, ...)``. Raises when the requested variance is unattainable for a
    beta distribution (``variance >= mean * (1 - mean)``), which would
    yield non-positive shape parameters.
    """
    mean = np.asarray(mean, dtype=np.float64)
    variance = np.asarray(variance, dtype=np.float64)
    if np.any((mean <= 0) | (mean >= 1)):
        raise ValueError("mean must lie strictly inside (0, 1)")
    if np.any(variance <= 0):
        raise ValueError("variance must be positive")
    if np.any(variance >= mean * (1.0 - mean)):
        raise ValueError("variance too large for a beta distribution")
    alpha = (mean ** 2 / variance) * (1.0 - mean) - mean
    beta = mean * ((1.0 - mean) ** 2 / variance + 1.0) - 1.0
    return np.stack([alpha, beta])


# ---------------------------------------------------------------------------
# Binomial distribution
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Binomial:
    """A binomial distribution with (possibly non-integer) trial count.

    The NC model uses ``n = N..``, the grand total of edge weights, which
    for real-world count data is a float; the regularized incomplete beta
    extends tail areas continuously in ``n``.
    """

    n: float
    p: float

    def __post_init__(self):
        check_positive(self.n, "n")
        check_probability(self.p, "p")

    @property
    def mean(self) -> float:
        return self.n * self.p

    @property
    def variance(self) -> float:
        """Paper Eq. 2: ``n * p * (1 - p)``."""
        return self.n * self.p * (1.0 - self.p)

    def sf(self, k):
        """Upper tail ``P(X >= k)`` via the incomplete beta identity.

        For integer ``n`` and ``k`` this matches the exact binomial sum
        ``P(X >= k) = I_p(k, n - k + 1)``.
        """
        k = np.asarray(k, dtype=np.float64)
        out = np.ones_like(k)
        inside = (k > 0) & (k <= self.n)
        if self.p == 0.0:
            return np.where(k <= 0, 1.0, 0.0)
        if self.p == 1.0:
            return np.where(k <= self.n, 1.0, 0.0)
        out = np.where(k > self.n, 0.0, out)
        k_in = np.where(inside, k, 1.0)
        tail = special.betainc(k_in, self.n - k_in + 1.0, self.p)
        return np.where(inside, tail, out)

    def cdf(self, k):
        """Lower tail ``P(X <= k)`` (continuous extension)."""
        k = np.asarray(k, dtype=np.float64)
        return 1.0 - self.sf(k + 1.0)


def binomial_variance(n, p):
    """Vectorized Eq. 2, ``V[N_ij] = N.. * P_ij * (1 - P_ij)``."""
    n = np.asarray(n, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    return n * p * (1.0 - p)


# ---------------------------------------------------------------------------
# Hypergeometric prior moments
# ---------------------------------------------------------------------------

def hypergeometric_prior_moments(out_strength, in_strength, grand_total):
    """Prior mean and variance of ``P_ij`` (paper Section IV).

    Edge generation is imagined as node ``i`` drawing destination ``j`` at
    random each time it gains a unit of weight, which yields

    * ``E[P_ij] = N_i. * N_.j / N..^2``
    * ``V[P_ij] = N_i. N_.j (N.. - N_i.)(N.. - N_.j) / (N..^4 (N.. - 1))``

    Works element-wise; returns ``(mean, variance)`` arrays.
    """
    ni = np.asarray(out_strength, dtype=np.float64)
    nj = np.asarray(in_strength, dtype=np.float64)
    n = float(grand_total)
    check_positive(n, "grand_total")
    if n <= 1.0:
        raise ValueError("grand_total must exceed 1 for a finite variance")
    mean = (ni * nj) / n ** 2
    variance = (ni * nj * (n - ni) * (n - nj)) / (n ** 4 * (n - 1.0))
    return mean, variance
