"""Statistics substrate: distributions, correlations, OLS, empirical CDFs."""

from .correlation import (CorrelationResult, log_log_pearson, pearson,
                          pearson_test, spearman, spearman_test)
from .distributions import (Beta, Binomial, beta_from_moments,
                            binomial_variance, hypergeometric_prior_moments,
                            normal_cdf, normal_quantile, normal_sf)
from .empirical import (ccdf_points, ecdf_points, quantile,
                        weight_spread_summary)
from .moments import (delta_method_variance, sample_mean_variance,
                      weighted_mean)
from .ranking import rankdata_average
from .regression import OLSResult, design_matrix, ols
from .significance import (PAPER_DELTAS, delta_for_p_value, delta_table,
                           p_value_for_delta)

__all__ = [
    "Beta",
    "Binomial",
    "CorrelationResult",
    "OLSResult",
    "PAPER_DELTAS",
    "beta_from_moments",
    "binomial_variance",
    "ccdf_points",
    "delta_for_p_value",
    "delta_method_variance",
    "delta_table",
    "design_matrix",
    "ecdf_points",
    "hypergeometric_prior_moments",
    "log_log_pearson",
    "normal_cdf",
    "normal_quantile",
    "normal_sf",
    "ols",
    "p_value_for_delta",
    "pearson",
    "pearson_test",
    "quantile",
    "rankdata_average",
    "sample_mean_variance",
    "spearman",
    "spearman_test",
    "weight_spread_summary",
    "weighted_mean",
]
