"""Command-line interface: thin builders over :mod:`repro.flow` plans.

Every extraction-shaped subcommand (``backbone``, ``score``,
``sweep``) compiles its arguments into a declarative flow plan and
runs it — the CLI adds no execution logic of its own, so its output
is bit-identical to the library API by construction. ``repro backbone
--explain`` prints the compiled plan (source fingerprint, method
config, cache key) without executing, and ``repro flow run plan.json``
executes a plan saved as a JSON artifact (``Plan.to_json``).

Every subcommand detects the file format from the suffix: ``.csv``
(plain text, ``src,dst,weight`` with a header), ``.csv.gz`` (the same,
gzip-compressed) and ``.npz`` (the binary columnar format, which also
stores directedness, labels and the exact node count). ``repro
convert`` translates between them.

Examples
--------
::

    python -m repro.cli backbone edges.csv out.csv --method NC --delta 1.64
    python -m repro.cli backbone edges.npz out.npz --method DF --share 0.1
    python -m repro.cli backbone edges.csv out.csv --explain
    python -m repro.cli score edges.csv.gz scored.csv --method NC
    python -m repro.cli info edges.npz
    python -m repro.cli convert edges.csv edges.npz
    python -m repro.cli sweep edges.csv --metric density --workers -1 \
        --cache-dir .repro-cache
    python -m repro.cli flow run plan.json --output backbone.csv
    python -m repro.cli obs trace plan.json --cache-dir .repro-cache
    python -m repro.cli obs metrics --port 8710
    python -m repro.cli cache stats .repro-cache
    python -m repro.cli cache gc .repro-cache --max-bytes 100000000
    python -m repro.cli cache migrate .repro-cache scores.sqlite
    python -m repro.cli net serve --port 8711
    python -m repro.cli net put 127.0.0.1:8711 edges.npz edges.npz
    python -m repro.cli backbone kv://127.0.0.1:8711/edges.npz out.csv \
        --cache-dir kv://127.0.0.1:8711

Cache locations (``--cache-dir`` and the ``cache`` subcommands) accept
a directory path, a ``.sqlite``/``.db`` file, or an explicit
``sqlite://``/``dir://``/``kv://host:port`` spec; input paths also
accept ``http(s)://`` and ``kv://host:port/key`` source URLs.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from typing import Optional, Sequence

from .backbones.registry import get_method, method_codes
from .evaluation.coverage import coverage
from .graph.ingest import detect_format, read_edges, write_edges
from .graph.metrics import density

#: Methods whose configuration takes the --delta strictness knob.
_DELTA_CODES = ("NC", "NCp")

#: --streaming choice -> the flow() knob.
_STREAMING_MODES = {"auto": "auto", "always": True, "never": False}

_FORMAT_EPILOG = """\
file formats (detected from the suffix on every subcommand):
  .csv      src,dst,weight text with a header row; endpoints may be
            integer indices or string labels
  .csv.gz   the same, gzip-compressed (transparent on read and write)
  .npz      binary columnar format: fastest to load, and the only one
            that stores directedness, labels and the exact node count
            (so --directed is ignored for .npz input)

use `repro convert` to translate between formats.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Network backboning (Coscia & Neffke, ICDE 2017)",
        epilog=_FORMAT_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    commands = parser.add_subparsers(dest="command", required=True)

    backbone = commands.add_parser(
        "backbone", help="extract a backbone from an edge list",
        epilog=_FORMAT_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    _add_io_arguments(backbone)
    backbone.add_argument("--method", default="NC",
                          choices=method_codes(),
                          help="backbone method code (default NC)")
    backbone.add_argument("--delta", type=float, default=1.64,
                          help="NC delta (standard deviations; "
                               "default 1.64 ~ p<0.05)")
    group = backbone.add_mutually_exclusive_group()
    group.add_argument("--threshold", type=float,
                       help="keep edges with score above this value")
    group.add_argument("--share", type=float,
                       help="keep this share of edges (0..1)")
    group.add_argument("--n-edges", type=int,
                       help="keep exactly this many edges")
    backbone.add_argument("--streaming", default="auto",
                          choices=("auto", "always", "never"),
                          help="out-of-core scoring: 'always' streams "
                               "the file in O(nodes) memory (NC/NCp/DF/"
                               "NT only), 'never' loads it whole, "
                               "'auto' streams supported methods above "
                               "a size threshold (default auto)")
    backbone.add_argument("--cache-dir",
                          help="scored-table cache location (directory, "
                               ".sqlite file or spec); repeated "
                               "extractions skip rescoring")
    backbone.add_argument("--explain", action="store_true",
                          help="print the compiled plan (source "
                               "fingerprint, method config, cache key) "
                               "without executing; with a warm "
                               "--cache-dir the file is not even parsed")

    score = commands.add_parser(
        "score", help="write per-edge scores without filtering")
    _add_io_arguments(score)
    score.add_argument("--method", default="NC", choices=method_codes())
    score.add_argument("--delta", type=float, default=1.64)

    info = commands.add_parser("info", help="describe an edge list")
    info.add_argument("input",
                      help="input edge file (.csv, .csv.gz or .npz)")
    info.add_argument("--directed", action="store_true",
                      help="treat edges as directed (csv only)")

    convert = commands.add_parser(
        "convert",
        help="translate an edge list between csv/csv.gz/npz",
        epilog=_FORMAT_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    convert.add_argument("input",
                         help="input edge file (.csv, .csv.gz or .npz)")
    convert.add_argument("output",
                         help="output edge file; the suffix picks the "
                              "format")
    convert.add_argument("--directed", action="store_true",
                         help="treat csv input as directed (.npz "
                              "input carries its own directedness)")
    convert.add_argument("--streaming", default="auto",
                         choices=("auto", "always", "never"),
                         help="out-of-core conversion to .npz in "
                              "O(nodes) memory: 'always' requires an "
                              ".npz output, 'auto' streams above a "
                              "size threshold (default auto)")

    sweep = commands.add_parser(
        "sweep",
        help="sweep methods across edge shares (cached, sharded)")
    sweep.add_argument("input",
                       help="input edge file (.csv, .csv.gz or .npz)")
    sweep.add_argument("--directed", action="store_true",
                       help="treat edges as directed (csv only)")
    sweep.add_argument("--methods", default="NT,MST,DS,HSS,DF,NC",
                       help="comma-separated method codes "
                            "(default: the paper's six)")
    sweep.add_argument("--metric", default="density",
                       help="metric per backbone: coverage, density, "
                            "average-degree or edges (default density)")
    sweep.add_argument("--shares",
                       help="comma-separated shares of edges to keep "
                            "(default: the paper's log-spaced grid)")
    sweep.add_argument("--delta", type=float, default=1.64,
                       help="NC/NCp delta (default 1.64 ~ p<0.05)")
    sweep.add_argument("--workers", type=int,
                       help="process fan-out; -1 = one per CPU")
    sweep.add_argument("--cache-dir",
                       help="scored-table cache location (directory, "
                            ".sqlite file or sqlite:// spec); reruns "
                            "skip rescoring")
    sweep.add_argument("--output",
                       help="also write method,share,value rows to this "
                            "CSV")

    flow_cmd = commands.add_parser(
        "flow", help="run declarative plan artifacts (plan.json)")
    flow_commands = flow_cmd.add_subparsers(dest="flow_command",
                                            required=True)
    flow_run = flow_commands.add_parser(
        "run", help="execute a plan saved with Plan.to_json()")
    flow_run.add_argument("plan", help="path to the plan.json artifact")
    flow_run.add_argument("--output",
                          help="write the extracted backbone here "
                               "(suffix picks the format)")
    flow_run.add_argument("--cache-dir",
                          help="scored-table cache location (directory, "
                               ".sqlite file or spec)")
    flow_run.add_argument("--workers", type=int,
                          help="process fan-out; -1 = one per CPU")
    flow_run.add_argument("--explain", action="store_true",
                          help="print the compiled plan and exit "
                               "without executing")

    obs = commands.add_parser(
        "obs",
        help="observability: trace plan executions, scrape metrics")
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_trace = obs_commands.add_parser(
        "trace", help="run a plan artifact under tracing and dump the "
                      "trace (span tree, stage durations) as JSON")
    obs_trace.add_argument("plan", help="path to the plan.json artifact")
    obs_trace.add_argument("--cache-dir",
                           help="scored-table cache location (directory, "
                                ".sqlite file or spec)")
    obs_trace.add_argument("--workers", type=int,
                           help="process fan-out; -1 = one per CPU")
    obs_trace.add_argument("--output",
                           help="write the trace JSON here instead of "
                                "stdout")
    obs_metrics = obs_commands.add_parser(
        "metrics", help="print a running daemon's Prometheus text "
                        "exposition (GET /v1/metrics)")
    obs_metrics.add_argument("--host", default="127.0.0.1",
                             help="daemon address (default 127.0.0.1)")
    obs_metrics.add_argument("--port", type=int, default=8710,
                             help="daemon port (default 8710)")

    cache = commands.add_parser(
        "cache", help="inspect and manage scored-table caches")
    cache_commands = cache.add_subparsers(dest="cache_command",
                                          required=True)
    cache_stats = cache_commands.add_parser(
        "stats", help="entry count, byte total and idle ages of a cache")
    cache_stats.add_argument("store", help="cache location (directory, "
                                           ".sqlite file or spec)")
    cache_gc = cache_commands.add_parser(
        "gc", help="evict least-recently-used entries until bounds hold")
    cache_gc.add_argument("store", help="cache location")
    cache_gc.add_argument("--max-bytes", type=int,
                          help="keep at most this many payload bytes")
    cache_gc.add_argument("--max-entries", type=int,
                          help="keep at most this many entries")
    cache_gc.add_argument("--max-age-days", type=float,
                          help="evict entries idle longer than this")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be evicted; delete "
                               "nothing")
    cache_migrate = cache_commands.add_parser(
        "migrate", help="copy every entry into another backend")
    cache_migrate.add_argument("source", help="cache to copy from")
    cache_migrate.add_argument("dest", help="cache to copy into")

    net = commands.add_parser(
        "net",
        help="run or talk to the shared socket KV server (kv://)")
    net_commands = net.add_subparsers(dest="net_command", required=True)
    net_serve = net_commands.add_parser(
        "serve", help="start a KV server; share one warm cache across "
                      "processes via --cache-dir kv://host:port")
    net_serve.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    net_serve.add_argument("--port", type=int, default=8711,
                           help="bind port; 0 picks a free one "
                                "(default 8711)")
    net_stats = net_commands.add_parser(
        "stats", help="print a running KV server's stats as JSON")
    net_stats.add_argument("address",
                           help="server address (kv://host:port or "
                                "host:port)")
    net_put = net_commands.add_parser(
        "put", help="upload a file as a named object and print its "
                    "kv:// URL (usable as a flow source)")
    net_put.add_argument("address",
                         help="server address (kv://host:port or "
                              "host:port)")
    net_put.add_argument("key", help="object key, e.g. edges.npz")
    net_put.add_argument("file", help="local file to upload")

    serve = commands.add_parser(
        "serve",
        help="run or talk to the long-lived backbone daemon")
    serve_commands = serve.add_subparsers(dest="serve_command",
                                          required=True)
    serve_start = serve_commands.add_parser(
        "start", help="start the daemon (blocks until shutdown)")
    serve_start.add_argument("--host", default="127.0.0.1",
                             help="bind address (default 127.0.0.1)")
    serve_start.add_argument("--port", type=int, default=8710,
                             help="bind port; 0 picks a free one "
                                  "(default 8710)")
    serve_start.add_argument("--workers", type=int,
                             help="process fan-out for cold scoring; "
                                  "-1 = one per CPU")
    serve_start.add_argument("--cache-dir",
                             help="persistent scored-table cache "
                                  "(directory, .sqlite file or spec); "
                                  "omitted = memory-only")
    serve_start.add_argument("--deadline", type=float, default=30.0,
                             help="default per-request deadline in "
                                  "seconds (default 30)")
    serve_start.add_argument("--batch-window", type=float, default=0.05,
                             help="admission window in seconds over "
                                  "which concurrent requests coalesce "
                                  "into one batch (default 0.05)")
    serve_start.add_argument("--slow-request", type=float,
                             help="log a warning (and count it) for "
                                  "requests slower end-to-end than "
                                  "this many seconds")
    serve_start.add_argument("--probe-interval", type=float, default=5.0,
                             help="seconds between background probes "
                                  "that re-arm a degraded cache "
                                  "backend; 0 disables (default 5)")
    for name, help_text in (
            ("status", "print a running daemon's status as JSON"),
            ("shutdown", "ask a running daemon to stop")):
        sub = serve_commands.add_parser(name, help=help_text)
        sub.add_argument("--host", default="127.0.0.1",
                         help="daemon address (default 127.0.0.1)")
        sub.add_argument("--port", type=int, default=8710,
                         help="daemon port (default 8710)")

    analyze = commands.add_parser(
        "analyze",
        help="run the repo's AST invariant checkers (RPA001-RPA005)")
    analyze.add_argument("paths", nargs="*", default=["src"],
                         help="files or directories to check "
                              "(default: src)")
    analyze.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="report format (default text)")
    analyze.add_argument("--baseline", metavar="PATH",
                         help="baseline file of grandfathered "
                              "findings (default: "
                              "analysis-baseline.json when present)")
    analyze.add_argument("--no-baseline", action="store_true",
                         help="ignore any baseline file")
    analyze.add_argument("--write-baseline", action="store_true",
                         help="grandfather all current findings into "
                              "the baseline file and exit")
    analyze.add_argument("--list-checkers", action="store_true",
                         help="print the checker table and exit")
    return parser


def _add_io_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("input",
                     help="input edge file (.csv, .csv.gz or .npz)")
    sub.add_argument("output", help="output path (suffix picks format)")
    sub.add_argument("--directed", action="store_true",
                     help="treat edges as directed (csv only)")


def _make_method(code: str, delta: float):
    if code in _DELTA_CODES:
        return get_method(code, delta=delta)
    return get_method(code)


def _build_plan(args: argparse.Namespace):
    """Lower backbone/score arguments onto a declarative flow plan."""
    from .flow import flow

    params = {"delta": args.delta} if args.method in _DELTA_CODES else {}
    streaming = _STREAMING_MODES[getattr(args, "streaming", "auto")]
    plan = flow(args.input, directed=args.directed,
                streaming=streaming).method(args.method, **params)
    kwargs = {}
    for name in ("threshold", "share", "n_edges"):
        value = getattr(args, name, None)
        if value is not None:
            kwargs[name] = value
    if kwargs:
        plan = plan.budget(**kwargs)
    return plan, kwargs


def _run_backbone(args: argparse.Namespace) -> int:
    from .flow import StreamingUnsupported

    plan, kwargs = _build_plan(args)
    method = plan.method_spec.build()
    if method.parameter_free and kwargs:
        print(f"error: {method.name} is parameter-free; drop the budget "
              "flags", file=sys.stderr)
        return 2
    if not method.parameter_free and not kwargs \
            and method.default_budget() is None:
        print("error: this method needs --threshold, --share or "
              "--n-edges", file=sys.stderr)
        return 2
    store = None
    if getattr(args, "cache_dir", None) is not None:
        from .pipeline import ScoreStore
        store = ScoreStore(args.cache_dir)
    if args.explain:
        print(plan.explain(store=store))
        return 0
    try:
        result = plan.run(store=store)
    except StreamingUnsupported as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    backbone = result.backbone
    # Streamed plans carry a TableSummary instead of the parsed table;
    # it answers everything the report needs (m, non_isolated_count).
    table = result.table if result.table is not None else result.base
    write_edges(backbone, args.output)
    kept_nodes = coverage(table, backbone)
    print(f"kept {backbone.m} of {table.m} edges "
          f"({backbone.m / max(table.m, 1):.1%}); "
          f"coverage {kept_nodes:.1%}")
    return 0


def _run_score(args: argparse.Namespace) -> int:
    plan, _ = _build_plan(args)
    method = plan.method_spec.build()
    scored = plan.scores()
    with open(args.output, "w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["src", "dst", "weight", "score"]
        if scored.sdev is not None:
            header.append("sdev")
        writer.writerow(header)
        for row, (u, v, w) in enumerate(scored.table.iter_edges()):
            record = [scored.table.label_of(u), scored.table.label_of(v),
                      repr(w), repr(float(scored.score[row]))]
            if scored.sdev is not None:
                record.append(repr(float(scored.sdev[row])))
            writer.writerow(record)
    print(f"scored {scored.m} edges with {method.name}")
    return 0


def _run_info(args: argparse.Namespace) -> int:
    table = read_edges(args.input, directed=args.directed)
    weights = table.weight
    print(f"format:    {detect_format(args.input)}")
    print(f"nodes:     {table.n_nodes}")
    print(f"edges:     {table.m}")
    print(f"directed:  {table.directed}")
    print(f"density:   {density(table):.4f}")
    print(f"isolates:  {len(table.isolates())}")
    if table.m:
        print(f"weights:   min={weights.min():g} "
              f"median={sorted(weights)[len(weights) // 2]:g} "
              f"max={weights.max():g} total={weights.sum():g}")
    return 0


def _run_convert(args: argparse.Namespace) -> int:
    try:
        table = _convert_edges(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    kind = "directed" if table.directed else "undirected"
    labeled = "labeled" if table.labels is not None else "unlabeled"
    print(f"wrote {args.output} ({detect_format(args.output)}): "
          f"{table.m} edges, {table.n_nodes} nodes, {kind}, {labeled}")
    return 0


def _convert_edges(args: argparse.Namespace):
    """Convert in memory or out-of-core; returns the table or summary.

    Streaming conversion (bounded memory, same canonical rows) can
    only target ``.npz`` — the text writers need a materialized
    table — so ``--streaming always`` demands an ``.npz`` output and
    ``auto`` falls back to in-memory for text outputs.
    """
    mode = _STREAMING_MODES[getattr(args, "streaming", "auto")]
    if mode is not False and detect_format(args.output) == "npz":
        from .stream import auto_threshold_bytes, stream_convert

        try:
            size = os.stat(args.input).st_size
        except OSError:
            size = None
        if mode is True or (size is not None
                            and size >= auto_threshold_bytes()):
            return stream_convert(args.input, args.output,
                                  directed=args.directed)
    elif mode is True:
        raise ValueError("--streaming always needs an .npz output; "
                         f"got {args.output!r}")
    table = read_edges(args.input, directed=args.directed)
    write_edges(table, args.output)
    return table


def _run_sweep(args: argparse.Namespace) -> int:
    from .evaluation.sweep import DEFAULT_SHARES
    from .flow import MetricSpec, flow
    from .flow.sweep import run_sweep_plans
    from .pipeline import ScoreStore

    # The whole sweep compiles to a flow plan batch: one plan per
    # method and share over one file source. Source bindings (file
    # fingerprint -> table fingerprint, so warm runs never hash a
    # parsed table) and scoring deduplication live in the flow
    # compiler, not here.
    store = None if args.cache_dir is None else ScoreStore(args.cache_dir)
    codes = [code.strip() for code in args.methods.split(",")
             if code.strip()]
    try:
        methods = [_make_method(code, args.delta) for code in codes]
        metric = MetricSpec(args.metric)
        shares = DEFAULT_SHARES if args.shares is None else tuple(
            float(part) for part in args.shares.split(","))
        for share in shares:
            if not 0.0 <= share <= 1.0:
                raise ValueError(f"share must be in [0, 1], got {share}")
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    series = run_sweep_plans(methods, flow(args.input,
                                           directed=args.directed),
                             metric, shares=shares, store=store,
                             workers=args.workers)

    header = "share".rjust(7) + "".join(code.rjust(12) for code in codes)
    print(f"{args.metric} across shares of edges kept")
    print(header)
    budgeted = {code: dict(zip(result.shares, result.values))
                for code, result in series.items()
                if not result.parameter_free}
    for share in shares:
        cells = []
        for code in codes:
            value = budgeted.get(code, {}).get(share)
            cells.append(f"{value:12.4f}" if value is not None
                         else " " * 8 + "-" * 4)
        print(f"{share:7.3f}" + "".join(cells))
    for code, result in series.items():
        if result.parameter_free and result.shares:
            print(f"  {code}: {result.values[0]:.4f} at its natural "
                  f"share {result.shares[0]:.4f}")
        elif not result.shares:
            print(f"  {code}: n/a (not applicable to this network)")
    if store is not None:
        print(store.stats.summary())

    if args.output:
        with open(args.output, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["method", "share", "value"])
            for code in codes:
                result = series[code]
                for share, value in zip(result.shares, result.values):
                    writer.writerow([code, repr(share), repr(value)])
    return 0


def _run_flow(args: argparse.Namespace) -> int:
    from .flow import Plan
    from .pipeline import ScoreStore

    try:
        with open(args.plan) as handle:
            plan = Plan.from_json(handle.read())
    except OSError as error:
        print(f"error: cannot read plan: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store = None if args.cache_dir is None else ScoreStore(args.cache_dir)
    if args.explain:
        print(plan.explain(store=store))
        return 0
    try:
        result = plan.run(store=store, workers=args.workers)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    backbone = result.backbone
    table = result.table if result.table is not None else result.base
    if args.output:
        write_edges(backbone, args.output)
    print(f"plan {plan.fingerprint()[:16]}: kept {backbone.m} of "
          f"{table.m} edges ({result.kept_share:.1%} of non-loop edges)")
    for name, value in result.metrics.items():
        print(f"  {name}: {value:.6g}")
    if store is not None:
        print(store.stats.summary())
    return 0


def _run_obs(args: argparse.Namespace) -> int:
    import json

    if args.obs_command == "metrics":
        from .serve import ServeClient

        client = ServeClient(args.host, args.port)
        try:
            sys.stdout.write(client.metrics())
        except OSError as error:
            print(f"no daemon at {args.host}:{args.port} ({error})",
                  file=sys.stderr)
            return 1
        return 0

    from .flow import Plan
    from .flow.serve import serve
    from .obs import TRACER, trace, trace_to_dict
    from .pipeline import ScoreStore

    try:
        with open(args.plan) as handle:
            plan = Plan.from_json(handle.read())
    except OSError as error:
        print(f"error: cannot read plan: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store = None if args.cache_dir is None else ScoreStore(args.cache_dir)
    with trace("cli.trace", plan=plan.fingerprint()[:16]) as root:
        results = serve([plan], store=store, workers=args.workers)
    artifact = trace_to_dict(root.trace_id, TRACER.pop(root.trace_id))
    text = json.dumps(artifact, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    for name, seconds in sorted(artifact["stages"].items(),
                                key=lambda kv: -kv[1]):
        print(f"  {name:<16} {seconds:.6f}s", file=sys.stderr)
    result = results[0]
    if result.error is not None:
        print(f"error: plan failed: {result.error}", file=sys.stderr)
        return 1
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    from .pipeline.backends import open_backend

    try:
        if args.cache_command == "stats":
            return _cache_stats(open_backend(args.store))
        if args.cache_command == "gc":
            return _cache_gc(open_backend(args.store), args)
        return _cache_migrate(open_backend(args.source),
                              open_backend(args.dest))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cache_stats(backend) -> int:
    infos = backend.entries()
    negatives = sources = 0
    for info in infos:
        if not info.negative:
            continue
        meta = backend.peek_meta(info.key) or {}
        if meta.get("source") is not None:
            sources += 1
        else:
            negatives += 1
    print(f"backend:  {backend.describe()}")
    print(f"entries:  {len(infos)} ({negatives} negative, "
          f"{sources} source bindings)")
    print(f"bytes:    {sum(info.size for info in infos)}")
    if infos:
        import time as _time

        now = _time.time()
        idle = [max(0.0, now - info.last_access) for info in infos]
        print(f"idle:     min {min(idle):.0f}s, max {max(idle):.0f}s")
    return 0


def _cache_gc(backend, args: argparse.Namespace) -> int:
    from .pipeline.backends import GCPolicy, run_gc

    max_age = None if args.max_age_days is None \
        else args.max_age_days * 86_400.0
    try:
        policy = GCPolicy(max_bytes=args.max_bytes,
                          max_entries=args.max_entries, max_age=max_age)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = run_gc(backend, policy, dry_run=args.dry_run)
    print(result.summary())
    return 0


def _cache_migrate(source, dest) -> int:
    from .pipeline.backends import BackendCorruption

    copied = skipped = 0
    for key in source.keys():
        try:
            raw = source.get(key, touch=False)
        except BackendCorruption:
            skipped += 1
            continue
        if raw is None:
            skipped += 1
            continue
        dest.put(key, raw)
        copied += 1
    print(f"migrated {copied} entries from {source.describe()} "
          f"to {dest.describe()}"
          + (f" ({skipped} corrupt/missing skipped)" if skipped else ""))
    return 0


def _net_address(text: str):
    """``(host, port)`` from ``kv://host:port`` or ``host:port``."""
    address = text.partition("://")[2] if "://" in text else text
    host, _, port_text = address.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"bad KV address {text!r}; expected "
                         "kv://host:port")
    return host, int(port_text)


def _run_net(args: argparse.Namespace) -> int:
    import json

    if args.net_command == "serve":
        from .net.server import main as net_main

        return net_main(["--host", args.host, "--port", str(args.port)])
    try:
        host, port = _net_address(args.address)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.net_command == "stats":
        from .net import SocketKVTransport
        from .pipeline.backends import KVError

        transport = SocketKVTransport(host, port)
        try:
            stats = transport.request("stats")
        except (OSError, KVError) as error:
            print(f"no KV server at {host}:{port} ({error})",
                  file=sys.stderr)
            return 1
        finally:
            transport.close()
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    from .net import put_object
    from .pipeline.backends import KVError

    try:
        url = put_object(f"kv://{host}:{port}", args.key, args.file)
    except OSError as error:
        print(f"error: cannot read {args.file}: {error}",
              file=sys.stderr)
        return 2
    except KVError as error:
        print(f"no KV server at {host}:{port} ({error})",
              file=sys.stderr)
        return 1
    print(url)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import json

    from .serve import BackboneDaemon, ServeClient

    if args.serve_command == "start":
        daemon = BackboneDaemon(
            host=args.host, port=args.port, cache_dir=args.cache_dir,
            workers=args.workers, batch_window=args.batch_window,
            default_deadline=args.deadline,
            slow_request_s=args.slow_request,
            probe_interval=args.probe_interval).start()
        print(f"backbone daemon listening on {args.host}:{daemon.port} "
              f"(POST /v1/run, GET /v1/status, GET /v1/metrics, "
              f"POST /v1/shutdown)")
        daemon.run_forever()
        print("backbone daemon stopped")
        return 0
    client = ServeClient(args.host, args.port)
    if args.serve_command == "status":
        try:
            print(json.dumps(client.status(), indent=2, sort_keys=True))
        except OSError as error:
            print(f"no daemon at {args.host}:{args.port} ({error})",
                  file=sys.stderr)
            return 1
        return 0
    if client.shutdown():
        print("daemon shutting down")
        return 0
    print(f"no daemon at {args.host}:{args.port}", file=sys.stderr)
    return 1


_DEFAULT_BASELINE = "analysis-baseline.json"


def _run_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import (Baseline, analyze_paths, checker_table)

    if args.list_checkers:
        for code, name, rationale in checker_table():
            print(f"{code}  {name}: {rationale}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {missing[0]}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline \
        else Path(_DEFAULT_BASELINE)
    baseline = None
    if not args.no_baseline and not args.write_baseline \
            and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError, KeyError) as error:
            print(f"bad baseline {baseline_path}: {error}",
                  file=sys.stderr)
            return 2

    report = analyze_paths(paths, root=Path.cwd(), baseline=baseline)

    if args.write_baseline:
        Baseline(report.findings).save(baseline_path)
        print(f"wrote {len(report.findings)} finding(s) to "
              f"{baseline_path}")
        return 0
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return report.exit_code()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"backbone": _run_backbone, "score": _run_score,
                "info": _run_info, "convert": _run_convert,
                "sweep": _run_sweep, "flow": _run_flow,
                "obs": _run_obs, "cache": _run_cache,
                "net": _run_net, "serve": _run_serve,
                "analyze": _run_analyze}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
