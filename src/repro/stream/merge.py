"""External-merge coalesce: sorted spill runs + k-way merge.

:func:`repro.graph.edge_table.coalesce_edges` sorts the whole table by
``(src, dst)`` and sums duplicate rows with ``np.bincount`` — a
sequential left-to-right accumulation in original row order within
each group. This module reproduces that bit for bit without ever
holding the table:

* :class:`RunWriter` buffers up to ``run_rows`` canonicalized rows,
  stable-lexsorts each buffer by ``(src, dst)`` and spills it as one
  sorted *run*. Runs are chronological: every row in run ``i``
  precedes every row in run ``i + 1`` in original order, and the
  stable sort keeps equal keys in original order inside a run — so
  concatenating equal-key rows run by run recovers the exact original
  order ``bincount`` summed in.
* :func:`merge_runs` k-way merges the runs with two devices that keep
  memory bounded by ``O(k · block)`` regardless of duplication:

  - **complete groups** below the *cutoff* — the smallest last-loaded
    key over runs with unread data; every key strictly below it can
    have no unread row anywhere, so those groups close in one
    vectorized ``np.add.at`` (sequential and unbuffered, exactly
    ``bincount``'s accumulation) over the run-ordered concatenation;
  - the **frontier key** equal to the cutoff is drained run by run in
    run order into a 1-element accumulator (``np.add.at`` against
    index 0 performs the same one-at-a-time adds), so a single key
    duplicated across millions of rows coalesces in O(block) memory
    with the accumulation order still exactly original row order.

The merged output is emitted in strictly increasing ``(src, dst)``
order — precisely the canonical order ``coalesce_edges`` produces.

One deliberate divergence, shared with the ``bincount`` path it
mirrors: a weight of ``-0.0`` on a row with no duplicate partner
survives ``coalesce_edges``'s no-duplicate shortcut untouched but
leaves summation as ``+0.0``. Negative zeros do not occur in
real weight data (weights are validated non-negative) and the
streaming path documents the ``+0.0`` behaviour.

:func:`pairwise_file_sum` replicates ``np.sum``'s pairwise reduction
over a column file so the streamed ``grand_total`` is bit-identical to
``float(weight.sum())`` on the in-memory array: numpy splits ``n`` at
``n//2`` rounded down to a multiple of 8 until segments fit its
128-element base case; summing each (contiguous) leaf slice with
``np.sum`` executes that same base case, and the partials fold up in
the same order.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

Chunk = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: numpy's pairwise-summation block size (``PW_BLOCKSIZE``).
_PAIRWISE_BLOCK = 128


# ----------------------------------------------------------------------
# Spilling sorted runs
# ----------------------------------------------------------------------

class RunWriter:
    """Accumulate canonical rows, spill ``run_rows``-sized sorted runs.

    Each run file is columnar — an ``int64`` row count followed by the
    contiguous ``src`` / ``dst`` / ``weight`` segments — so the merge
    readers can load any number of rows per call with three seeks,
    decoupling read granularity from spill granularity: fan-in times
    the merge block stays near one run however large the table is.
    """

    def __init__(self, directory: Path, run_rows: int):
        self.directory = Path(directory)
        self.run_rows = int(run_rows)
        self.paths: List[Path] = []
        self._srcs: List[np.ndarray] = []
        self._dsts: List[np.ndarray] = []
        self._weights: List[np.ndarray] = []
        self._buffered = 0

    def append(self, src: np.ndarray, dst: np.ndarray,
               weight: np.ndarray) -> None:
        if not len(src):
            return
        self._srcs.append(src)
        self._dsts.append(dst)
        self._weights.append(weight)
        self._buffered += len(src)
        while self._buffered >= self.run_rows:
            self._spill()

    def _take(self, chunks: List[np.ndarray], rows: int) -> np.ndarray:
        taken: List[np.ndarray] = []
        need = rows
        while need:
            head = chunks[0]
            if len(head) <= need:
                taken.append(head)
                chunks.pop(0)
                need -= len(head)
            else:
                taken.append(head[:need])
                chunks[0] = head[need:]
                need = 0
        return taken[0] if len(taken) == 1 else np.concatenate(taken)

    def _spill(self) -> None:
        rows = min(self.run_rows, self._buffered)
        src = self._take(self._srcs, rows)
        dst = self._take(self._dsts, rows)
        weight = self._take(self._weights, rows)
        self._buffered -= rows
        order = np.lexsort((dst, src))  # stable: ties keep file order
        src, dst, weight = src[order], dst[order], weight[order]
        path = self.directory / f"run-{len(self.paths):06d}.run"
        with open(path, "wb") as handle:
            np.asarray(rows, dtype=np.int64).tofile(handle)
            for array in (src, dst, weight):
                np.ascontiguousarray(array).tofile(handle)
        self.paths.append(path)

    def finish(self) -> List[Path]:
        while self._buffered:
            self._spill()
        return self.paths


class _RunReader:
    """Buffered reader over one sorted columnar run, loading
    ``block_rows`` rows at a time (three seeks into the column
    segments) and consuming rows from the front of the buffer."""

    def __init__(self, path: Path, block_rows: int):
        self.block_rows = max(int(block_rows), 1)
        self._handle = open(path, "rb")
        header = np.fromfile(self._handle, dtype=np.int64, count=1)
        self.rows = int(header[0]) if len(header) else 0
        self._loaded = 0
        self.src = np.empty(0, dtype=np.int64)
        self.dst = np.empty(0, dtype=np.int64)
        self.weight = np.empty(0, dtype=np.float64)
        self._start = 0
        self.eof = self.rows == 0
        if self.eof:
            self._handle.close()

    def __len__(self) -> int:
        return len(self.src) - self._start

    def close(self) -> None:
        """Release the run file (idempotent; EOF closes it too)."""
        if not self._handle.closed:
            self._handle.close()

    def _column(self, index: int, rows: int) -> np.ndarray:
        # Layout: int64 count, then src/dst/weight segments — all
        # 8-byte items, so offsets are uniform in elements.
        dtype = np.float64 if index == 2 else np.int64
        self._handle.seek(8 * (1 + index * self.rows + self._loaded))
        column = np.fromfile(self._handle, dtype=dtype, count=rows)
        if len(column) != rows:
            raise ValueError("truncated run file")
        return column

    def load_more(self) -> bool:
        """Append the next ``block_rows`` rows; ``False`` at EOF."""
        if self.eof:
            return False
        rows = min(self.block_rows, self.rows - self._loaded)
        if not rows:
            self.eof = True
            self._handle.close()
            return False
        src = self._column(0, rows)
        dst = self._column(1, rows)
        weight = self._column(2, rows)
        self._loaded += rows
        if self._start:
            keep = slice(self._start, None)
            self.src = self.src[keep]
            self.dst = self.dst[keep]
            self.weight = self.weight[keep]
            self._start = 0
        self.src = np.concatenate([self.src, src])
        self.dst = np.concatenate([self.dst, dst])
        self.weight = np.concatenate([self.weight, weight])
        return True

    def last_key(self) -> Tuple[int, int]:
        return int(self.src[-1]), int(self.dst[-1])

    def head_key(self) -> Tuple[int, int]:
        return (int(self.src[self._start]),
                int(self.dst[self._start]))

    def _cut_at(self, key: Tuple[int, int], side: str) -> int:
        """Buffer offset of the first row ``>`` (or ``>=``) ``key``."""
        s, d = key
        src = self.src[self._start:]
        lo = int(np.searchsorted(src, s, "left"))
        hi = int(np.searchsorted(src, s, "right"))
        dst = self.dst[self._start + lo:self._start + hi]
        return self._start + lo + int(np.searchsorted(dst, d, side))

    def take_below(self, key: Optional[Tuple[int, int]]) -> Chunk:
        """Consume and return every buffered row with key ``< key``
        (all buffered rows when ``key`` is ``None``)."""
        if key is None:
            stop = len(self.src)
        else:
            stop = self._cut_at(key, "left")
        chunk = (self.src[self._start:stop],
                 self.dst[self._start:stop],
                 self.weight[self._start:stop])
        self._start = stop
        return chunk

    def take_equal(self, key: Tuple[int, int]) -> np.ndarray:
        """Consume buffered rows with key ``== key``, return weights."""
        stop = self._cut_at(key, "right")
        start = self._cut_at(key, "left")
        weights = self.weight[start:stop]
        self._start = stop
        return weights


def merge_runs(paths: List[Path], block_rows: int,
               emit: Callable[[np.ndarray, np.ndarray, np.ndarray],
                              None]) -> None:
    """K-way merge sorted runs, coalescing duplicates bit-identically.

    ``emit`` receives canonical ``(src, dst, weight)`` chunks in
    strictly increasing key order with duplicate keys already summed.
    """
    readers = [_RunReader(path, block_rows) for path in paths]
    try:
        _merge_readers(readers, emit)
    finally:
        for reader in readers:
            reader.close()


def _merge_readers(readers: List["_RunReader"],
                   emit: Callable[[np.ndarray, np.ndarray, np.ndarray],
                                  None]) -> None:
    for reader in readers:
        reader.load_more()
    while True:
        partial = [r for r in readers if not r.eof]
        for reader in partial:
            if not len(reader):
                reader.load_more()
        alive = [r for r in readers if len(r)]
        if not alive:
            break
        partial = [r for r in readers if not r.eof and len(r)]
        cutoff = min((r.last_key() for r in partial), default=None)
        parts = [r.take_below(cutoff) for r in readers if len(r)]
        parts = [part for part in parts if len(part[0])]
        if parts:
            src = np.concatenate([part[0] for part in parts])
            dst = np.concatenate([part[1] for part in parts])
            weight = np.concatenate([part[2] for part in parts])
            order = np.lexsort((dst, src))  # stable; run order = file order
            src, dst, weight = src[order], dst[order], weight[order]
            firsts = np.empty(len(src), dtype=bool)
            firsts[0] = True
            firsts[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            group = np.cumsum(firsts) - 1
            summed = np.zeros(int(group[-1]) + 1, dtype=np.float64)
            # np.add.at is unbuffered: element-by-element adds in row
            # order — the exact accumulation np.bincount performs.
            np.add.at(summed, group, weight)
            emit(src[firsts], dst[firsts], summed)
        if cutoff is None:
            break
        # Drain the frontier key run by run (run order == original
        # order for equal keys), extending each run's buffer until its
        # head moves past the key — O(block) memory however many rows
        # share the key.
        accumulator = np.zeros(1, dtype=np.float64)
        zero = np.zeros(0, dtype=np.int64)
        saw_frontier = False
        for reader in readers:
            while True:
                weights = reader.take_equal(cutoff)
                if len(weights):
                    saw_frontier = True
                    if len(zero) < len(weights):
                        zero = np.zeros(len(weights), dtype=np.int64)
                    np.add.at(accumulator, zero[:len(weights)], weights)
                if len(reader) or not reader.load_more():
                    break
        if saw_frontier:
            emit(np.array([cutoff[0]], dtype=np.int64),
                 np.array([cutoff[1]], dtype=np.int64),
                 accumulator.copy())


# ----------------------------------------------------------------------
# Pairwise summation over a column file
# ----------------------------------------------------------------------

class _ColumnWindow:
    """Serve contiguous float64 slices of a raw column file through a
    sliding window (leaves are visited in increasing offset order)."""

    def __init__(self, path: Path, count: int, window_rows: int):
        self.path = Path(path)
        self.count = int(count)
        self.window_rows = max(int(window_rows), _PAIRWISE_BLOCK)
        self._start = 0
        self._buffer = np.empty(0, dtype=np.float64)

    def read(self, offset: int, n: int) -> np.ndarray:
        end = self._start + len(self._buffer)
        if not (self._start <= offset and offset + n <= end):
            rows = max(self.window_rows, n)
            with open(self.path, "rb") as handle:
                handle.seek(offset * 8)
                raw = handle.read(min(rows, self.count - offset) * 8)
            self._buffer = np.frombuffer(raw, dtype=np.float64)
            self._start = offset
        lo = offset - self._start
        return self._buffer[lo:lo + n]


def pairwise_file_sum(path: Path, count: int,
                      window_rows: int = 1 << 20) -> float:
    """``float(np.sum(column))`` over a raw float64 file, bit-exact.

    Mirrors numpy's pairwise reduction: split ``n`` at ``n // 2``
    rounded down to a multiple of 8, recurse, add the halves; leaf
    segments (≤ 128 elements) are summed by ``np.sum`` itself, which
    runs the identical base case on the identical contiguous values.
    """
    if count == 0:
        return 0.0
    window = _ColumnWindow(path, count, window_rows)

    def recurse(offset: int, n: int) -> float:
        if n <= _PAIRWISE_BLOCK:
            return float(np.sum(window.read(offset, n)))
        half = n // 2
        half -= half % 8
        return recurse(offset, half) + recurse(offset + half, n - half)

    return recurse(0, count)
