"""Out-of-core ``.csv`` → ``.npz`` conversion.

``repro convert`` on a huge ``.csv.gz`` used to materialize the full
:class:`~repro.graph.edge_table.EdgeTable` just to serialize it again.
:func:`stream_convert` routes the same conversion through the pass-1
pipeline instead: the canonical columns are spilled to disk by
:func:`~repro.stream.pipeline.open_stream` and then copied member by
member into the archive, so peak memory stays O(nodes + block).

The output is content-identical to
``write_edge_npz(read_edges(path))`` — same member names in the same
order, same dtypes, same canonical rows — and round-trips through
:func:`~repro.graph.ingest.read_edge_npz` to an equal table. (The raw
archive bytes differ only in zip metadata such as member timestamps,
exactly as two ``np.savez`` calls at different times differ.)
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Optional

import numpy as np

from ..graph.ingest import NPZ_FORMAT_VERSION
from ..obs.trace import span
from .pipeline import CanonicalStream, TableSummary, open_stream

#: Bytes copied per chunk when streaming a column into the archive.
_COPY_BYTES = 4 << 20


def stream_convert(path, output, directed: bool = True,
                   delimiter: str = ",", format: Optional[str] = None,
                   block_rows: Optional[int] = None,
                   run_rows: Optional[int] = None) -> TableSummary:
    """Convert an edge file to ``.npz`` without holding the table.

    Arguments mirror :func:`~repro.stream.pipeline.open_stream`;
    ``output`` is always written as an ``.npz`` archive. Returns the
    converted table's :class:`TableSummary`.
    """
    stream = open_stream(path, directed=directed, delimiter=delimiter,
                         format=format, block_rows=block_rows,
                         run_rows=run_rows)
    try:
        with span("stream.convert", output=str(output)):
            _write_streamed_npz(stream, Path(output))
        return stream.summary
    finally:
        stream.close()


def _write_streamed_npz(stream: CanonicalStream, output: Path) -> None:
    """Write the archive in ``write_edge_npz``'s member order."""
    with zipfile.ZipFile(output, "w", zipfile.ZIP_STORED,
                         allowZip64=True) as archive:
        _write_member(archive, "format",
                      np.array(NPZ_FORMAT_VERSION, dtype=np.int64))
        _copy_column(archive, "src", stream.workdir / "src.bin",
                     np.dtype(np.int64), stream.m)
        _copy_column(archive, "dst", stream.workdir / "dst.bin",
                     np.dtype(np.int64), stream.m)
        _copy_column(archive, "weight", stream.workdir / "weight.bin",
                     np.dtype(np.float64), stream.m)
        _write_member(archive, "n_nodes",
                      np.array(stream.n_nodes, dtype=np.int64))
        _write_member(archive, "directed",
                      np.array(stream.directed, dtype=np.bool_))
        if stream.labels is not None:
            _write_member(archive, "labels",
                          np.array(stream.labels, dtype=np.str_))


def _write_member(archive: zipfile.ZipFile, name: str,
                  array: np.ndarray) -> None:
    with archive.open(name + ".npy", mode="w") as member:
        np.lib.format.write_array(member, array, allow_pickle=False)


def _copy_column(archive: zipfile.ZipFile, name: str, source: Path,
                 dtype: np.dtype, count: int) -> None:
    """Stream one canonical column file into a ``.npy`` member."""
    with archive.open(name + ".npy", mode="w",
                      force_zip64=True) as member:
        np.lib.format.write_array_header_1_0(
            member, {"descr": np.lib.format.dtype_to_descr(dtype),
                     "fortran_order": False, "shape": (count,)})
        with open(source, "rb") as handle:
            while True:
                piece = handle.read(_COPY_BYTES)
                if not piece:
                    break
                member.write(piece)
