"""Block-level IO for the out-of-core scoring pipeline.

Pass 1 of :mod:`repro.stream` never holds the table: parsed chunks go
straight to disk and are replayed later. Two sources feed it:

* CSV (``.csv`` / ``.csv.gz``): :func:`repro.graph.ingest.
  stream_csv_chunks` pushes parsed chunks into a :class:`ChunkSpool`.
  The integer-vs-label decision needs the whole file (exactly like
  :class:`~repro.graph.ingest.EdgeTableBuilder`), so the spool records
  each chunk verbatim plus the two facts the decision needs — whether
  any chunk was tokens, and whether every token chunk parses as
  integers — and :meth:`ChunkSpool.replay` re-yields the chunks once
  the decision is known.
* ``.npz``: the archive is self-describing and its columns are already
  canonical dtypes, so :class:`NpzColumns` streams the three member
  arrays directly out of the zip (``np.savez`` stores them
  uncompressed) without a spool.

Validation mirrors :meth:`EdgeTable.from_arrays` chunk by chunk with
the same messages; every check here is elementwise, so checking per
chunk accepts and rejects exactly the same inputs.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Iterator, Optional, Tuple

import numpy as np

from ..graph.ingest import _NPZ_REQUIRED, _as_endpoint_chunk

Chunk = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _token_chunk_is_integer(chunk: np.ndarray) -> bool:
    try:
        chunk.astype(np.int64)
    except (ValueError, OverflowError):
        return False
    return True


class ChunkSpool:
    """Append-only on-disk spool of parsed ``(src, dst, weight)`` chunks.

    Quacks like :class:`EdgeTableBuilder` for
    :func:`~repro.graph.ingest.stream_csv_chunks` (an ``append``
    method), but writes each chunk to one flat file via
    ``np.lib.format`` instead of accumulating arrays.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._handle = open(self.path, "wb")
        self.rows = 0
        self.any_tokens = False
        self.tokens_integer = True

    def append(self, src, dst, weight) -> "ChunkSpool":
        src = _as_endpoint_chunk(src, "src")
        dst = _as_endpoint_chunk(dst, "dst")
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 1:
            raise ValueError("weight chunk must be one-dimensional, "
                             f"got shape {weight.shape}")
        if not len(src) == len(dst) == len(weight):
            raise ValueError(
                f"chunk arrays must have equal lengths, got "
                f"src={len(src)}, dst={len(dst)}, weight={len(weight)}")
        if (src.dtype.kind == "U") != (dst.dtype.kind == "U"):
            raise ValueError("src and dst chunks must both be index "
                             "arrays or both be label arrays")
        if len(src) == 0:
            return self
        if src.dtype.kind == "U":
            self.any_tokens = True
            if self.tokens_integer:
                self.tokens_integer = (_token_chunk_is_integer(src)
                                       and _token_chunk_is_integer(dst))
        for array in (src, dst, weight):
            np.lib.format.write_array(self._handle,
                                      np.ascontiguousarray(array),
                                      allow_pickle=False)
        self.rows += len(src)
        return self

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def replay(self) -> Iterator[Chunk]:
        """Yield the appended chunks back, in order."""
        self.close()
        with open(self.path, "rb") as handle:
            while True:
                probe = handle.read(1)
                if not probe:
                    return
                handle.seek(-1, 1)
                src = np.lib.format.read_array(handle, allow_pickle=False)
                dst = np.lib.format.read_array(handle, allow_pickle=False)
                weight = np.lib.format.read_array(handle,
                                                  allow_pickle=False)
                yield src, dst, weight

    def unlink(self) -> None:
        self.close()
        self.path.unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Streaming .npz columns
# ----------------------------------------------------------------------

def _read_member_header(handle):
    version = np.lib.format.read_magic(handle)
    if version == (1, 0):
        return np.lib.format.read_array_header_1_0(handle)
    if version == (2, 0):
        return np.lib.format.read_array_header_2_0(handle)
    raise ValueError(f"unsupported .npy format version {version}")


class _MemberReader:
    """Chunked reader over one 1-D ``.npy`` member of the archive."""

    def __init__(self, zf: zipfile.ZipFile, name: str, key: str):
        self._handle = zf.open(name)
        shape, fortran_order, dtype = _read_member_header(self._handle)
        if len(shape) != 1 or dtype.hasobject:
            raise ValueError(f"{key} must be one-dimensional, "
                             f"got shape {shape}")
        self.count = int(shape[0])
        self.dtype = dtype

    def read(self, rows: int) -> np.ndarray:
        want = rows * self.dtype.itemsize
        parts = []
        while want:
            piece = self._handle.read(want)
            if not piece:
                break
            parts.append(piece)
            want -= len(piece)
        buffer = b"".join(parts)
        if len(buffer) % self.dtype.itemsize:
            raise ValueError("truncated array member")
        return np.frombuffer(buffer, dtype=self.dtype)

    def close(self) -> None:
        self._handle.close()


def _as_index_chunk(chunk: np.ndarray, name: str) -> np.ndarray:
    """Chunkwise :func:`~repro.util.validation.as_index_array`."""
    if chunk.size == 0:
        return chunk.astype(np.int64)
    if not np.issubdtype(chunk.dtype, np.integer):
        rounded = np.rint(np.asarray(chunk, dtype=np.float64))
        if not np.allclose(chunk, rounded):
            raise ValueError(f"{name} must contain integers")
        chunk = rounded
    chunk = chunk.astype(np.int64)
    if chunk.min() < 0:
        raise ValueError(f"{name} must contain non-negative indices")
    return chunk


class NpzColumns:
    """Stream the columns of a :func:`write_edge_npz` archive.

    Raises the same ``ValueError`` diagnostics as
    :func:`~repro.graph.ingest.read_edge_npz` for archives that are
    not edge tables; scalars and labels are loaded whole (they are
    O(nodes) at most), the three edge columns stream in blocks.
    """

    def __init__(self, path):
        self.path = Path(path)
        try:
            self._zf = zipfile.ZipFile(self.path)
            names = set(self._zf.namelist())
            present = {name[:-4] for name in names
                       if name.endswith(".npy")}
            missing = [key for key in _NPZ_REQUIRED
                       if key not in present]
            if missing:
                raise ValueError(
                    f"{self.path} is not a repro edge table: missing "
                    f"arrays {', '.join(missing)}")
            self.n_nodes = int(self._read_small("n_nodes"))
            self.directed = bool(self._read_small("directed"))
            self.labels: Optional[Tuple[str, ...]] = None
            if "labels" in present:
                loaded = self._read_small("labels").tolist()
                self.labels = tuple(str(label) for label in loaded)
            src = _MemberReader(self._zf, "src.npy", "src")
            src.close()
            self.m = src.count
        except (zipfile.BadZipFile, OSError, KeyError) as error:
            raise ValueError(
                f"{self.path} is not an .npz edge table: {error}"
            ) from error

    def _read_small(self, key: str) -> np.ndarray:
        with self._zf.open(key + ".npy") as handle:
            return np.lib.format.read_array(handle, allow_pickle=False)

    def iter_rows(self, block_rows: int) -> Iterator[Chunk]:
        """Yield aligned ``(src, dst, weight)`` blocks, validated."""
        readers = {key: _MemberReader(self._zf, key + ".npy", key)
                   for key in ("src", "dst", "weight")}
        counts = {key: reader.count for key, reader in readers.items()}
        if len(set(counts.values())) != 1:
            raise ValueError("src, dst and weight must have the "
                             "same length")
        try:
            remaining = counts["src"]
            while remaining:
                rows = min(block_rows, remaining)
                src = _as_index_chunk(readers["src"].read(rows), "src")
                dst = _as_index_chunk(readers["dst"].read(rows), "dst")
                weight = np.asarray(readers["weight"].read(rows),
                                    dtype=np.float64)
                if weight.size and not np.all(np.isfinite(weight)):
                    raise ValueError("weight contains non-finite values")
                if not len(src) == len(dst) == len(weight) == rows:
                    raise ValueError("truncated array member")
                yield src, dst, weight
                remaining -= rows
        finally:
            for reader in readers.values():
                reader.close()

    def close(self) -> None:
        self._zf.close()
