"""Pass 1 of the out-of-core pipeline: canonicalize without RAM.

:func:`open_stream` turns an edge file (``.csv`` / ``.csv.gz`` /
``.npz``, any size) into a :class:`CanonicalStream`: the canonical
coalesced table spilled to disk column by column, plus every O(nodes)
aggregate scoring needs (strengths, degrees, grand total, touched-node
count) and the table's content fingerprint — **bit-identical** to what
``read_edges(...)`` followed by ``EdgeTable`` canonicalization and
:func:`~repro.pipeline.fingerprint.fingerprint_table` produce, while
peak memory stays O(nodes + block) however many rows the file has.

Stages (all bounded by ``block_rows`` / ``run_rows``):

1. **parse** — CSV blocks stream through
   :func:`~repro.graph.ingest.stream_csv_chunks` into a
   :class:`~repro.stream.blocks.ChunkSpool` (the integer-vs-label
   decision needs EOF, exactly like ``EdgeTableBuilder``); ``.npz``
   columns stream straight out of the archive.
2. **spill** — chunks are validated (``EdgeTable.from_arrays``
   messages), undirected endpoints canonicalized to ``(lo, hi)``, and
   appended to sorted spill runs (:class:`~repro.stream.merge.
   RunWriter`).
3. **merge** — the k-way external merge coalesces duplicates in exact
   ``coalesce_edges`` order and emits canonical chunks into flat
   column files while node aggregates accumulate in ``np.bincount``
   order.
4. **fingerprint** — one sequential pass over the canonical columns
   reproduces :func:`fingerprint_table`'s digest byte for byte, so
   streamed and in-memory plans share one warm score cache.

Pass 2 (:mod:`repro.stream.score`) re-reads the canonical columns in
blocks via :meth:`CanonicalStream.iter_scoring_blocks`.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import weakref
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..graph.ingest import detect_format, stream_csv_chunks
from ..obs.trace import span
from ..pipeline.fingerprint import _SCHEMA_VERSION, canonical_json
from ..util.validation import require
from .blocks import ChunkSpool, NpzColumns
from .merge import RunWriter, merge_runs, pairwise_file_sum

#: ``streaming="auto"`` compiles to the streaming path at and above
#: this source size (override: ``REPRO_STREAM_THRESHOLD_BYTES``).
DEFAULT_AUTO_THRESHOLD_BYTES = 256 << 20

#: Rows per block in pass-2 scoring and the merge readers
#: (override: ``REPRO_STREAM_BLOCK_ROWS``).
DEFAULT_BLOCK_ROWS = 1 << 18

#: Rows per sorted spill run (the in-memory sort granularity;
#: override: ``REPRO_STREAM_RUN_ROWS``).
DEFAULT_RUN_ROWS = 1 << 20


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def auto_threshold_bytes() -> int:
    """Source size at which ``streaming="auto"`` switches over."""
    return _env_int("REPRO_STREAM_THRESHOLD_BYTES",
                    DEFAULT_AUTO_THRESHOLD_BYTES)


def default_block_rows() -> int:
    return _env_int("REPRO_STREAM_BLOCK_ROWS", DEFAULT_BLOCK_ROWS)


def default_run_rows() -> int:
    return _env_int("REPRO_STREAM_RUN_ROWS", DEFAULT_RUN_ROWS)


class TableSummary:
    """O(1) stand-in for the base ``EdgeTable`` of a streamed plan.

    Carries exactly what downstream consumers read off the base table
    — ``n_nodes``, canonical row counts, directedness, labels and
    ``non_isolated_count()`` (so :func:`repro.evaluation.coverage.
    coverage` and the CLI summaries work unchanged) — without the
    columns.
    """

    __slots__ = ("n_nodes", "m", "nonloop_m", "directed", "labels",
                 "_non_isolated")

    def __init__(self, n_nodes: int, m: int, nonloop_m: int,
                 directed: bool, labels: Optional[Tuple[str, ...]],
                 non_isolated: int):
        self.n_nodes = int(n_nodes)
        self.m = int(m)
        self.nonloop_m = int(nonloop_m)
        self.directed = bool(directed)
        self.labels = labels
        self._non_isolated = int(non_isolated)

    def non_isolated_count(self) -> int:
        return self._non_isolated

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (f"TableSummary({kind}, n_nodes={self.n_nodes}, "
                f"m={self.m})")


class CanonicalStream:
    """The canonical table of one source, spilled to disk.

    Produced by :func:`open_stream`; owns a temporary directory with
    the canonical ``src``/``dst``/``weight`` column files (raw int64 /
    int64 / float64) and exposes the node-level aggregates of the
    *loop-free* scoring table plus the full-table summary. Temporary
    files are removed when the object is garbage-collected or
    :meth:`close` is called.
    """

    def __init__(self, workdir: Path, directed: bool, n_nodes: int,
                 labels: Optional[Tuple[str, ...]], m: int,
                 nonloop_m: int, table_fp: str, grand_total: float,
                 total_weight: float, strengths, degrees,
                 non_isolated: int, block_rows: int):
        self.workdir = Path(workdir)
        self.directed = bool(directed)
        self.n_nodes = int(n_nodes)
        self.labels = labels
        self.m = int(m)
        self.nonloop_m = int(nonloop_m)
        self.table_fp = table_fp
        self.grand_total = float(grand_total)
        self.total_weight = float(total_weight)
        self.out_strength, self.in_strength, self.strength = strengths
        self.out_degree, self.in_degree, self.degree = degrees
        self.block_rows = int(block_rows)
        self.summary = TableSummary(n_nodes, m, nonloop_m, directed,
                                    labels, non_isolated)
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, str(self.workdir), True)

    def close(self) -> None:
        self._finalizer()

    def iter_scoring_blocks(self) -> Iterator[
            Tuple[np.ndarray, np.ndarray, np.ndarray, int]]:
        """Yield loop-free ``(src, dst, weight, nl_offset)`` blocks.

        ``nl_offset`` is the global loop-free row index of the block's
        first row — the same row numbering the in-memory scoring table
        (``prepare_table``'s ``without_self_loops()`` output) uses.
        """
        paths = [self.workdir / name
                 for name in ("src.bin", "dst.bin", "weight.bin")]
        with open(paths[0], "rb") as fs, open(paths[1], "rb") as fd, \
                open(paths[2], "rb") as fw:
            done = 0
            nl_offset = 0
            while done < self.m:
                rows = min(self.block_rows, self.m - done)
                src = np.fromfile(fs, dtype=np.int64, count=rows)
                dst = np.fromfile(fd, dtype=np.int64, count=rows)
                weight = np.fromfile(fw, dtype=np.float64, count=rows)
                non_loop = src != dst
                kept = int(np.count_nonzero(non_loop))
                if kept == rows:
                    yield src, dst, weight, nl_offset
                elif kept:
                    yield (src[non_loop], dst[non_loop],
                           weight[non_loop], nl_offset)
                nl_offset += kept
                done += rows

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (f"CanonicalStream({kind}, n_nodes={self.n_nodes}, "
                f"m={self.m}, fp={self.table_fp[:12]})")


# ----------------------------------------------------------------------
# Building the stream
# ----------------------------------------------------------------------

def open_stream(path, directed: bool = True, delimiter: str = ",",
                format: Optional[str] = None,
                block_rows: Optional[int] = None,
                run_rows: Optional[int] = None) -> CanonicalStream:
    """Run pass 1 over ``path`` and return its :class:`CanonicalStream`.

    Arguments mirror :func:`repro.graph.ingest.read_edges`: ``.npz``
    input is self-describing (``directed``/``delimiter`` are ignored),
    CSV input honours both.
    """
    path = Path(path)
    fmt = format or detect_format(path)
    block_rows = int(block_rows or default_block_rows())
    run_rows = max(int(run_rows or default_run_rows()), 1)
    workdir = Path(tempfile.mkdtemp(prefix="repro-stream-"))
    try:
        with span("stream.pass1", path=str(path), format=fmt):
            if fmt == "npz":
                return _build_from_npz(path, workdir, block_rows,
                                       run_rows)
            if fmt != "csv":
                raise ValueError(f"unknown edge-table format {fmt!r} "
                                 "(expected 'csv' or 'npz')")
            return _build_from_csv(path, directed, delimiter, workdir,
                                   block_rows, run_rows)
    except BaseException:
        shutil.rmtree(workdir, ignore_errors=True)
        raise


class _Interner:
    """Incremental first-seen label interning, chunk by chunk.

    Processing chunks in file order and, within each chunk, new tokens
    in interleaved ``src[0], dst[0], src[1], ...`` first-occurrence
    order assigns exactly the ids (and label order) of
    :func:`repro.graph.ingest._intern_first_seen` over the whole file.
    """

    def __init__(self):
        self._ids = {}
        self.labels: List[str] = []

    def intern(self, src: np.ndarray, dst: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray]:
        if src.dtype.kind != "U":
            src = src.astype(np.str_)
        if dst.dtype.kind != "U":
            dst = dst.astype(np.str_)
        joint = np.empty(2 * len(src),
                         dtype=np.promote_types(src.dtype, dst.dtype))
        joint[0::2] = src
        joint[1::2] = dst
        uniq, first, inverse = np.unique(joint, return_index=True,
                                         return_inverse=True)
        order = np.argsort(first, kind="stable")
        tokens = uniq.tolist()
        ids = np.empty(len(uniq), dtype=np.int64)
        known = self._ids
        for position in order.tolist():
            token = tokens[position]
            found = known.get(token)
            if found is None:
                found = len(known)
                known[token] = found
                self.labels.append(token)
            ids[position] = found
        joint_ids = ids[inverse]
        return joint_ids[0::2], joint_ids[1::2]


def _validated(chunks, directed: bool):
    """Apply ``EdgeTable.from_arrays`` validation chunk by chunk and
    canonicalize undirected endpoints; yields clean chunks and finally
    returns ``observed`` (largest index + 1)."""
    observed = 0
    for src, dst, weight in chunks:
        if src.size and src.min() < 0:
            raise ValueError("src must contain non-negative indices")
        if dst.size and dst.min() < 0:
            raise ValueError("dst must contain non-negative indices")
        if weight.size and not np.all(np.isfinite(weight)):
            raise ValueError("weight contains non-finite values")
        if weight.size and weight.min() < 0:
            raise ValueError("edge weights must be non-negative")
        if src.size:
            top = int(max(src.max(), dst.max())) + 1
            observed = max(observed, top)
        if not directed and len(src):
            lo = np.minimum(src, dst)
            hi = np.maximum(src, dst)
            src, dst = lo, hi
        yield src, dst, weight, observed


def _build_from_csv(path: Path, directed: bool, delimiter: str,
                    workdir: Path, block_rows: int,
                    run_rows: int) -> CanonicalStream:
    spool = ChunkSpool(workdir / "parsed.chunks")
    try:
        stream_csv_chunks(path, spool, delimiter=delimiter,
                          block_bytes=_csv_block_bytes(block_rows))
    finally:
        spool.close()
    int_mode = not spool.any_tokens or spool.tokens_integer
    interner = None if int_mode else _Interner()

    def chunks():
        for src, dst, weight in spool.replay():
            if int_mode:
                if src.dtype.kind == "U":
                    src = src.astype(np.int64)
                    dst = dst.astype(np.int64)
                yield src, dst, weight
            else:
                src_idx, dst_idx = interner.intern(src, dst)
                yield src_idx, dst_idx, weight

    writer = RunWriter(workdir, run_rows)
    observed = 0
    for src, dst, weight, observed in _validated(chunks(), directed):
        writer.append(src, dst, weight)
    spool.unlink()
    if interner is not None:
        labels = tuple(interner.labels)
        n_nodes = len(labels)
    else:
        labels = None
        n_nodes = observed
    return _merge_and_finish(workdir, writer, directed, n_nodes,
                             labels, block_rows)


def _build_from_npz(path: Path, workdir: Path, block_rows: int,
                    run_rows: int) -> CanonicalStream:
    columns = NpzColumns(path)
    try:
        directed = columns.directed
        writer = RunWriter(workdir, run_rows)
        observed = 0
        for src, dst, weight, observed in _validated(
                columns.iter_rows(block_rows), directed):
            writer.append(src, dst, weight)
    finally:
        columns.close()
    n_nodes = columns.n_nodes
    require(n_nodes >= observed,
            f"n_nodes={n_nodes} is smaller than the largest index "
            f"{observed - 1}")
    labels = columns.labels
    if labels is not None:
        require(len(labels) == n_nodes,
                f"labels has length {len(labels)}, expected {n_nodes}")
    return _merge_and_finish(workdir, writer, directed, n_nodes,
                             labels, block_rows)


def _csv_block_bytes(block_rows: int) -> int:
    # ~16 text bytes per row is typical; clamp to sane block sizes.
    return min(max(block_rows * 16, 1 << 16), 64 << 20)


class _CanonicalWriter:
    """Spill canonical chunks to column files, accumulating aggregates
    in exactly ``np.bincount``'s sequential order."""

    def __init__(self, workdir: Path, n_nodes: int):
        self.workdir = Path(workdir)
        self._handles = [open(self.workdir / name, "wb") for name in
                         ("src.bin", "dst.bin", "weight.bin",
                          "wnl.bin")]
        self.m = 0
        self.nonloop_m = 0
        self.out_w = np.zeros(n_nodes, dtype=np.float64)
        self.in_w = np.zeros(n_nodes, dtype=np.float64)
        self.out_d = np.zeros(n_nodes, dtype=np.int64)
        self.in_d = np.zeros(n_nodes, dtype=np.int64)
        self.touched = np.zeros(n_nodes, dtype=bool)

    def emit(self, src: np.ndarray, dst: np.ndarray,
             weight: np.ndarray) -> None:
        src.tofile(self._handles[0])
        dst.tofile(self._handles[1])
        weight.tofile(self._handles[2])
        self.touched[src] = True
        self.touched[dst] = True
        non_loop = src != dst
        s = src[non_loop]
        d = dst[non_loop]
        w = weight[non_loop]
        np.ascontiguousarray(w).tofile(self._handles[3])
        np.add.at(self.out_w, s, w)
        np.add.at(self.in_w, d, w)
        np.add.at(self.out_d, s, 1)
        np.add.at(self.in_d, d, 1)
        self.m += len(src)
        self.nonloop_m += len(s)

    def close(self) -> None:
        for handle in self._handles:
            if not handle.closed:
                handle.close()


def _merge_and_finish(workdir: Path, writer: RunWriter, directed: bool,
                      n_nodes: int, labels, block_rows: int
                      ) -> CanonicalStream:
    run_paths = writer.finish()
    canonical = _CanonicalWriter(workdir, n_nodes)
    # Keep total merge-reader memory near one run regardless of fan-in.
    merge_block = max(2048, min(block_rows,
                                writer.run_rows // max(len(run_paths),
                                                       1)))
    with span("stream.merge", runs=len(run_paths)):
        merge_runs(run_paths, merge_block, canonical.emit)
    canonical.close()
    for run_path in run_paths:
        run_path.unlink(missing_ok=True)

    total = pairwise_file_sum(workdir / "wnl.bin", canonical.nonloop_m)
    if directed:
        grand_total = total
        out_strength = canonical.out_w
        in_strength = canonical.in_w
        strength = canonical.out_w + canonical.in_w
        out_degree = canonical.out_d
        in_degree = canonical.in_d
        degree = canonical.out_d + canonical.in_d
    else:
        # _undirected_strength on the loop-free table: out + in +
        # (empty) loop part, combined exactly in that order.
        grand_total = 2.0 * (total - 0.0) + 0.0
        strength = ((canonical.out_w + canonical.in_w)
                    + np.zeros(n_nodes, dtype=np.float64))
        out_strength = in_strength = strength
        degree = canonical.out_d + canonical.in_d
        out_degree = in_degree = degree

    table_fp = _fingerprint_columns(workdir, n_nodes, directed, labels)
    return CanonicalStream(
        workdir, directed, n_nodes, labels, canonical.m,
        canonical.nonloop_m, table_fp, grand_total, total,
        (out_strength, in_strength, strength),
        (out_degree, in_degree, degree),
        int(np.count_nonzero(canonical.touched)), block_rows)


def _fingerprint_columns(workdir: Path, n_nodes: int, directed: bool,
                         labels) -> str:
    """Reproduce :func:`fingerprint_table`'s digest from the column
    files (same bytes: ``tofile`` writes exactly ``tobytes``)."""
    digest = hashlib.sha256()
    digest.update(f"repro.table/v{_SCHEMA_VERSION}".encode())
    digest.update(b"D" if directed else b"U")
    digest.update(np.int64(n_nodes).tobytes())
    if labels is not None:
        digest.update(canonical_json(list(labels)).encode())
    else:
        digest.update(b"<unlabeled>")
    for name in ("src.bin", "dst.bin", "weight.bin"):
        with open(workdir / name, "rb") as handle:
            while True:
                piece = handle.read(4 << 20)
                if not piece:
                    break
                digest.update(piece)
    return digest.hexdigest()
