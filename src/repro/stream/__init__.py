"""Out-of-core streaming scoring (the two-pass block pipeline).

``repro.stream`` scores arbitrarily large edge files in O(nodes +
block) memory, bit-identical to the in-memory path:

* pass 1 (:func:`open_stream`) canonicalizes the file — external-merge
  coalesce of duplicate rows, node aggregates, content fingerprint —
  into a :class:`CanonicalStream`;
* pass 2 (:func:`stream_extract`) re-streams the canonical blocks,
  scores them against the pass-1 aggregates and keeps only budget
  survivors.

Plans opt in through ``flow(source, streaming=True | "auto")``;
:func:`supports_streaming` / :class:`StreamingUnsupported` gate the
methods (NC, NCp, disparity, naive) whose scores are per-edge
functions of node aggregates. :func:`stream_convert` reuses pass 1 for
bounded-memory ``repro convert``.
"""

from .convert import stream_convert
from .pipeline import (DEFAULT_AUTO_THRESHOLD_BYTES, DEFAULT_BLOCK_ROWS,
                       DEFAULT_RUN_ROWS, CanonicalStream, TableSummary,
                       auto_threshold_bytes, default_block_rows,
                       default_run_rows, open_stream)
from .score import (STREAMABLE_METHODS, StreamingUnsupported,
                    stream_extract, supports_streaming)

__all__ = [
    "DEFAULT_AUTO_THRESHOLD_BYTES",
    "DEFAULT_BLOCK_ROWS",
    "DEFAULT_RUN_ROWS",
    "CanonicalStream",
    "StreamingUnsupported",
    "STREAMABLE_METHODS",
    "TableSummary",
    "auto_threshold_bytes",
    "default_block_rows",
    "default_run_rows",
    "open_stream",
    "stream_convert",
    "stream_extract",
    "supports_streaming",
]
