"""Pass 2 of the out-of-core pipeline: score blocks, keep survivors.

Every streamable score (NC, NCp, disparity, naive) is a *per-edge*
function of the pass-1 node aggregates: given strengths, degrees and
the grand total, row ``i``'s score never looks at any other row. That
is exactly what :class:`_StreamBlock` exploits — one canonical
loop-free block masquerades as the scoring table (its per-edge columns
are the block's, its node-level marginals are the stream's), so the
unchanged in-memory scoring code evaluates on the block and produces
bit for bit the matching slice of the full-table score array.

Extraction then runs on the fly:

* threshold budgets keep each block's strict survivors
  (``score > t``, exactly :meth:`ScoredEdges.filter`);
* share / edge-count budgets maintain a running top-``k`` under the
  total order ``(-score, -weight, row)`` — the same lexsort key
  :meth:`EdgeTable.top_k_by` uses, so periodic truncation of the
  candidate buffer cannot change the final selection;
* NC's δ rule ranks by ``score - δ·sdev`` per block, mirroring
  :meth:`NoiseCorrectedBackbone.extract_from_scores`.

Memory stays O(nodes + block + backbone): only survivors accumulate.

Methods whose extraction is a whole-graph computation (HSS, MST,
doubly stochastic, k-core) cannot stream; they raise
:class:`StreamingUnsupported` at compile time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backbones.base import BackboneMethod
from ..backbones.disparity import DisparityFilter
from ..backbones.naive import NaiveThreshold
from ..core.noise_corrected import (NoiseCorrectedBackbone,
                                    NoiseCorrectedPValue)
from ..graph.edge_table import EdgeTable
from ..obs.trace import span
from ..util.validation import require
from .pipeline import CanonicalStream

#: Methods whose scores are per-edge functions of O(nodes) aggregates.
#: Matched by exact type: a subclass may override scoring in ways that
#: read the whole table, so it does not silently inherit streamability.
STREAMABLE_METHODS = (NoiseCorrectedBackbone, NoiseCorrectedPValue,
                      DisparityFilter, NaiveThreshold)


class StreamingUnsupported(ValueError):
    """The method needs the full graph in memory and cannot stream."""

    def __init__(self, method: BackboneMethod):
        menu = ", ".join(cls.code for cls in STREAMABLE_METHODS)
        super().__init__(
            f"{method.code} ({method.name}) cannot run out-of-core: "
            f"its extraction needs the full graph in memory; "
            f"streaming supports {menu}")
        self.method_code = method.code


def supports_streaming(method: BackboneMethod) -> bool:
    """Whether ``method`` can run through the streaming pipeline."""
    return type(method) in STREAMABLE_METHODS


class _StreamBlock(EdgeTable):
    """One loop-free canonical block posing as the full scoring table.

    Node-level queries answer from the stream's pass-1 aggregates —
    which are exactly the marginals of ``prepare_table``'s loop-free
    table — while per-edge columns are the block's rows.
    """

    __slots__ = ("_stream",)

    def __init__(self, stream: CanonicalStream, src, dst, weight):
        EdgeTable.__init__(self, src, dst, weight,
                           n_nodes=stream.n_nodes,
                           directed=stream.directed, coalesce=False)
        self._stream = stream

    def without_self_loops(self) -> "EdgeTable":
        return self  # canonical scoring blocks are loop-free

    def out_strength(self) -> np.ndarray:
        return self._stream.out_strength

    def in_strength(self) -> np.ndarray:
        return self._stream.in_strength

    def strength(self) -> np.ndarray:
        return self._stream.strength

    def out_degree(self) -> np.ndarray:
        return self._stream.out_degree

    def in_degree(self) -> np.ndarray:
        return self._stream.in_degree

    def degree(self) -> np.ndarray:
        return self._stream.degree

    @property
    def grand_total(self) -> float:
        return self._stream.grand_total

    @property
    def total_weight(self) -> float:
        return self._stream.total_weight


class _PrepareProxy:
    """Stand-in for the full table at the ``prepare_table`` gate.

    ``prepare_table`` reads exactly ``table.m`` (the non-empty check
    counts *all* rows, loops included) and ``without_self_loops()``;
    handing it the stream's full row count and the block keeps the
    empty-network diagnostics identical to the in-memory path.
    """

    __slots__ = ("m", "_block")

    def __init__(self, m: int, block: _StreamBlock):
        self.m = m
        self._block = block

    def without_self_loops(self) -> _StreamBlock:
        return self._block


# ----------------------------------------------------------------------
# Budget resolution (mirrors serve._apply_filter + extract_from_scores)
# ----------------------------------------------------------------------

def _job_mode(method: BackboneMethod, budget) -> Tuple[bool, str, float]:
    """Flatten the filter phase into ``(adjusted, kind, value)``.

    ``adjusted`` selects NC's ``score - δ·sdev`` ranking; ``kind`` is
    one of ``threshold`` / ``share`` / ``n_edges``. Raises exactly the
    diagnostics the in-memory filter phase raises for bad budgets.
    """
    if budget is None or budget.rank == "method" \
            or method.parameter_free:
        kwargs = {} if budget is None else budget.budget_kwargs()
        return _method_mode(method, kwargs)
    if budget.threshold is not None:
        return False, "threshold", float(budget.threshold)
    if budget.share is not None:
        return False, "share", float(budget.share)
    if budget.n_edges is not None:
        return False, "n_edges", int(budget.n_edges)
    return _method_mode(method, {})


def _method_mode(method: BackboneMethod, kwargs) -> Tuple[bool, str, float]:
    threshold, share, n_edges = method._resolve_budget(
        kwargs.get("threshold"), kwargs.get("share"),
        kwargs.get("n_edges"))
    if method.parameter_free:
        return False, "threshold", 0.0
    adjusted = type(method) is NoiseCorrectedBackbone
    if threshold is not None:
        return adjusted, "threshold", float(threshold)
    if share is not None:
        return adjusted, "share", float(share)
    return adjusted, "n_edges", int(n_edges)


# ----------------------------------------------------------------------
# Streaming selectors
# ----------------------------------------------------------------------

class _ThresholdSelector:
    """``ScoredEdges.filter``: keep rows scoring strictly above ``t``."""

    def __init__(self, threshold: float, nonloop_m: int):
        self.threshold = float(threshold)
        self._parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    def feed(self, values: np.ndarray, block: _StreamBlock,
             nl_offset: int) -> None:
        mask = values > self.threshold
        if np.any(mask):
            self._parts.append((block.src[mask], block.dst[mask],
                                block.weight[mask]))

    def parts(self) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        return self._parts


class _TopKSelector:
    """``EdgeTable.top_k_by`` as a running selection.

    Candidates are ranked under the total order
    ``(-value, -weight, global row)`` — ``top_k_by``'s exact lexsort
    key, with the block's global loop-free row index standing in for
    ``np.arange(m)``. The order is total, so truncating the candidate
    buffer to the best ``k`` after any prefix of blocks keeps exactly
    the rows the full sort would keep; once ``k`` candidates are held,
    rows scoring strictly below the ``k``-th candidate's value are
    strictly worse under the order and are dropped at feed time
    (``~(values < floor)`` so NaN scores — sorted last by both paths —
    are never dropped early). Buffer memory is O(k + block); the final
    output is re-sorted by row index, matching
    ``subset(np.sort(order[:k]))``.
    """

    #: Column layout of the candidate buffer; ``values``/``weight``/
    #: ``rows`` double as the ranking key.
    _VALUES, _ROWS, _SRC, _DST, _WEIGHT = range(5)

    def __init__(self, k: int, nonloop_m: int):
        k = int(k)
        require(0 <= k <= nonloop_m,
                f"k={k} out of range [0, {nonloop_m}]")
        self.k = k
        self._columns: List[List[np.ndarray]] = [[] for _ in range(5)]
        self._count = 0
        self._floor: Optional[float] = None

    def feed(self, values: np.ndarray, block: _StreamBlock,
             nl_offset: int) -> None:
        if self.k == 0:
            return
        rows = np.arange(nl_offset, nl_offset + block.m, dtype=np.int64)
        src, dst, weight = block.src, block.dst, block.weight
        if self._floor is not None:
            keep = ~(values < self._floor)
            if not keep.all():
                values, rows = values[keep], rows[keep]
                src, dst, weight = src[keep], dst[keep], weight[keep]
        if not len(values):
            return
        for column, array in zip(self._columns,
                                 (values, rows, src, dst, weight)):
            column.append(array)
        self._count += len(values)
        if self._count > self.k + max(self.k, 1 << 18):
            self._truncate()

    def _gather(self, index: int) -> np.ndarray:
        column = self._columns[index]
        return column[0] if len(column) == 1 else np.concatenate(column)

    def _order(self, values, rows, weight) -> np.ndarray:
        return np.lexsort((rows, -weight, -values))[:self.k]

    def _truncate(self) -> None:
        values = self._gather(self._VALUES)
        rows = self._gather(self._ROWS)
        weight = self._gather(self._WEIGHT)
        order = self._order(values, rows, weight)
        # Replace columns one at a time so each block's originals are
        # released before the next column concatenates.
        for index, whole in ((self._VALUES, values), (self._ROWS, rows),
                             (self._WEIGHT, weight)):
            self._columns[index] = [whole[order]]
        del values, rows, weight
        for index in (self._SRC, self._DST):
            self._columns[index] = [self._gather(index)[order]]
        self._count = len(order)
        if self._count == self.k:
            kept = self._columns[self._VALUES][0]
            self._floor = float(kept[-1])

    def parts(self) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        if self.k == 0 or not self._count:
            return []
        values = self._gather(self._VALUES)
        rows = self._gather(self._ROWS)
        weight = self._gather(self._WEIGHT)
        order = self._order(values, rows, weight)
        keep = order[np.argsort(rows[order], kind="stable")]
        return [(self._gather(self._SRC)[keep],
                 self._gather(self._DST)[keep],
                 self._gather(self._WEIGHT)[keep])]


def _make_selector(kind: str, value: float, nonloop_m: int):
    if kind == "threshold":
        return _ThresholdSelector(value, nonloop_m)
    if kind == "share":
        require(0.0 <= value <= 1.0,
                f"share must be in [0, 1], got {value}")
        return _TopKSelector(min(int(round(value * nonloop_m)),
                                 nonloop_m), nonloop_m)
    return _TopKSelector(min(int(value), nonloop_m), nonloop_m)


def _build_backbone(parts, stream: CanonicalStream) -> EdgeTable:
    if parts:
        src = np.concatenate([part[0] for part in parts])
        dst = np.concatenate([part[1] for part in parts])
        weight = np.concatenate([part[2] for part in parts])
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
        weight = np.empty(0, dtype=np.float64)
    return EdgeTable(src, dst, weight, n_nodes=stream.n_nodes,
                     directed=stream.directed, labels=stream.labels,
                     coalesce=False)


# ----------------------------------------------------------------------
# The pass-2 driver
# ----------------------------------------------------------------------

def stream_extract(stream: CanonicalStream, jobs: Sequence[Tuple]
                   ) -> Tuple[Dict[object, EdgeTable],
                              Dict[object, Exception]]:
    """Score the stream once per distinct key, extract every job.

    ``jobs`` is a sequence of ``(job_id, key, method, budget)`` tuples
    — ``key`` the score-cache key (jobs sharing it have
    score-identical methods and are scored once per block), ``budget``
    a :class:`~repro.flow.spec.FilterSpec` or ``None``. Returns
    ``(backbones, errors)`` keyed by ``job_id``; failures are isolated
    with the in-memory precedence (a scoring error beats a budget
    error, exactly as ``serve`` skips the filter phase for keys that
    failed to score).
    """
    jobs = list(jobs)
    rep: Dict[str, BackboneMethod] = {}
    groups: Dict[str, List[Tuple[object, BackboneMethod, bool,
                                 object]]] = {}
    resolve_errors: Dict[object, Exception] = {}
    for job_id, key, method, budget in jobs:
        rep.setdefault(key, method)
        groups.setdefault(key, [])
        try:
            adjusted, kind, value = _job_mode(method, budget)
            selector = _make_selector(kind, value, stream.nonloop_m)
        except Exception as error:
            resolve_errors[job_id] = error
            continue
        groups[key].append((job_id, method, adjusted, selector))

    failed: Dict[str, Exception] = {}
    job_errors: Dict[object, Exception] = {}
    with span("stream.pass2", keys=len(rep), jobs=len(jobs)):
        for src, dst, weight, nl_offset in _scoring_blocks(stream):
            block = _StreamBlock(stream, src, dst, weight)
            proxy = _PrepareProxy(stream.m, block)
            for key, method in rep.items():
                if key in failed:
                    continue
                try:
                    scored = method.score(proxy)
                except Exception as error:
                    failed[key] = error
                    continue
                for job_id, job_method, adjusted, selector in groups[key]:
                    if job_id in job_errors:
                        continue
                    try:
                        selector.feed(_job_values(scored, job_method,
                                                  adjusted),
                                      block, nl_offset)
                    except Exception as error:
                        job_errors[job_id] = error

    backbones: Dict[object, EdgeTable] = {}
    errors: Dict[object, Exception] = {}
    for job_id, key, method, budget in jobs:
        if key in failed:
            errors[job_id] = failed[key]
        elif job_id in resolve_errors:
            errors[job_id] = resolve_errors[job_id]
        elif job_id in job_errors:
            errors[job_id] = job_errors[job_id]
    for key, group in groups.items():
        if key in failed:
            continue
        for job_id, method, adjusted, selector in group:
            if job_id in errors:
                continue
            try:
                backbones[job_id] = _build_backbone(selector.parts(),
                                                    stream)
            except Exception as error:
                errors[job_id] = error
    return backbones, errors


def _scoring_blocks(stream: CanonicalStream):
    """The stream's loop-free blocks — or one empty block when there
    are none, so scoring (and its diagnostics, e.g. NC on an empty or
    loops-only network) runs exactly once as it would in memory."""
    empty = True
    for item in stream.iter_scoring_blocks():
        empty = False
        yield item
    if empty:
        yield (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
               np.empty(0, dtype=np.float64), 0)


def _job_values(scored, method: BackboneMethod,
                adjusted: bool) -> np.ndarray:
    if not adjusted:
        return scored.score
    if scored.sdev is None:
        raise ValueError("NC extraction needs per-edge sdev; these "
                         "scores carry none")
    return scored.score - method.delta * scored.sdev
