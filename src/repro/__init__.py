"""repro — a full reproduction of *Network Backboning with Noisy Data*
(Coscia & Neffke, ICDE 2017).

The front door is :func:`repro.flow.flow`: one declarative,
fingerprinted request API from any source (path, ``file://`` URL,
in-memory table) to an extracted backbone, with batches of requests
deduplicated down to a single scoring pass per distinct input.

>>> from repro import EdgeTable, flow
>>> table = EdgeTable.from_pairs(
...     [(0, 1, 10.0), (0, 2, 10.0), (0, 3, 12.0), (0, 4, 12.0),
...      (0, 5, 12.0), (1, 2, 4.0)], directed=False)
>>> result = flow(table).method("nc", delta=1.0).metrics("edges").run()
>>> result.backbone.m == int(result.metrics["edges"])
True
>>> variants = flow(table).method("nc").run_many(delta=[0.5, 1.0, 2.0])
>>> len({r.cache_key for r in variants})  # one scoring pass for all 3
1

Beneath the flow layer the package implements the paper's
Noise-Corrected backbone and every substrate its evaluation depends
on: five baseline backbone methods, a columnar graph stack with
chunked/binary ingestion, a content-addressed score cache with three
backends, statistics (OLS, correlations, beta-binomial machinery),
community discovery (Louvain, Infomap-lite, NMI), synthetic data
generators replacing the proprietary datasets, and experiment modules
regenerating every table and figure.

The classic two-phase API remains (and is what plans lower onto):

>>> from repro import NoiseCorrectedBackbone
>>> backbone = NoiseCorrectedBackbone(delta=1.0).extract(table)
>>> backbone == result.backbone
True
"""

from .backbones import (BackboneMethod, DisparityFilter, DoublyStochastic,
                        HighSalienceSkeleton, MaximumSpanningTree,
                        NaiveThreshold, ScoredEdges,
                        SinkhornConvergenceError, get_method,
                        paper_methods)
from .community import (Partition, infomap, label_propagation, louvain,
                        map_equation_codelength, modularity,
                        normalized_mutual_information)
from .core import (NoiseCorrectedBackbone, NoiseCorrectedPValue,
                   compare_edges, confidence_intervals, expected_weights,
                   lift, posterior_probability, transformed_lift,
                   transformed_lift_variance)
from .evaluation import (average_stability, coverage,
                         predicted_vs_observed_variance, quality_ratio,
                         recovery_jaccard, stability_spearman)
from .flow import (FlowResult, Plan, RemoteSource, flow,
                   register_scheme, serve)
from .generators import (SyntheticWorld, add_noise, barabasi_albert,
                         erdos_renyi_gnm, generate_occupation_study,
                         planted_partition)
from .graph import (EdgeTable, EdgeTableBuilder, Graph, read_edge_csv,
                    read_edges, write_edge_csv, write_edges)
from .pipeline import Pipeline, ScoreStore

__version__ = "1.1.0"

__all__ = [
    "BackboneMethod",
    "DisparityFilter",
    "DoublyStochastic",
    "EdgeTable",
    "EdgeTableBuilder",
    "FlowResult",
    "Graph",
    "HighSalienceSkeleton",
    "MaximumSpanningTree",
    "NaiveThreshold",
    "NoiseCorrectedBackbone",
    "NoiseCorrectedPValue",
    "Partition",
    "Pipeline",
    "Plan",
    "RemoteSource",
    "ScoreStore",
    "ScoredEdges",
    "SinkhornConvergenceError",
    "SyntheticWorld",
    "add_noise",
    "average_stability",
    "barabasi_albert",
    "compare_edges",
    "confidence_intervals",
    "coverage",
    "erdos_renyi_gnm",
    "expected_weights",
    "flow",
    "generate_occupation_study",
    "get_method",
    "infomap",
    "label_propagation",
    "lift",
    "louvain",
    "map_equation_codelength",
    "modularity",
    "normalized_mutual_information",
    "paper_methods",
    "planted_partition",
    "posterior_probability",
    "predicted_vs_observed_variance",
    "quality_ratio",
    "read_edge_csv",
    "read_edges",
    "recovery_jaccard",
    "register_scheme",
    "serve",
    "stability_spearman",
    "transformed_lift",
    "transformed_lift_variance",
    "write_edge_csv",
    "write_edges",
    "__version__",
]
