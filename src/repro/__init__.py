"""repro — a full reproduction of *Network Backboning with Noisy Data*
(Coscia & Neffke, ICDE 2017).

The package implements the paper's Noise-Corrected backbone and every
substrate its evaluation depends on: five baseline backbone methods, a
columnar graph stack, statistics (OLS, correlations, beta-binomial
machinery), community discovery (Louvain, Infomap-lite, NMI), synthetic
data generators replacing the proprietary datasets, and experiment
modules regenerating every table and figure.

Quickstart
----------
>>> from repro import EdgeTable, NoiseCorrectedBackbone
>>> table = EdgeTable.from_pairs(
...     [(0, 1, 10.0), (0, 2, 10.0), (0, 3, 12.0), (0, 4, 12.0),
...      (0, 5, 12.0), (1, 2, 4.0)], directed=False)
>>> backbone = NoiseCorrectedBackbone(delta=1.0).extract(table)
>>> sorted(backbone.edge_key_set())  # doctest: +ELLIPSIS
[...]
"""

from .backbones import (BackboneMethod, DisparityFilter, DoublyStochastic,
                        HighSalienceSkeleton, MaximumSpanningTree,
                        NaiveThreshold, ScoredEdges,
                        SinkhornConvergenceError, get_method,
                        paper_methods)
from .community import (Partition, infomap, label_propagation, louvain,
                        map_equation_codelength, modularity,
                        normalized_mutual_information)
from .core import (NoiseCorrectedBackbone, NoiseCorrectedPValue,
                   compare_edges, confidence_intervals, expected_weights,
                   lift, posterior_probability, transformed_lift,
                   transformed_lift_variance)
from .evaluation import (average_stability, coverage,
                         predicted_vs_observed_variance, quality_ratio,
                         recovery_jaccard, stability_spearman)
from .generators import (SyntheticWorld, add_noise, barabasi_albert,
                         erdos_renyi_gnm, generate_occupation_study,
                         planted_partition)
from .graph import (EdgeTable, EdgeTableBuilder, Graph, read_edge_csv,
                    read_edges, write_edge_csv, write_edges)
from .pipeline import Pipeline, ScoreStore

__version__ = "1.1.0"

__all__ = [
    "BackboneMethod",
    "DisparityFilter",
    "DoublyStochastic",
    "EdgeTable",
    "EdgeTableBuilder",
    "Graph",
    "HighSalienceSkeleton",
    "MaximumSpanningTree",
    "NaiveThreshold",
    "NoiseCorrectedBackbone",
    "NoiseCorrectedPValue",
    "Partition",
    "Pipeline",
    "ScoreStore",
    "ScoredEdges",
    "SinkhornConvergenceError",
    "SyntheticWorld",
    "add_noise",
    "average_stability",
    "barabasi_albert",
    "compare_edges",
    "confidence_intervals",
    "coverage",
    "erdos_renyi_gnm",
    "expected_weights",
    "generate_occupation_study",
    "get_method",
    "infomap",
    "label_propagation",
    "lift",
    "louvain",
    "map_equation_codelength",
    "modularity",
    "normalized_mutual_information",
    "paper_methods",
    "planted_partition",
    "posterior_probability",
    "predicted_vs_observed_variance",
    "quality_ratio",
    "read_edge_csv",
    "read_edges",
    "recovery_jaccard",
    "stability_spearman",
    "transformed_lift",
    "transformed_lift_variance",
    "write_edge_csv",
    "write_edges",
    "__version__",
]
