"""Exporters: Prometheus text exposition and JSON trace artifacts.

:func:`render_prometheus` merges any number of registries into one
text exposition (version 0.0.4 — ``# HELP`` / ``# TYPE`` comments,
one sample per line); :func:`parse_prometheus` is the small
validating inverse that the tests and the CI chaos scrape use to
assert the endpoint stays well-formed. :func:`trace_to_dict` turns a
flat span list into the serve-response artifact: flat spans, a
nested tree, and per-stage duration totals.
"""

from __future__ import annotations

import math
import re
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Tuple, Union

from .metrics import MetricFamily, MetricsRegistry, Sample
from .trace import Span

__all__ = [
    "parse_prometheus", "render_families", "render_prometheus",
    "span_tree", "trace_to_dict",
]


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_sample(sample: Sample) -> str:
    if sample.labels:
        inner = ",".join(
            f'{key}="{_escape_label_value(str(val))}"'
            for key, val in sample.labels)
        return f"{sample.name}{{{inner}}} {_format_value(sample.value)}"
    return f"{sample.name} {_format_value(sample.value)}"


def render_families(families: Iterable[MetricFamily]) -> str:
    """Render families as Prometheus text, merging same-name rows.

    Multiple registries may expose samples for the same family name
    (e.g. a daemon registry layered over the process registry); their
    samples concatenate under a single HELP/TYPE header, first
    registration's metadata winning.
    """
    order: List[str] = []
    merged: Dict[str, MetricFamily] = {}
    for family in families:
        seen = merged.get(family.name)
        if seen is None:
            merged[family.name] = family
            order.append(family.name)
        else:
            merged[family.name] = seen._replace(
                samples=seen.samples + family.samples)
    lines: List[str] = []
    for name in order:
        family = merged[name]
        if family.help:
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {name} {family.kind}")
        lines.extend(_render_sample(s) for s in family.samples)
    return "\n".join(lines) + "\n" if lines else ""


def render_prometheus(
        registries: Iterable[MetricsRegistry]) -> str:
    """One text exposition over several registries."""
    families: List[MetricFamily] = []
    for registry in registries:
        families.extend(registry.collect())
    return render_families(families)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$")
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(
        text: str
) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse a text exposition back into ``{name: {labels: value}}``.

    Strict enough to catch real formatting bugs: every non-comment,
    non-blank line must match the sample grammar and carry a float
    value, and label blocks must be well-formed pairs. Raises
    :class:`ValueError` naming the offending line.
    """
    series: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = \
        defaultdict(dict)
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _SAMPLE_RE.match(stripped)
        if match is None:
            raise ValueError(
                f"line {number}: malformed sample {line!r}")
        raw_value = match.group("value")
        if raw_value in ("+Inf", "-Inf", "NaN"):
            value = float(raw_value.replace("Inf", "inf"))
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"line {number}: bad value {raw_value!r}") \
                    from None
        labels: Tuple[Tuple[str, str], ...] = ()
        raw_labels = match.group("labels")
        if raw_labels:
            pairs = _LABEL_PAIR_RE.findall(raw_labels)
            reassembled = ",".join(f'{k}="{v}"' for k, v in pairs)
            if reassembled != raw_labels:
                raise ValueError(
                    f"line {number}: malformed labels "
                    f"{raw_labels!r}")
            labels = tuple((k, v.replace(r'\"', '"')
                            .replace(r"\n", "\n")
                            .replace("\\\\", "\\"))
                           for k, v in pairs)
        series[match.group("name")][labels] = value
    return dict(series)


def _as_dict(item: Union[Span, Dict[str, Any]]) -> Dict[str, Any]:
    if isinstance(item, dict):
        return dict(item)
    return item.to_dict()


def span_tree(
        spans: Iterable[Union[Span, Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Nest flat spans into parent → ``children`` dicts.

    Spans whose parent is absent from the list (or ``None``) become
    roots — the daemon re-parents worker and batch spans under a
    synthetic request root before calling this.
    """
    flat = [_as_dict(s) for s in spans]
    flat.sort(key=lambda d: (d.get("start_unix", 0.0),
                             d.get("span_id", "")))
    by_parent: Dict[Any, List[Dict[str, Any]]] = defaultdict(list)
    ids = {d["span_id"] for d in flat}
    roots: List[Dict[str, Any]] = []
    for node in flat:
        parent = node.get("parent_id")
        if parent is None or parent not in ids:
            roots.append(node)
        else:
            by_parent[parent].append(node)

    def nest(node: Dict[str, Any]) -> Dict[str, Any]:
        children = by_parent.get(node["span_id"], [])
        made = dict(node)
        made["children"] = [nest(child) for child in children]
        return made

    return [nest(root) for root in roots]


def trace_to_dict(
        trace_id: str,
        spans: Iterable[Union[Span, Dict[str, Any]]]
) -> Dict[str, Any]:
    """The JSON trace artifact attached to serve responses.

    ``stages`` sums wall duration by span name (so "where did the
    time go" is one dict away); ``wall_s`` is the root spans' total.
    """
    flat = [_as_dict(s) for s in spans]
    flat.sort(key=lambda d: (d.get("start_unix", 0.0),
                             d.get("span_id", "")))
    tree = span_tree(flat)
    stages: Dict[str, float] = defaultdict(float)
    for node in flat:
        stages[node["name"]] += float(node.get("duration_s", 0.0))
    return {
        "trace_id": trace_id,
        "spans": flat,
        "tree": tree,
        "stages": dict(stages),
        "wall_s": sum(float(r.get("duration_s", 0.0))
                      for r in tree),
    }
