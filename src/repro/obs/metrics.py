"""A threadsafe, dependency-free metrics registry.

Three instrument kinds, mirroring the Prometheus data model:

- :class:`Counter` — monotone totals (requests, retries, misses);
- :class:`Gauge` — set-anywhere level (degraded flag, queue depth);
- :class:`Histogram` — fixed cumulative buckets plus sum and count
  (queue wait, batch execution, request latency).

A :class:`MetricsRegistry` owns instruments by name and can also host
*collectors* — callables returning :class:`MetricFamily` rows built
on demand from existing stats objects (``CacheStats``, daemon
counters), which is how the legacy per-subsystem stats are unified
behind one scrape without rewriting their call sites.

Every instrument takes its own lock around mutation, so increments
from handler threads, the batcher and the probe ticker never drop
updates. The module-level default registry (:func:`get_registry`)
hosts process-wide series (pool retries, KV retries, store
degradation events); the daemon layers its own registry on top.
"""

from __future__ import annotations

import math
import re
import threading
from collections import OrderedDict
from typing import (Any, Callable, Dict, Iterable, List, NamedTuple,
                    Optional, Sequence, Tuple, Union)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricFamily",
    "MetricsRegistry", "Sample", "get_registry", "make_family",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0)


class Sample(NamedTuple):
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float


class MetricFamily(NamedTuple):
    """A named series with its type and help text, ready to render."""

    name: str
    kind: str
    help: str
    samples: Tuple[Sample, ...]


def make_family(kind: str, name: str, help: str,
                samples: Union[float, int,
                               Sequence[Tuple[Dict[str, str],
                                              float]]]
                ) -> MetricFamily:
    """Build a family from plain values — the collector helper.

    ``samples`` is either a single unlabeled number or a sequence of
    ``(labels_dict, value)`` pairs.
    """
    if isinstance(samples, (int, float)):
        rows = (Sample(name, (), float(samples)),)
    else:
        rows = tuple(
            Sample(name,
                   tuple(sorted((str(k), str(v))
                                for k, v in labels.items())),
                   float(value))
            for labels, value in samples)
    return MetricFamily(name, kind, help, rows)


class _Instrument:
    """Shared machinery: name/label validation, the value map, the
    per-instrument lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.label_names:
            # Unlabeled series render at 0 immediately so dashboards
            # and the CI scrape see them before the first event.
            self._values[()] = 0.0

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[k]) for k in self.label_names)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _sample_rows(self) -> List[Sample]:
        with self._lock:
            items = sorted(self._values.items())
        return [Sample(self.name,
                       tuple(zip(self.label_names, key)), value)
                for key, value in items]

    def collect(self) -> MetricFamily:
        return MetricFamily(self.name, self.kind, self.help,
                            tuple(self._sample_rows()))


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Instrument):
    """A value that can go anywhere."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """Fixed cumulative buckets plus ``_sum`` and ``_count``.

    Buckets are chosen at construction and never resize — the
    Prometheus model, and also what keeps ``observe`` O(buckets) with
    no allocation on the hot path.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(b <= 0 for b in bounds):
            raise ValueError("histogram buckets must be positive")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def collect(self) -> MetricFamily:
        with self._lock:
            counts = list(self._counts)
            total, n = self._sum, self._count
        rows = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            rows.append(Sample(self.name + "_bucket",
                               (("le", _format_bound(bound)),),
                               float(running)))
        rows.append(Sample(self.name + "_bucket", (("le", "+Inf"),),
                           float(n)))
        rows.append(Sample(self.name + "_sum", (), total))
        rows.append(Sample(self.name + "_count", (), float(n)))
        return MetricFamily(self.name, self.kind, self.help,
                            tuple(rows))


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


class MetricsRegistry:
    """Instruments by name, plus on-demand collectors.

    ``counter``/``gauge``/``histogram`` are idempotent: asking twice
    for the same name returns the same instrument (and raises if the
    second request disagrees on kind or labels), so modules can
    declare their series at import time without coordination.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: "OrderedDict[str, Any]" = OrderedDict()
        self._collectors: List[Callable[[],
                                        Iterable[MetricFamily]]] = []

    def _get_or_make(self, factory, name: str, help: str,
                     **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not factory:
                    raise ValueError(
                        f"{name} already registered as "
                        f"{type(existing).__name__}")
                wanted = kwargs.get("label_names")
                if (wanted is not None
                        and tuple(wanted) != existing.label_names):
                    raise ValueError(
                        f"{name} already registered with labels "
                        f"{existing.label_names}")
                return existing
            made = factory(name, help, **kwargs)
            self._metrics[name] = made
            return made

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_make(Counter, name, help,
                                 label_names=tuple(labels))

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_make(Gauge, name, help,
                                 label_names=tuple(labels))

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get_or_make(Histogram, name, help,
                                 buckets=tuple(buckets))

    def get(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._metrics.get(name)

    def register_collector(
            self,
            fn: Callable[[], Iterable[MetricFamily]]
    ) -> Callable[[], Iterable[MetricFamily]]:
        with self._lock:
            self._collectors.append(fn)
        return fn

    def unregister_collector(self, fn) -> None:
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def collect(self) -> List[MetricFamily]:
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        families = [metric.collect() for metric in metrics]
        for collector in collectors:
            families.extend(collector())
        return families

    def render(self) -> str:
        from .export import render_families
        return render_families(self.collect())


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT
