"""Spans, traces, and cross-process propagation.

A *trace* is the story of one request; a *span* is one timed stage of
it (parse, compile, score, extract ...). The design constraints, in
order of importance:

1. **Near-free when off.** Instrumented hot paths call :func:`span`,
   which does a single ``ContextVar.get()``; with no active trace it
   returns a shared no-op context manager and allocates nothing.
2. **Fork-safe worker adoption.** ``parallel_map`` ships a picklable
   :class:`SpanContext` to worker processes; the worker wraps the
   task in :func:`activate`, which installs a *fresh, empty* sink
   list for that activation. Only spans recorded inside the sink ride
   back with the result — a forked child never re-ships spans its
   parent already recorded, and a serial in-parent retry of the same
   payload records into the caller's own sink transparently.
3. **No global mutation until a trace ends.** Finished spans
   accumulate in the per-trace sink; :func:`trace` publishes the sink
   to the module-level :data:`TRACER` ring only on exit, so
   concurrent traces (one per daemon batch) never interleave.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from contextvars import ContextVar
from typing import (Any, Dict, Iterable, List, NamedTuple, Optional,
                    Tuple, Union)

__all__ = [
    "Span", "SpanContext", "Tracer", "TRACER", "activate",
    "add_attributes", "current_context", "extend_current", "span",
    "trace",
]


class SpanContext(NamedTuple):
    """The picklable coordinates of a live span.

    This is what crosses process boundaries: enough for a worker to
    parent its spans correctly, nothing more.
    """

    trace_id: str
    span_id: str


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed, attributed stage of a trace.

    ``duration_s`` is wall time (``perf_counter``), ``cpu_s`` is
    process CPU time (``process_time``) — comparing the two separates
    "slow because computing" from "slow because waiting".
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id",
                 "start_unix", "duration_s", "cpu_s", "attributes",
                 "_t0", "_c0")

    def __init__(self, name: str, trace_id: str,
                 parent_id: Optional[str],
                 attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attributes = dict(attributes or {})
        self.start_unix = time.time()
        self.duration_s = 0.0
        self.cpu_s = 0.0
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()

    @classmethod
    def finished(cls, name: str, trace_id: str,
                 parent_id: Optional[str] = None, *,
                 start_unix: float = 0.0, duration_s: float = 0.0,
                 cpu_s: float = 0.0,
                 attributes: Optional[Dict[str, Any]] = None
                 ) -> "Span":
        """Build an already-closed span from externally measured
        times (e.g. the daemon's admission wait, whose start predates
        the batch trace)."""
        made = cls(name, trace_id, parent_id, attributes)
        made.start_unix = start_unix
        made.duration_s = duration_s
        made.cpu_s = cpu_s
        return made

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def finish(self) -> "Span":
        self.duration_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._c0
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "cpu_s": self.cpu_s,
            "attributes": dict(self.attributes),
        }

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id[:8]}, "
                f"dur={self.duration_s:.6f}s)")


class _TraceState(NamedTuple):
    """What "a trace is active here" means: who to parent new spans
    under, and where finished spans go."""

    parent: Union[Span, SpanContext]
    sink: List[Span]


_STATE: ContextVar[Optional[_TraceState]] = \
    ContextVar("repro_obs_state", default=None)


class _NoopSpan:
    """Shared do-nothing guard handed out when tracing is inactive."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP = _NoopSpan()


class _SpanGuard:
    """Context manager produced by :func:`span` inside a live trace."""

    __slots__ = ("_name", "_attributes", "_state", "_span", "_token")

    def __init__(self, name: str, state: _TraceState,
                 attributes: Dict[str, Any]):
        self._name = name
        self._state = state
        self._attributes = attributes
        self._span = None
        self._token = None

    def __enter__(self) -> Span:
        parent = self._state.parent
        made = Span(self._name, parent.trace_id, parent.span_id,
                    self._attributes)
        self._span = made
        self._token = _STATE.set(_TraceState(made, self._state.sink))
        return made

    def __exit__(self, exc_type, exc, tb):
        made = self._span.finish()
        if exc_type is not None:
            made.attributes.setdefault("error", exc_type.__name__)
        self._state.sink.append(made)
        _STATE.reset(self._token)
        return False


def span(name: str, **attributes):
    """Open a child span under the active trace, or do nothing.

    Usable unconditionally on hot paths::

        with span("ingest.parse", path=str(path)) as current:
            table = parse(path)
            if current is not None:
                current.attributes["rows"] = table.m

    The guard yields the live :class:`Span` (attributes can be added
    while it runs) or ``None`` when no trace is active.
    """
    state = _STATE.get()
    if state is None:
        return _NOOP
    return _SpanGuard(name, state, attributes)


class _TraceGuard:
    """Context manager produced by :func:`trace`."""

    __slots__ = ("_name", "_attributes", "_root", "_sink", "_token")

    def __init__(self, name: str, attributes: Dict[str, Any]):
        self._name = name
        self._attributes = attributes
        self._root = None
        self._sink = None
        self._token = None

    def __enter__(self) -> Span:
        root = Span(self._name, uuid.uuid4().hex, None,
                    self._attributes)
        self._root = root
        self._sink = []
        self._token = _STATE.set(_TraceState(root, self._sink))
        return root

    def __exit__(self, exc_type, exc, tb):
        root = self._root.finish()
        if exc_type is not None:
            root.attributes.setdefault("error", exc_type.__name__)
        self._sink.append(root)
        _STATE.reset(self._token)
        TRACER.save(root.trace_id, self._sink)
        return False


def trace(name: str, **attributes) -> _TraceGuard:
    """Start a brand-new trace rooted at a span called ``name``.

    Yields the root :class:`Span` (exposing ``trace_id``); on exit
    the full span list is published to :data:`TRACER`, newest-first
    evicted beyond its capacity. A ``trace`` opened inside another
    trace starts an independent one — the daemon relies on this to
    give every batch its own trace regardless of caller state.
    """
    return _TraceGuard(name, attributes)


class _ActivationGuard:
    """Adopt a remote parent: a fresh sink under ``ctx``.

    Used by worker processes (and in-parent serial retries): spans
    recorded during the activation land in ``.spans`` only, never in
    any inherited state, so a forked child cannot duplicate spans the
    parent process already recorded.
    """

    __slots__ = ("_ctx", "spans", "_token")

    def __init__(self, ctx: SpanContext):
        self._ctx = ctx
        self.spans: List[Span] = []
        self._token = None

    def __enter__(self) -> "_ActivationGuard":
        self._token = _STATE.set(_TraceState(self._ctx, self.spans))
        return self

    def __exit__(self, exc_type, exc, tb):
        _STATE.reset(self._token)
        return False


def activate(ctx: SpanContext) -> _ActivationGuard:
    """Record spans under a parent that lives in another process."""
    return _ActivationGuard(ctx)


def current_context() -> Optional[SpanContext]:
    """The active span's picklable coordinates, or ``None``."""
    state = _STATE.get()
    if state is None:
        return None
    parent = state.parent
    return SpanContext(parent.trace_id, parent.span_id)


def add_attributes(**attributes) -> bool:
    """Attach attributes to the innermost live span, if any.

    Returns whether anything was recorded — callers on hot paths can
    ignore the result; the inactive cost is one context read.
    """
    state = _STATE.get()
    if state is None or not isinstance(state.parent, Span):
        return False
    state.parent.attributes.update(attributes)
    return True


def extend_current(spans: Iterable[Span]) -> bool:
    """Adopt already-finished spans (e.g. shipped back from a worker)
    into the active trace's sink. No-op without an active trace."""
    state = _STATE.get()
    if state is None:
        return False
    state.sink.extend(spans)
    return True


class Tracer:
    """A small bounded ring of finished traces.

    The daemon pops each batch trace immediately; the CLI and tests
    read back the most recent ones. Keeping only ``max_traces`` spans
    lists bounds memory on long-lived processes.
    """

    def __init__(self, max_traces: int = 32):
        self.max_traces = int(max_traces)
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[Span]]" = OrderedDict()

    def save(self, trace_id: str, spans: Iterable[Span]) -> None:
        with self._lock:
            self._traces[trace_id] = list(spans)
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> List[Span]:
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def pop(self, trace_id: str) -> List[Span]:
        with self._lock:
            return self._traces.pop(trace_id, [])

    def last(self) -> Optional[str]:
        with self._lock:
            return next(reversed(self._traces), None)

    def ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._traces)


TRACER = Tracer()
