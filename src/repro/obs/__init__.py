"""repro.obs — tracing, metrics, and exporters for the whole stack.

Every layer below the daemon already *counts* things — the store has
:class:`~repro.pipeline.store.CacheStats`, the daemon has
``DaemonStats``, the worker pool raises typed errors — but nothing
says *where* a request's time went. This package is the one place
those signals meet:

- :mod:`repro.obs.trace` — ``Span``/``Tracer`` with wall and CPU
  time, propagated through ``contextvars`` and, via a picklable
  :class:`SpanContext`, into ``parallel_map`` worker processes whose
  spans are adopted back into the parent trace exactly like
  worker-computed scores already are.
- :mod:`repro.obs.metrics` — a threadsafe registry of counters,
  gauges and fixed-bucket histograms (stdlib only), shared by the
  store, the pool, the KV client and the daemon.
- :mod:`repro.obs.export` — Prometheus text exposition (served by
  the daemon at ``GET /v1/metrics``), a small validating parser for
  tests, and JSON trace artifacts (span tree + stage durations).

The package is a *leaf*: it imports nothing from the rest of
``repro``, so any module — including ``util.parallel`` and the cache
backends — can instrument itself without import cycles. When no trace
is active, :func:`span` returns a shared no-op so instrumented hot
paths cost one ``contextvars`` read.
"""

from .export import (parse_prometheus, render_families,
                     render_prometheus, span_tree, trace_to_dict)
from .metrics import (Counter, Gauge, Histogram, MetricFamily,
                      MetricsRegistry, Sample, get_registry,
                      make_family)
from .trace import (TRACER, Span, SpanContext, Tracer, activate,
                    add_attributes, current_context, extend_current,
                    span, trace)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricFamily",
    "MetricsRegistry", "Sample", "Span", "SpanContext", "TRACER",
    "Tracer", "activate", "add_attributes", "current_context",
    "extend_current", "get_registry", "make_family",
    "parse_prometheus", "render_families", "render_prometheus",
    "span", "span_tree", "trace", "trace_to_dict",
]
