"""Node partitions (community assignments)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..util.validation import as_index_array


class Partition:
    """A dense assignment of nodes to communities ``0 .. k-1``.

    Arbitrary label values are densified on construction, so two
    partitions that group nodes identically compare equal regardless of
    the label values used.
    """

    __slots__ = ("labels",)

    def __init__(self, labels: Iterable[int]):
        raw = as_index_array(labels, "labels")
        _, dense = np.unique(raw, return_inverse=True)
        self.labels = dense.astype(np.int64)

    def __len__(self) -> int:
        return len(self.labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        if len(self) != len(other):
            return False
        # Equal iff they induce the same grouping: check both directions.
        return self._refines(other) and other._refines(self)

    def __hash__(self):
        raise TypeError("Partition is not hashable")

    def _refines(self, other: "Partition") -> bool:
        seen = {}
        for mine, theirs in zip(self.labels.tolist(),
                                other.labels.tolist()):
            if mine in seen and seen[mine] != theirs:
                return False
            seen[mine] = theirs
        return True

    @property
    def n_communities(self) -> int:
        """Number of distinct communities."""
        if len(self.labels) == 0:
            return 0
        return int(self.labels.max()) + 1

    def sizes(self) -> np.ndarray:
        """Community sizes indexed by community id."""
        return np.bincount(self.labels, minlength=self.n_communities)

    def communities(self) -> List[np.ndarray]:
        """List of node-index arrays, one per community."""
        return [np.flatnonzero(self.labels == c)
                for c in range(self.n_communities)]

    def __repr__(self) -> str:
        return (f"Partition(n_nodes={len(self)}, "
                f"n_communities={self.n_communities})")


def singleton_partition(n_nodes: int) -> Partition:
    """Every node in its own community."""
    return Partition(np.arange(n_nodes))


def one_community_partition(n_nodes: int) -> Partition:
    """All nodes in a single community."""
    return Partition(np.zeros(n_nodes, dtype=np.int64))
