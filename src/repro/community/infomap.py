"""Two-level map equation and an Infomap-style optimizer.

The paper's case study (Section VI) quantifies backbone quality by how
much the Infomap community structure compresses a random walk on the
backbone: the NC backbone yields a 15.0% codelength reduction against
9.3% for the Disparity Filter. This module implements

* the exact two-level **map equation** codelength of a partition for an
  undirected weighted network (Rosvall & Bergstrom 2008), and
* a greedy optimizer ("Infomap-lite"): Louvain-style local moving that
  directly minimizes the map equation instead of modularity.

For an undirected network the random walk's stationary visit rate of
node ``i`` is ``p_i = s_i / 2W``; module exit rates are cut weights over
``2W``; no teleportation is needed.
"""

from __future__ import annotations

import numpy as np

from ..generators.seeds import SeedLike, make_rng
from ..graph.edge_table import EdgeTable
from ..graph.graph import Graph
from ..util.validation import require
from .partition import Partition, one_community_partition


def _plogp(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    out = np.zeros_like(values)
    positive = values > 0
    out[positive] = values[positive] * np.log2(values[positive])
    return out


def map_equation_codelength(table: EdgeTable,
                            partition: Partition) -> float:
    """Average per-step description length (bits) of the partition.

    Implements ``L = q H(Q) + Σ_c p_c H(P_c)`` in its expanded
    plogp form. The one-community partition reduces to the entropy of
    the stationary distribution — the "codelength without communities"
    baseline the paper quotes.
    """
    require(len(partition) == table.n_nodes,
            "partition must cover all nodes")
    working = table if not table.directed else table.symmetrized("sum")
    working = working.without_self_loops()
    total = working.total_weight
    if total <= 0:
        return 0.0
    two_w = 2.0 * total
    labels = partition.labels
    k = partition.n_communities

    visit = working.strength() / two_w
    cross = labels[working.src] != labels[working.dst]
    exit_weight = np.bincount(labels[working.src[cross]],
                              weights=working.weight[cross], minlength=k)
    exit_weight += np.bincount(labels[working.dst[cross]],
                               weights=working.weight[cross], minlength=k)
    q = exit_weight / two_w                 # module exit rates
    p_community = np.bincount(labels, weights=visit, minlength=k)

    q_total = q.sum()
    # Expanded map equation (plogp formulation).
    codelength = (_plogp(np.array([q_total]))[0]
                  - 2.0 * _plogp(q).sum()
                  - _plogp(visit).sum()
                  + _plogp(q + p_community).sum())
    return float(codelength)


def infomap(table: EdgeTable, seed: SeedLike = 0,
            max_sweeps: int = 30) -> Partition:
    """Greedy two-level map-equation minimization.

    Local moving only (no aggregation phase): adequate for the
    backbone-sized networks of the case study, and deterministic given
    the seed.
    """
    working = table if not table.directed else table.symmetrized("sum")
    working = working.without_self_loops()
    graph = Graph(working)
    rng = make_rng(seed)
    n = working.n_nodes

    labels = Partition(louvain_seed_labels(working, seed)).labels.copy()
    best_length = map_equation_codelength(working, Partition(labels))

    for _ in range(max_sweeps):
        improved = False
        for node in rng.permutation(n):
            node = int(node)
            current = labels[node]
            neighbors, _ = graph.neighbors_of(node)
            candidates = {int(labels[v]) for v in neighbors.tolist()}
            candidates.discard(current)
            for candidate in sorted(candidates):
                labels[node] = candidate
                length = map_equation_codelength(working,
                                                 Partition(labels))
                if length < best_length - 1e-12:
                    best_length = length
                    current = candidate
                    improved = True
                else:
                    labels[node] = current
        if not improved:
            break
    return Partition(labels)


def louvain_seed_labels(table: EdgeTable, seed: SeedLike) -> np.ndarray:
    """Louvain labels used to initialize the map-equation search."""
    from .louvain import louvain

    return louvain(table, seed=seed).labels


def compression_gain(table: EdgeTable, partition: Partition) -> float:
    """Relative codelength saving of ``partition`` vs. no communities.

    The case-study metric: ``1 - L(partition) / L(one community)``.
    """
    baseline = map_equation_codelength(
        table, one_community_partition(table.n_nodes))
    if baseline <= 0:
        return 0.0
    achieved = map_equation_codelength(table, partition)
    return float(1.0 - achieved / baseline)
