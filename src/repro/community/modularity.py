"""Weighted Newman modularity (Newman 2006).

The case study (paper Section VI) compares the modularity of the expert
two-digit partition on the NC vs. the DF backbone. We use the standard
undirected weighted definition

``Q = (1/2W) Σ_ij (A_ij - s_i s_j / 2W) δ(c_i, c_j)``

computed community-by-community as ``Σ_c (w_c/W - (S_c/2W)^2)`` where
``w_c`` is the internal weight and ``S_c`` the summed strength of
community ``c``. Directed tables are symmetrized by summing orientations.
"""

from __future__ import annotations

import numpy as np

from ..graph.edge_table import EdgeTable
from ..util.validation import require
from .partition import Partition


def modularity(table: EdgeTable, partition: Partition) -> float:
    """Modularity of ``partition`` on the (undirected view of) ``table``."""
    require(len(partition) == table.n_nodes,
            f"partition covers {len(partition)} nodes, table has "
            f"{table.n_nodes}")
    working = table if not table.directed else table.symmetrized("sum")
    working = working.without_self_loops()
    total = working.total_weight
    if total <= 0:
        return 0.0
    labels = partition.labels
    same = labels[working.src] == labels[working.dst]
    k = partition.n_communities
    internal = np.bincount(labels[working.src[same]],
                           weights=working.weight[same], minlength=k)
    strength_by_community = np.bincount(labels, weights=working.strength(),
                                        minlength=k)
    return float((internal / total
                  - (strength_by_community / (2.0 * total)) ** 2).sum())


def modularity_gain_matrixfree(table: EdgeTable) -> float:
    """Best-partition modularity upper bound sanity value (singletons=0).

    Exposed mostly for tests: the singleton partition of a loop-free
    graph has modularity ``-Σ (s_i/2W)^2 < 0`` and the one-community
    partition always has modularity 0.
    """
    from .partition import one_community_partition

    return modularity(table, one_community_partition(table.n_nodes))
