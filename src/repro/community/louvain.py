"""Louvain community detection (Blondel et al. 2008), from scratch.

Used as the paper's "community discovery algorithm" for the Fig. 1
example: on the raw hairball it collapses everything into one giant
community; on the backbone it recovers the planted classes.

Standard two-phase scheme: (1) greedy local moving of nodes to the
neighboring community with the best modularity gain, (2) aggregation of
communities into super-nodes, repeated until no gain remains.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..generators.seeds import SeedLike, make_rng
from ..graph.edge_table import EdgeTable
from .partition import Partition


def louvain(table: EdgeTable, seed: SeedLike = 0,
            resolution: float = 1.0,
            max_levels: int = 20) -> Partition:
    """Detect communities by modularity maximization.

    Parameters
    ----------
    table:
        Input network; directed tables are symmetrized by summing.
    seed:
        RNG seed controlling node visit order (Louvain is order
        dependent; fixing the seed makes runs reproducible).
    resolution:
        Multiplies the null-model term; 1.0 is plain modularity.
    max_levels:
        Safety cap on aggregation rounds.
    """
    working = table if not table.directed else table.symmetrized("sum")
    working = working.without_self_loops()
    rng = make_rng(seed)

    n = working.n_nodes
    membership = np.arange(n, dtype=np.int64)
    # Current-level graph: adjacency dicts with self-loop weights kept
    # (they appear through aggregation).
    adjacency = _adjacency_dicts(working)
    self_loops = np.zeros(n, dtype=np.float64)
    total = working.total_weight

    for _ in range(max_levels):
        labels, improved = _local_moving(adjacency, self_loops, total,
                                         resolution, rng)
        membership = labels[membership]
        if not improved:
            break
        adjacency, self_loops = _aggregate(adjacency, self_loops, labels)
        if len(adjacency) == 1:
            break
    return Partition(membership)


def _adjacency_dicts(table: EdgeTable) -> List[Dict[int, float]]:
    adjacency: List[Dict[int, float]] = [dict()
                                         for _ in range(table.n_nodes)]
    for u, v, w in table.iter_edges():
        adjacency[u][v] = adjacency[u].get(v, 0.0) + w
        adjacency[v][u] = adjacency[v].get(u, 0.0) + w
    return adjacency


def _local_moving(adjacency: List[Dict[int, float]],
                  self_loops: np.ndarray, total: float, resolution: float,
                  rng) -> "tuple[np.ndarray, bool]":
    n = len(adjacency)
    labels = np.arange(n, dtype=np.int64)
    strength = np.array([sum(nbrs.values()) for nbrs in adjacency]) \
        + 2.0 * self_loops
    community_strength = strength.copy()
    two_w = 2.0 * total
    if two_w <= 0:
        return labels, False

    improved_any = False
    improved = True
    sweeps = 0
    while improved and sweeps < 50:
        improved = False
        sweeps += 1
        order = rng.permutation(n)
        for node in order:
            current = labels[node]
            community_strength[current] -= strength[node]
            # Weight from node to each neighboring community.
            weights_to: Dict[int, float] = {}
            for neighbor, weight in adjacency[node].items():
                weights_to[labels[neighbor]] = \
                    weights_to.get(labels[neighbor], 0.0) + weight
            best_community = current
            best_gain = weights_to.get(current, 0.0) - resolution \
                * strength[node] * community_strength[current] / two_w
            for community, weight in weights_to.items():
                if community == current:
                    continue
                gain = weight - resolution * strength[node] \
                    * community_strength[community] / two_w
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = community
            labels[node] = best_community
            community_strength[best_community] += strength[node]
            if best_community != current:
                improved = True
                improved_any = True
    _, labels = np.unique(labels, return_inverse=True)
    return labels.astype(np.int64), improved_any


def _aggregate(adjacency: List[Dict[int, float]], self_loops: np.ndarray,
               labels: np.ndarray):
    k = int(labels.max()) + 1
    new_adjacency: List[Dict[int, float]] = [dict() for _ in range(k)]
    new_self_loops = np.zeros(k, dtype=np.float64)
    for node, nbrs in enumerate(adjacency):
        cu = labels[node]
        new_self_loops[cu] += self_loops[node]
        for neighbor, weight in nbrs.items():
            if neighbor < node:
                continue  # visit each undirected pair once
            cv = labels[neighbor]
            if cu == cv:
                new_self_loops[cu] += weight
            else:
                new_adjacency[cu][cv] = new_adjacency[cu].get(cv, 0.0) \
                    + weight
                new_adjacency[cv][cu] = new_adjacency[cv].get(cu, 0.0) \
                    + weight
    return new_adjacency, new_self_loops
