"""Weighted asynchronous label propagation (Raghavan et al. 2007).

A fast, parameter-free community baseline: every node repeatedly adopts
the label carrying the largest incident weight, until labels are stable.
Used in tests and examples as an independent check on Louvain.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..generators.seeds import SeedLike, make_rng
from ..graph.edge_table import EdgeTable
from ..graph.graph import Graph
from .partition import Partition


def label_propagation(table: EdgeTable, seed: SeedLike = 0,
                      max_sweeps: int = 100) -> Partition:
    """Propagate labels until stable (ties broken by smallest label)."""
    working = table if not table.directed else table.symmetrized("sum")
    working = working.without_self_loops()
    graph = Graph(working)
    rng = make_rng(seed)
    n = working.n_nodes
    labels = np.arange(n, dtype=np.int64)

    for _ in range(max_sweeps):
        changed = False
        for node in rng.permutation(n):
            neighbors, weights = graph.neighbors_of(int(node))
            if len(neighbors) == 0:
                continue
            tally: Dict[int, float] = {}
            for neighbor, weight in zip(neighbors.tolist(),
                                        weights.tolist()):
                label = int(labels[neighbor])
                tally[label] = tally.get(label, 0.0) + weight
            best = min(sorted(tally),
                       key=lambda lab: (-tally[lab], lab))
            if labels[node] != best:
                labels[node] = best
                changed = True
        if not changed:
            break
    return Partition(labels)
