"""Normalized mutual information between partitions.

The case study reports the NMI between the Infomap communities of each
backbone and the expert two-digit occupation classification. We use the
standard arithmetic-mean normalization
``NMI = 2 I(X; Y) / (H(X) + H(Y))``.
"""

from __future__ import annotations

import numpy as np

from ..util.validation import require
from .partition import Partition


def contingency_table(a: Partition, b: Partition) -> np.ndarray:
    """Joint count matrix of two partitions over the same nodes."""
    require(len(a) == len(b),
            f"partitions cover different node counts ({len(a)} vs "
            f"{len(b)})")
    table = np.zeros((a.n_communities, b.n_communities), dtype=np.int64)
    np.add.at(table, (a.labels, b.labels), 1)
    return table


def mutual_information(a: Partition, b: Partition) -> float:
    """Mutual information (bits) between two partitions."""
    joint = contingency_table(a, b).astype(np.float64)
    n = joint.sum()
    if n == 0:
        return 0.0
    joint /= n
    row = joint.sum(axis=1, keepdims=True)
    col = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / (row @ col)
        terms = joint * np.log2(ratio)
    return float(np.nansum(terms))


def entropy(partition: Partition) -> float:
    """Shannon entropy (bits) of community sizes."""
    sizes = partition.sizes().astype(np.float64)
    total = sizes.sum()
    if total == 0:
        return 0.0
    p = sizes[sizes > 0] / total
    return float(-(p * np.log2(p)).sum())


def normalized_mutual_information(a: Partition, b: Partition) -> float:
    """``2 I / (H_a + H_b)``; by convention 1.0 when both are trivial."""
    h_a = entropy(a)
    h_b = entropy(b)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    if h_a == 0.0 or h_b == 0.0:
        return 0.0
    return float(2.0 * mutual_information(a, b) / (h_a + h_b))
