"""Community-discovery substrate: modularity, Louvain, Infomap-lite, NMI."""

from .infomap import (compression_gain, infomap, map_equation_codelength)
from .label_propagation import label_propagation
from .louvain import louvain
from .modularity import modularity
from .nmi import (contingency_table, entropy, mutual_information,
                  normalized_mutual_information)
from .partition import (Partition, one_community_partition,
                        singleton_partition)

__all__ = [
    "Partition",
    "compression_gain",
    "contingency_table",
    "entropy",
    "infomap",
    "label_propagation",
    "louvain",
    "map_equation_codelength",
    "modularity",
    "mutual_information",
    "normalized_mutual_information",
    "one_community_partition",
    "singleton_partition",
]
