"""The inline escape hatch: ``# repro: ignore[CODE]`` comments.

A finding is suppressed when a matching ignore comment sits on the
finding's own line, or alone on the line directly above it (the usual
spot when the flagged statement already fills the 79 columns).
Multiple codes may share one comment (``ignore[RPA001,RPA004]``), and
anything after the closing bracket is free-form — by convention the
*reason*, which reviewers should insist on::

    data = handle.read()  # repro: ignore[RPA005] quoted fields can
                          # span blocks; the csv fallback needs the
                          # whole remainder

Comments are read with :mod:`tokenize` (never regexes over raw lines),
so ``"# repro: ignore"`` inside a string literal is not an escape.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterable, List, Set, Tuple

_IGNORE_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


class IgnoreMap:
    """Per-line suppression codes parsed from one module's comments."""

    def __init__(self, codes_by_line: Dict[int, Set[str]],
                 bare_comment_lines: Set[int]):
        self._by_line = codes_by_line
        self._bare = bare_comment_lines
        self._used: Set[Tuple[int, str]] = set()

    @classmethod
    def from_source(cls, source: str) -> "IgnoreMap":
        codes_by_line: Dict[int, Set[str]] = {}
        bare: Set[int] = set()
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, ValueError):
            return cls({}, set())
        code_lines: Set[int] = set()
        comment_lines: Set[int] = set()
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comment_lines.add(token.start[0])
                match = _IGNORE_RE.search(token.string)
                if match:
                    codes = {part.strip().upper()
                             for part in match.group(1).split(",")
                             if part.strip()}
                    codes_by_line.setdefault(
                        token.start[0], set()).update(codes)
            elif token.type not in (tokenize.NL, tokenize.NEWLINE,
                                    tokenize.INDENT, tokenize.DEDENT,
                                    tokenize.ENDMARKER,
                                    tokenize.ENCODING):
                code_lines.add(token.start[0])
        # Any comment-only line is chainable: a multi-line reason
        # under one ignore comment must not break the upward walk.
        bare = comment_lines - code_lines
        return cls(codes_by_line, bare)

    def _lines_covering(self, line: int) -> Iterable[int]:
        # The finding's own line always applies; a comment-only line
        # directly above applies too (and chains upward through a
        # block of comment-only lines).
        yield line
        above = line - 1
        while above in self._bare:
            yield above
            above -= 1

    def suppresses(self, line: int, code: str) -> bool:
        """Whether ``code`` on ``line`` is ignored; records usage."""
        for candidate in self._lines_covering(line):
            codes = self._by_line.get(candidate)
            if codes and code.upper() in codes:
                self._used.add((candidate, code.upper()))
                return True
        return False

    def unused(self) -> List[Tuple[int, str]]:
        """``(line, code)`` pairs whose escape suppressed nothing."""
        stale = []
        for line, codes in sorted(self._by_line.items()):
            for code in sorted(codes):
                if (line, code) not in self._used:
                    stale.append((line, code))
        return stale
