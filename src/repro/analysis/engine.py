"""The analysis driver: discover, parse, check, suppress, report.

One :func:`analyze_paths` call walks the requested files/trees, parses
each module once, runs every registered checker over it, then applies
the two suppression layers in order:

1. inline ``# repro: ignore[CODE]`` comments (tracked — stale ones
   are themselves reported);
2. the committed baseline of grandfathered findings.

The result is an :class:`AnalysisReport` that renders as text or JSON
and knows its own exit code: ``0`` clean, ``1`` findings, ``2`` a file
failed to parse.
"""

from __future__ import annotations

import json
from contextlib import suppress
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline, BaselineResult
from .checkers import all_checkers
from .checkers.base import Checker, Module
from .findings import Finding, ModuleReport
from .ignores import IgnoreMap

#: Directory names never descended into during discovery.
_SKIP_DIRS = {".git", "__pycache__", ".ruff_cache", ".pytest_cache",
              "build", "dist", ".eggs", "node_modules"}


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths`` (files kept as-is), sorted."""
    found: List[Path] = []
    for path in paths:
        if path.is_file():
            found.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS
                           for part in candidate.parts):
                    found.append(candidate)
    unique: List[Path] = []
    seen = set()
    for path in found:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


@dataclass
class AnalysisReport:
    """Aggregated outcome of one analysis run."""

    modules: Tuple[ModuleReport, ...] = ()
    baseline: Optional[BaselineResult] = field(default=None)

    @property
    def findings(self) -> Tuple[Finding, ...]:
        """Non-suppressed findings, before baseline subtraction."""
        return tuple(f for report in self.modules
                     for f in report.findings)

    @property
    def effective(self) -> Tuple[Finding, ...]:
        """Findings that should fail the build."""
        if self.baseline is not None:
            return self.baseline.new
        return self.findings

    @property
    def errors(self) -> Tuple[ModuleReport, ...]:
        return tuple(report for report in self.modules
                     if report.error is not None)

    @property
    def unused_ignores(self) -> Tuple[Tuple[str, int, str], ...]:
        return tuple((report.path, line, code)
                     for report in self.modules
                     for line, code in report.unused_ignores)

    def exit_code(self) -> int:
        if self.errors:
            return 2
        if self.effective or self.unused_ignores:
            return 1
        return 0

    def render_text(self) -> str:
        lines: List[str] = []
        for report in self.errors:
            lines.append(f"{report.path}: error: {report.error}")
        for finding in self.effective:
            lines.append(finding.render())
        for path, line, code in self.unused_ignores:
            lines.append(f"{path}:{line}:1: unused-ignore "
                         f"# repro: ignore[{code}] suppresses nothing")
        checked = len(self.modules)
        suppressed = sum(len(report.ignored)
                         for report in self.modules)
        summary = (f"{checked} module(s) checked, "
                   f"{len(self.effective)} finding(s)")
        if suppressed:
            summary += f", {suppressed} inline-ignored"
        if self.baseline is not None:
            summary += f", {len(self.baseline.matched)} baselined"
            if self.baseline.stale:
                summary += (f" ({len(self.baseline.stale)} stale "
                            "baseline entr(y/ies) — fixed findings, "
                            "remove them)")
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "modules_checked": len(self.modules),
            "findings": [f.to_dict() for f in self.effective],
            "inline_ignored": [f.to_dict() for report in self.modules
                               for f in report.ignored],
            "unused_ignores": [
                {"path": path, "line": line, "code": code}
                for path, line, code in self.unused_ignores],
            "errors": [{"path": report.path, "error": report.error}
                       for report in self.errors],
            "exit_code": self.exit_code(),
        }
        if self.baseline is not None:
            payload["baselined"] = [f.to_dict()
                                    for f in self.baseline.matched]
            payload["stale_baseline"] = [list(key) for key
                                         in self.baseline.stale]
        return json.dumps(payload, indent=2, sort_keys=True)


def _relative_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        with suppress(ValueError):
            return path.resolve().relative_to(
                root.resolve()).as_posix()
    return path.as_posix()


def check_module(module: Module,
                 checkers: Sequence[Checker]) -> ModuleReport:
    """Run ``checkers`` over one parsed module and apply its ignores."""
    ignores = IgnoreMap.from_source(module.source)
    kept: List[Finding] = []
    ignored: List[Finding] = []
    for checker in checkers:
        if not checker.applies_to(module.path):
            continue
        for finding in checker.check(module):
            if ignores.suppresses(finding.line, finding.code):
                ignored.append(finding)
            else:
                kept.append(finding)
    return ModuleReport(path=module.path,
                        findings=tuple(sorted(kept)),
                        ignored=tuple(sorted(ignored)),
                        unused_ignores=tuple(ignores.unused()))


def analyze_source(path: str, source: str,
                   checkers: Optional[Sequence[Checker]] = None,
                   ) -> ModuleReport:
    """Analyze one in-memory module (the test/doctest entry point)."""
    if checkers is None:
        checkers = all_checkers()
    try:
        module = Module.parse(path, source)
    except SyntaxError as exc:
        return ModuleReport(
            path=path,
            error=f"syntax error: {exc.msg} (line {exc.lineno})")
    return check_module(module, checkers)


def analyze_paths(paths: Sequence[Path],
                  root: Optional[Path] = None,
                  baseline: Optional[Baseline] = None,
                  checkers: Optional[Sequence[Checker]] = None,
                  ) -> AnalysisReport:
    """Analyze files/directories and fold in the baseline, if any."""
    if checkers is None:
        checkers = all_checkers()
    reports: List[ModuleReport] = []
    for file_path in discover_files(paths):
        rel = _relative_path(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            reports.append(ModuleReport(path=rel, error=str(exc)))
            continue
        reports.append(analyze_source(rel, source, checkers))
    result: Optional[BaselineResult] = None
    if baseline is not None:
        live = [f for report in reports for f in report.findings]
        result = baseline.apply(live)
    return AnalysisReport(modules=tuple(reports), baseline=result)


def findings_for_baseline(report: AnalysisReport) -> Iterable[Finding]:
    """The findings a ``--write-baseline`` run should grandfather."""
    return report.findings
