"""repro.analysis — AST-based invariant checkers for this repo.

Generic linters catch generic bugs; the bugs that actually bit this
codebase are repo-specific invariants no off-the-shelf tool knows
about: mutate shared daemon state only under its lock, keep worker
seams picklable, keep cache fingerprints content-addressed, own every
socket/file in the long-lived layers, and never read a whole file in
the out-of-core pipeline. This package encodes each invariant as a
checker over :mod:`ast` and ships them behind ``repro analyze``.

Quick use::

    >>> from repro.analysis import analyze_source
    >>> report = analyze_source("demo.py", '''
    ... import threading
    ... class Box:
    ...     def __init__(self):
    ...         self._lock = threading.Lock()
    ...         self.items = []
    ...     def add(self, x):
    ...         with self._lock:
    ...             self.items.append(x)
    ...     def reset(self):
    ...         self.items = []   # racy: no lock held
    ... ''')
    >>> [f.code for f in report.findings]
    ['RPA001']

Suppress a deliberate exception inline with a reason::

    data = handle.read()  # repro: ignore[RPA005] tiny metadata file

and grandfather pre-existing findings in ``analysis-baseline.json``
(see :mod:`repro.analysis.baseline`). Both suppression layers are
audited: stale ignores and stale baseline entries are reported.
"""

from .baseline import Baseline, BaselineResult
from .checkers import (Checker, Module, all_checkers, checker_table,
                       register_checker, registered_checkers)
from .engine import (AnalysisReport, analyze_paths, analyze_source,
                     check_module, discover_files)
from .findings import Finding, ModuleReport
from .ignores import IgnoreMap

__all__ = [
    "AnalysisReport", "Baseline", "BaselineResult", "Checker",
    "Finding", "IgnoreMap", "Module", "ModuleReport", "all_checkers",
    "analyze_paths", "analyze_source", "check_module",
    "checker_table", "discover_files", "register_checker",
    "registered_checkers",
]
