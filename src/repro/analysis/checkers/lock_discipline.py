"""RPA001 — lock discipline for shared mutable state.

The daemon/transport/metrics layers all follow the same convention: a
class (or module) that owns a ``threading.Lock``/``Condition`` mutates
its shared attributes only while holding it. This checker infers which
attributes the code *treats* as lock-guarded — any attribute written at
least once inside ``with self._lock:`` — and then flags writes to those
same attributes that can run without the lock.

Two refinements keep this precise on real code:

* **Mutating calls are writes.** ``self._pending.append(req)`` mutates
  ``_pending`` just as surely as assignment, so method calls from
  :data:`~repro.analysis.astutil.MUTATING_METHODS` count.
* **Lock-held helpers.** ``serve()`` takes the lock and calls
  ``self._dispatch()``, which writes ``self.data`` lexically outside
  any ``with``. A private method whose in-class call sites *all* run
  under the lock is inferred lock-held (to a fixed point, so helpers
  calling helpers resolve), and its writes count as guarded.

``__init__`` (and other construction hooks) are exempt: no other
thread can hold a reference yet. The same analysis runs at module
level for ``_FOO_LOCK``-style globals, where only ``global``-declared
assignments and in-place mutations of module names count as writes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..astutil import (FUNCTION_KINDS, MUTATING_METHODS, ancestors,
                       call_name, dotted_name, enclosing_class,
                       enclosing_function, is_self_attribute, parent,
                       withs_containing)
from ..findings import Finding
from .base import Checker, Module, register_checker

#: Constructors whose result is a lock in the ``with`` sense.
_LOCK_FACTORIES = ("Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore")

#: Methods where unguarded writes are fine: the object is not yet (or
#: no longer) shared with other threads.
_CONSTRUCTION_METHODS = {"__init__", "__new__", "__post_init__",
                         "__getstate__", "__setstate__",
                         "__init_subclass__"}


def _is_lock_factory(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    if name is None:
        return False
    leaf = name.rsplit(".", 1)[-1]
    return leaf in _LOCK_FACTORIES


class _Write:
    """One attribute write: target name, AST site, owning method."""

    __slots__ = ("attr", "node", "func")

    def __init__(self, attr: str, node: ast.AST,
                 func: Optional[ast.AST]):
        self.attr = attr
        self.node = node
        self.func = func


def _class_methods(cls: ast.ClassDef) -> List[ast.AST]:
    return [stmt for stmt in cls.body
            if isinstance(stmt, FUNCTION_KINDS)]


def _method_of(node: ast.AST, cls: ast.ClassDef) -> Optional[ast.AST]:
    """The *direct* method of ``cls`` containing ``node``, if any."""
    func = enclosing_function(node)
    while func is not None:
        if parent(func) is cls:
            return func
        func = enclosing_function(func)
    return None


def _written_attr(target: ast.AST) -> Optional[str]:
    """The ``self`` attribute a store target mutates, if any.

    ``self.entries[k] = v`` and ``self.grid[i][j] = v`` mutate
    ``entries``/``grid`` just as ``self.entries = {}`` does, so
    subscript chains unwrap to the underlying attribute.
    """
    while isinstance(target, ast.Subscript):
        target = target.value
    return is_self_attribute(target)


def _self_attr_writes(cls: ast.ClassDef) -> List[_Write]:
    writes: List[_Write] = []
    for node in ast.walk(cls):
        if enclosing_class(node) is not cls:
            continue
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets
                       if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                attr = _written_attr(target)
                if attr is not None:
                    writes.append(_Write(attr, node,
                                         _method_of(node, cls)))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATING_METHODS:
            attr = is_self_attribute(node.func.value)
            if attr is not None:
                writes.append(_Write(attr, node,
                                     _method_of(node, cls)))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _written_attr(target)
                if attr is not None:
                    writes.append(_Write(attr, node,
                                         _method_of(node, cls)))
    return writes


def _lexically_locked(node: ast.AST, lock_attrs: Set[str]) -> bool:
    for with_node in withs_containing(node):
        for item in with_node.items:
            attr = is_self_attribute(item.context_expr)
            if attr in lock_attrs:
                return True
    return False


def _self_method_calls(cls: ast.ClassDef) -> Dict[str, List[ast.Call]]:
    calls: Dict[str, List[ast.Call]] = {}
    for node in ast.walk(cls):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute):
            attr = is_self_attribute(node.func)
            if attr is not None:
                calls.setdefault(attr, []).append(node)
    return calls


def _infer_lock_held_methods(cls: ast.ClassDef,
                             lock_attrs: Set[str]) -> Set[str]:
    """Private methods whose every in-class call site holds the lock.

    Fixed point: a call site counts as locked when it is lexically
    under ``with self._lock`` *or* sits inside a method already known
    to be lock-held, so chains like ``serve -> _dispatch ->
    _dispatch_testing`` resolve.
    """
    methods = {m.name: m for m in _class_methods(cls)}
    calls = _self_method_calls(cls)
    candidates = {name for name in methods
                  if name.startswith("_")
                  and not name.startswith("__")
                  and calls.get(name)}
    held: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in sorted(candidates - held):
            sites = calls[name]
            if all(_site_locked(site, cls, lock_attrs, held)
                   for site in sites):
                held.add(name)
                changed = True
    return held


def _mixed_call_methods(cls: ast.ClassDef, lock_attrs: Set[str],
                        held: Set[str]) -> Set[str]:
    """Private methods called both with and without the lock held."""
    methods = {m.name for m in _class_methods(cls)}
    calls = _self_method_calls(cls)
    mixed: Set[str] = set()
    for name, sites in calls.items():
        if name not in methods or not name.startswith("_") \
                or name.startswith("__") or name in held:
            continue
        locked = sum(1 for site in sites
                     if _site_locked(site, cls, lock_attrs, held))
        if 0 < locked < len(sites):
            mixed.add(name)
    return mixed


def _site_locked(site: ast.AST, cls: ast.ClassDef,
                 lock_attrs: Set[str], held: Set[str]) -> bool:
    if _lexically_locked(site, lock_attrs):
        return True
    method = _method_of(site, cls)
    return method is not None and method.name in held


@register_checker
class LockDisciplineChecker(Checker):
    CODE = "RPA001"
    NAME = "lock-discipline"
    RATIONALE = ("attributes mutated under a lock anywhere must be "
                 "mutated under it everywhere (races are silent)")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)
        yield from self._check_module_level(module)

    # ----- class-level -------------------------------------------------

    def _check_class(self, module: Module,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        writes = _self_attr_writes(cls)
        lock_attrs = {w.attr for w in writes
                      if isinstance(w.node, ast.Assign)
                      and _is_lock_factory(w.node.value)}
        if not lock_attrs:
            return
        held = _infer_lock_held_methods(cls, lock_attrs)
        mixed = _mixed_call_methods(cls, lock_attrs, held)

        def guarded(write: _Write) -> bool:
            if _lexically_locked(write.node, lock_attrs):
                return True
            return write.func is not None and write.func.name in held

        def in_mixed(write: _Write) -> bool:
            return write.func is not None and write.func.name in mixed

        relevant = [w for w in writes
                    if w.attr not in lock_attrs
                    and not (w.func is not None and w.func.name
                             in _CONSTRUCTION_METHODS)]
        # A write inside a mixed-discipline helper is lock-guarded on
        # some call paths: evidence the attribute is meant to be
        # guarded, and a violation on the unlocked paths.
        guarded_attrs = {w.attr for w in relevant
                         if guarded(w) or in_mixed(w)}
        for write in relevant:
            if write.attr not in guarded_attrs or guarded(write):
                continue
            func_name = write.func.name if write.func else "?"
            lock = sorted(lock_attrs)[0]
            if in_mixed(write):
                message = (
                    f"attribute '{write.attr}' of class '{cls.name}' "
                    f"is written in '{func_name}', which is called "
                    f"both with and without 'self.{lock}' held")
            else:
                message = (
                    f"attribute '{write.attr}' of class "
                    f"'{cls.name}' is mutated under 'self.{lock}' "
                    f"elsewhere but written here without holding it")
            yield self.finding(
                module, write.node, message,
                scope=f"{cls.name}.{func_name}",
                detail=write.attr)

    # ----- module-level ------------------------------------------------

    def _check_module_level(self,
                            module: Module) -> Iterator[Finding]:
        tree = module.tree
        lock_names: Set[str] = set()
        module_names: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module_names.add(target.id)
                        if _is_lock_factory(stmt.value):
                            lock_names.add(target.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)) \
                    and isinstance(stmt.target, ast.Name):
                module_names.add(stmt.target.id)
        if not lock_names:
            return
        writes = self._module_writes(tree, module_names, lock_names)
        held = self._infer_lock_held_functions(tree, lock_names)

        def guarded(write: Tuple[str, ast.AST,
                                 Optional[ast.AST]]) -> bool:
            _, node, func = write
            if self._module_locked(node, lock_names):
                return True
            return func is not None and func.name in held

        guarded_names = {name for write in writes if guarded(write)
                         for name in [write[0]]}
        for write in writes:
            name, node, func = write
            if name in guarded_names and not guarded(write):
                lock = sorted(lock_names)[0]
                yield self.finding(
                    module, node,
                    f"module global '{name}' is mutated under "
                    f"'{lock}' elsewhere but written here without "
                    f"holding it",
                    scope=func.name if func else "",
                    detail=name)

    @staticmethod
    def _module_locked(node: ast.AST, lock_names: Set[str]) -> bool:
        for with_node in withs_containing(node):
            for item in with_node.items:
                name = dotted_name(item.context_expr)
                if name in lock_names:
                    return True
        return False

    @staticmethod
    def _module_writes(tree: ast.Module, module_names: Set[str],
                       lock_names: Set[str],
                       ) -> List[Tuple[str, ast.AST,
                                       Optional[ast.AST]]]:
        """Writes to module globals inside functions.

        Plain ``name = ...`` inside a function only rebinds the global
        when the function declares ``global name``; in-place mutations
        (``_CACHE.pop(...)``, ``_CACHE[k] = v``) always hit the module
        object. Module top-level assignments are initialisation and
        never count.
        """
        writes: List[Tuple[str, ast.AST, Optional[ast.AST]]] = []
        globals_by_func: Dict[ast.AST, Set[str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Global):
                func = enclosing_function(node)
                if func is not None:
                    globals_by_func.setdefault(func, set()).update(
                        node.names)
        for node in ast.walk(tree):
            func = enclosing_function(node)
            if func is None:
                continue
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id in module_names \
                            and target.id not in lock_names \
                            and target.id in globals_by_func.get(
                                func, set()):
                        writes.append((target.id, node, func))
                    elif isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in module_names \
                            and target.value.id not in lock_names:
                        writes.append((target.value.id, node, func))
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name) \
                        and target.id in module_names \
                        and target.id not in lock_names \
                        and target.id in globals_by_func.get(
                            func, set()):
                    writes.append((target.id, node, func))
                elif isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in module_names:
                    writes.append((target.value.id, node, func))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATING_METHODS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in module_names:
                writes.append((node.func.value.id, node, func))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in module_names:
                        writes.append((target.value.id, node, func))
        return writes

    def _infer_lock_held_functions(self, tree: ast.Module,
                                   lock_names: Set[str]) -> Set[str]:
        functions = {stmt.name: stmt for stmt in tree.body
                     if isinstance(stmt, FUNCTION_KINDS)}
        calls: Dict[str, List[ast.Call]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in functions:
                calls.setdefault(node.func.id, []).append(node)
        candidates = {name for name in functions
                      if name.startswith("_") and calls.get(name)}
        held: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in sorted(candidates - held):
                ok = True
                for site in calls[name]:
                    if self._module_locked(site, lock_names):
                        continue
                    func = enclosing_function(site)
                    # Ascend to the module-level function owning the
                    # call site.
                    while func is not None \
                            and enclosing_function(func) is not None:
                        func = enclosing_function(func)
                    if func is None or func.name not in held:
                        ok = False
                        break
                if ok:
                    held.add(name)
                    changed = True
        return held
