"""RPA005 — streaming-memory discipline.

``repro.stream`` exists to score graphs that do not fit in memory: the
whole point is O(nodes) residency with edges visited in bounded
chunks. One careless ``handle.read()`` or ``np.loadtxt(path)`` turns
the out-of-core pipeline back into an in-core one — and nothing fails
until a user feeds it a 50 GB edge list.

Inside the streaming surfaces (``repro/stream/`` and the chunked
readers in ``repro/graph/ingest.py``) this checker flags whole-input
materialisation:

* ``X.read()`` / ``X.readlines()`` with no size argument — reads the
  entire remainder (``X.read(65536)`` is the streaming idiom and is
  fine);
* ``Path.read_text()`` / ``read_bytes()`` — whole-file by definition;
* ``np.loadtxt`` / ``np.genfromtxt`` / ``np.fromfile`` without a
  bounding ``max_rows=``/``count=`` — materialises every row.

Legitimate whole-input reads (tiny metadata files, quoted-CSV
fallbacks that genuinely need the remainder) carry an inline
``# repro: ignore[RPA005] <reason>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_name, scope_qualname
from ..findings import Finding
from .base import Checker, Module, register_checker

_WHOLE_READ_METHODS = {"read", "readlines"}
_WHOLE_FILE_METHODS = {"read_text", "read_bytes"}
_NUMPY_LOADERS = {"loadtxt", "genfromtxt", "fromfile"}
_NUMPY_BOUNDS = {"max_rows", "count"}


@register_checker
class StreamingMemoryChecker(Checker):
    CODE = "RPA005"
    NAME = "streaming-memory"
    RATIONALE = ("stream/ingest code must stay O(chunk): whole-file "
                 "reads silently break the out-of-core guarantee")
    PATH_PREFIXES = ("repro/stream/", "repro/graph/ingest")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method in _WHOLE_READ_METHODS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        f".{method}() with no size argument reads "
                        "the whole remainder into memory; pass a "
                        "chunk size",
                        scope=scope_qualname(node), detail=method)
            elif method in _WHOLE_FILE_METHODS:
                yield self.finding(
                    module, node,
                    f".{method}() materialises the whole file; use "
                    "a chunked reader",
                    scope=scope_qualname(node), detail=method)
            elif method in _NUMPY_LOADERS:
                name = call_name(node) or method
                bounded = any(kw.arg in _NUMPY_BOUNDS
                              for kw in node.keywords)
                if not bounded:
                    yield self.finding(
                        module, node,
                        f"'{name}(...)' without "
                        "max_rows=/count= materialises every row; "
                        "bound it or stream the file",
                        scope=scope_qualname(node), detail=name)
