"""RPA002 — cross-process picklability at the worker seams.

Two things cross process boundaries in this repo and must pickle:

* the function handed to :func:`repro.util.parallel.parallel_map`
  (sent to ``multiprocessing`` workers); lambdas and functions defined
  inside another function fail ``pickle`` with an opaque
  ``AttributeError: Can't pickle local object`` at call time, often
  only on the spawn start method — i.e. only on someone else's
  machine;
* :class:`~repro.backbones.base.BackboneMethod` instances (the method
  seam shipped to workers and daemons via ``worker_spec``); a method
  object holding a lock, socket, file handle or ``ContextVar`` will
  pickle-fail or, worse, silently resurrect a dead resource in the
  child.

This checker flags both shapes at the definition site, where the fix
is cheap, instead of at the call site where it surfaces as a crash.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from ..astutil import (call_name, enclosing_class, enclosing_function,
                       is_self_attribute, scope_qualname)
from ..findings import Finding
from .base import Checker, Module, register_checker

#: Call targets treated as worker-dispatch seams: the first positional
#: argument travels to another process.
_SEAM_CALLS = ("parallel_map",)

#: Base classes whose instances are pickled across processes.
_SEAM_BASES = ("BackboneMethod", "ChaosMethod")

#: Constructor names whose results never survive pickling.
_UNPICKLABLE_FACTORIES = {
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier",                    # threading
    "socket", "create_connection", "socketpair",      # socket
    "open",                                           # file handles
    "ContextVar",                                     # contextvars
    "Popen",                                          # subprocess
}


def _leaf(name: Optional[str]) -> Optional[str]:
    return None if name is None else name.rsplit(".", 1)[-1]


def _base_name(base: ast.AST) -> Optional[str]:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Subscript):   # Generic[...] style bases
        return _base_name(base.value)
    return None


def _seam_classes(tree: ast.Module) -> Set[str]:
    """Classes deriving (transitively, by name) from a seam base."""
    bases_by_class: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases_by_class[node.name] = {
                name for name in map(_base_name, node.bases)
                if name is not None}
    seams = set(_SEAM_BASES)
    changed = True
    while changed:
        changed = False
        for name, bases in bases_by_class.items():
            if name not in seams and bases & seams:
                seams.add(name)
                changed = True
    return seams


def _local_function_names(func: ast.AST) -> Set[str]:
    """Functions defined directly inside ``func`` (not nested deeper)."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func \
                and enclosing_function(node) is func:
            names.add(node.name)
    return names


@register_checker
class PicklabilityChecker(Checker):
    CODE = "RPA002"
    NAME = "cross-process-picklability"
    RATIONALE = ("objects crossing the parallel_map / worker_spec "
                 "seams must pickle; lambdas, nested defs and held "
                 "OS resources fail only at runtime in the child")

    def check(self, module: Module) -> Iterator[Finding]:
        yield from self._check_seam_calls(module)
        yield from self._check_seam_classes(module)

    def _check_seam_calls(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _leaf(call_name(node))
            if target not in _SEAM_CALLS or not node.args:
                continue
            fn_arg = node.args[0]
            if isinstance(fn_arg, ast.Lambda):
                yield self.finding(
                    module, fn_arg,
                    f"lambda passed to {target}() cannot be pickled "
                    "to worker processes; use a module-level "
                    "function or functools.partial",
                    scope=scope_qualname(node), detail="lambda")
            elif isinstance(fn_arg, ast.Name):
                enclosing = enclosing_function(node)
                if enclosing is not None and fn_arg.id in \
                        _local_function_names(enclosing):
                    yield self.finding(
                        module, fn_arg,
                        f"function '{fn_arg.id}' is defined inside "
                        f"'{enclosing.name}' and cannot be pickled "
                        f"to worker processes; move it to module "
                        "level",
                        scope=scope_qualname(node), detail=fn_arg.id)

    def _check_seam_classes(self,
                            module: Module) -> Iterator[Finding]:
        seams = _seam_classes(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            cls = enclosing_class(node)
            if cls is None or cls.name not in seams:
                continue
            if not isinstance(node.value, ast.Call):
                continue
            factory = _leaf(call_name(node.value))
            if factory not in _UNPICKLABLE_FACTORIES:
                continue
            for target in node.targets:
                attr = is_self_attribute(target)
                if attr is not None:
                    yield self.finding(
                        module, node,
                        f"seam class '{cls.name}' stores a "
                        f"{factory}() in 'self.{attr}'; method "
                        "objects are pickled across processes and "
                        "OS resources do not survive the trip",
                        scope=scope_qualname(node), detail=attr)
