"""Checker registry: importing this package registers the built-ins."""

from __future__ import annotations

from typing import List

from .base import (Checker, Module, checker_table, register_checker,
                   registered_checkers)
from . import lock_discipline  # noqa: F401  (registers RPA001)
from . import picklability     # noqa: F401  (registers RPA002)
from . import purity           # noqa: F401  (registers RPA003)
from . import resources        # noqa: F401  (registers RPA004)
from . import streaming        # noqa: F401  (registers RPA005)


def all_checkers() -> List[Checker]:
    """One fresh instance of every registered checker."""
    return [cls() for cls in registered_checkers()]


__all__ = [
    "Checker", "Module", "all_checkers", "checker_table",
    "register_checker", "registered_checkers",
]
