"""Checker contract and registry.

A checker is a class with a ``CODE`` (``RPA###``), a one-line
``RATIONALE`` and a ``check(module)`` generator yielding
:class:`~repro.analysis.findings.Finding` objects. The engine
instantiates every registered checker once per run, hands each parsed
module to every checker whose :meth:`Checker.applies_to` accepts its
path, and owns suppression (inline ignores, baseline) — checkers just
report what they see.

Third-party/in-repo extension is one call::

    from repro.analysis import Checker, register_checker

    @register_checker
    class NoPrintChecker(Checker):
        CODE = "RPA901"
        RATIONALE = "library code must log, not print"

        def check(self, module):
            for node in ast.walk(module.tree):
                ...
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Type

from ..astutil import attach_parents
from ..findings import Finding


@dataclass
class Module:
    """One parsed source module as the checkers see it."""

    path: str                  #: posix path relative to the scan root
    source: str
    tree: ast.Module = field(repr=False)

    @classmethod
    def parse(cls, path: str, source: str) -> "Module":
        tree = ast.parse(source)
        attach_parents(tree)
        return cls(path=path, source=source, tree=tree)

    @classmethod
    def from_file(cls, file_path: Path, rel_path: str) -> "Module":
        return cls.parse(rel_path,
                         file_path.read_text(encoding="utf-8"))


class Checker:
    """Base class: one invariant, one code."""

    #: Finding code, unique per checker (``RPA001``...).
    CODE: str = "RPA000"
    #: Short name shown in ``repro analyze --help`` style listings.
    NAME: str = "unnamed"
    #: One line: why the invariant matters in this repo.
    RATIONALE: str = ""
    #: Posix path fragments this checker is limited to; empty means
    #: every module. Overridable per instance for tests.
    PATH_PREFIXES: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.PATH_PREFIXES:
            return True
        return any(prefix in path for prefix in self.PATH_PREFIXES)

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str,
                scope: str = "", detail: str = "") -> Finding:
        return Finding(path=module.path,
                       line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0),
                       code=self.CODE, message=message,
                       scope=scope, detail=detail)


_REGISTRY: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding ``cls`` to the global registry.

    Codes are unique: re-registering an existing code replaces the
    previous checker only when it is the same class (idempotent
    re-import), otherwise it raises.
    """
    existing = _REGISTRY.get(cls.CODE)
    if existing is not None and existing.__qualname__ != cls.__qualname__:
        raise ValueError(
            f"checker code {cls.CODE} already registered by "
            f"{existing.__name__}")
    _REGISTRY[cls.CODE] = cls
    return cls


def registered_checkers() -> List[Type[Checker]]:
    """Registered checker classes, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def checker_table() -> List[Tuple[str, str, str]]:
    """``(code, name, rationale)`` rows for docs and ``--help``."""
    return [(cls.CODE, cls.NAME, cls.RATIONALE)
            for cls in registered_checkers()]
