"""RPA003 — fingerprint purity.

Cache keys in this repo are content-addressed: the fingerprint of an
edge table / method / flow plan must depend only on *what* is computed,
never on *how* (worker counts, host, time of day). A fingerprint that
sneaks in an execution-only knob silently splits the cache (same work,
different keys — zero hits); one that sneaks in a nondeterminism
source poisons it (different work, same key — wrong answers served).

The checker therefore patrols **fingerprint code** — modules named
``fingerprint*`` and functions/methods whose name starts with
``fingerprint`` or is ``method_config`` — and flags:

* attribute reads of execution-only knobs (``.workers``,
  ``.extraction_only_params``): those are declared in
  ``repro.pipeline.fingerprint`` as excluded from keys, so reading
  them *inside* fingerprint code is almost certainly a leak;
* calls into nondeterminism (``time.*``, ``random.*``, ``uuid.*``,
  ``os.getpid``, ``os.urandom``, ``os.getenv``, ``datetime.now``)
  and reads of ``os.environ``.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator, Optional

from ..astutil import (FUNCTION_KINDS, call_name, dotted_name,
                       enclosing_function, parent, scope_qualname)
from ..findings import Finding
from .base import Checker, Module, register_checker

#: Attributes that configure execution, not content; reading them in
#: fingerprint code leaks how-we-ran into what-we-computed.
_EXECUTION_KNOBS = {"workers", "extraction_only_params"}

#: Dotted-name prefixes whose calls are nondeterministic.
_NONDET_PREFIXES = ("time.", "random.", "uuid.", "secrets.")

#: Exact dotted names that are nondeterministic calls.
_NONDET_CALLS = {"os.getpid", "os.urandom", "os.getenv",
                 "datetime.now", "datetime.utcnow",
                 "datetime.datetime.now", "datetime.datetime.utcnow"}

#: Exact dotted names whose mere *read* is nondeterministic.
_NONDET_READS = {"os.environ"}


def _is_fingerprint_module(path: str) -> bool:
    return PurePosixPath(path).name.startswith("fingerprint")


def _fingerprint_function(node: ast.AST) -> Optional[str]:
    """Name of the enclosing fingerprint function, if any."""
    func = node if isinstance(node, FUNCTION_KINDS) \
        else enclosing_function(node)
    while func is not None:
        if func.name.startswith("fingerprint") \
                or func.name == "method_config":
            return func.name
        func = enclosing_function(func)
    return None


@register_checker
class FingerprintPurityChecker(Checker):
    CODE = "RPA003"
    NAME = "fingerprint-purity"
    RATIONALE = ("cache keys must be content-addressed: execution "
                 "knobs split the cache, nondeterminism poisons it")

    def check(self, module: Module) -> Iterator[Finding]:
        whole_module = _is_fingerprint_module(module.path)
        for node in ast.walk(module.tree):
            in_scope = whole_module \
                or _fingerprint_function(node) is not None
            if not in_scope:
                continue
            yield from self._check_node(module, node)

    def _check_node(self, module: Module,
                    node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, ast.Load) \
                and node.attr in _EXECUTION_KNOBS \
                and not self._is_string_key_lookup(node):
            yield self.finding(
                module, node,
                f"fingerprint code reads execution-only knob "
                f"'.{node.attr}'; cache keys must not depend on "
                "how the run is executed",
                scope=scope_qualname(node), detail=node.attr)
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name is None:
                return
            if name in _NONDET_CALLS or any(
                    name.startswith(prefix)
                    for prefix in _NONDET_PREFIXES):
                yield self.finding(
                    module, node,
                    f"fingerprint code calls nondeterministic "
                    f"'{name}()'; equal inputs must produce equal "
                    "fingerprints",
                    scope=scope_qualname(node), detail=name)
        elif isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name in _NONDET_READS:
                yield self.finding(
                    module, node,
                    f"fingerprint code reads '{name}'; environment "
                    "state must not reach cache keys",
                    scope=scope_qualname(node), detail=name)

    @staticmethod
    def _is_string_key_lookup(node: ast.Attribute) -> bool:
        """``config.pop("workers")``-style manipulation is the *fix*
        for knob leakage, not an instance of it — only flag genuine
        ``something.workers`` value reads, never the attribute half
        of a method call like ``knobs.workers()``... which does not
        occur; this guard keeps ``.workers`` used as a method name
        (none today) from tripping the checker."""
        parent_node = parent(node)
        return isinstance(parent_node, ast.Call) \
            and parent_node.func is node
