"""RPA004 — resource leaks in the net/stream layers.

``repro.net`` and ``repro.stream`` are exactly the layers where a
leaked socket or file handle matters: the daemon runs for days, the
stream pipeline opens spool files per chunk, and the chaos proxy
churns through ephemeral connections. A handle that escapes its
``with``/``finally`` is invisible under tests (the GC saves you) and
fatal in production (fd exhaustion at 3 a.m.).

A resource acquisition is fine when it follows one of the three
ownership idioms already used across the repo:

* **with-item** — ``with open(p) as f:`` / ``with socket.socket(...)``;
* **owner attribute** — ``self._handle = open(p, "wb")`` inside a
  class that defines a teardown method (``close``/``stop``/
  ``shutdown``/``__exit__``/``__del__``): the object owns the handle
  and its lifecycle (:class:`repro.stream.blocks.ChunkSpool`);
* **close-in-finally** — ``conn = socket.create_connection(...)``
  later closed in a ``finally:`` block of the same function
  (:mod:`repro.net.faults`), or handed to an ``ExitStack`` via
  ``enter_context``/``callback``, or returned to the caller (factory
  functions transfer ownership).

Everything else is a leak waiting for load.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..astutil import (call_name, enclosing_class, enclosing_function,
                       is_self_attribute, parent, scope_qualname,
                       statement_of)
from ..findings import Finding
from .base import Checker, Module, register_checker

#: Calls that acquire an OS resource needing explicit release.
_ACQUIRERS = {
    "open",
    "socket.socket", "socket.create_connection", "socket.socketpair",
    "tempfile.TemporaryFile", "tempfile.NamedTemporaryFile",
    "gzip.open", "bz2.open", "lzma.open", "io.open",
}

#: Methods whose presence marks a class as a resource owner.
_TEARDOWN_METHODS = {"close", "stop", "shutdown", "__exit__",
                     "__del__", "unlink", "cleanup"}


def _is_acquirer(node: ast.Call) -> bool:
    name = call_name(node)
    if name is None:
        return False
    return name in _ACQUIRERS or name.rsplit(".", 1)[-1] == "open"


def _inside_withitem(node: ast.AST) -> bool:
    current: Optional[ast.AST] = node
    while current is not None:
        if isinstance(current, ast.withitem):
            return True
        if isinstance(current, ast.stmt):
            return False
        current = parent(current)
    return False


def _class_has_teardown(cls: ast.ClassDef) -> bool:
    return any(isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef))
               and stmt.name in _TEARDOWN_METHODS
               for stmt in cls.body)


def _names_closed_in_finally(func: ast.AST) -> Set[str]:
    """Local names ``n`` with ``n.close()``/``n.shutdown()`` (or an
    ``ExitStack`` hand-off) inside a ``finally:`` or ``except:`` of
    ``func``."""
    closed: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        regions = list(node.finalbody)
        for handler in node.handlers:
            regions.extend(handler.body)
        for stmt in regions:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Attribute) \
                        and sub.func.attr in ("close", "shutdown",
                                              "release", "unlink") \
                        and isinstance(sub.func.value, ast.Name):
                    closed.add(sub.func.value.id)
    for node in ast.walk(func):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("enter_context", "callback",
                                       "push"):
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    closed.add(arg.id)
                elif isinstance(arg, ast.Attribute) \
                        and isinstance(arg.value, ast.Name):
                    closed.add(arg.value.id)
    return closed


def _names_returned(func: ast.AST) -> Set[str]:
    returned: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Return) \
                and isinstance(node.value, ast.Name):
            returned.add(node.value.id)
        elif isinstance(node, ast.Return) \
                and isinstance(node.value, ast.Tuple):
            for elt in node.value.elts:
                if isinstance(elt, ast.Name):
                    returned.add(elt.id)
    return returned


@register_checker
class ResourceLeakChecker(Checker):
    CODE = "RPA004"
    NAME = "resource-leaks"
    RATIONALE = ("sockets/files in long-lived net/stream code must "
                 "be owned: with-block, owner attribute with "
                 "teardown, or close-in-finally")
    PATH_PREFIXES = ("repro/net/", "repro/stream/", "repro/serve/")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) \
                    or not _is_acquirer(node):
                continue
            if _inside_withitem(node):
                continue
            if self._owned(node):
                continue
            name = call_name(node) or "resource"
            yield self.finding(
                module, node,
                f"'{name}(...)' acquires a resource outside any "
                "with-block, owner attribute or close-in-finally; "
                "it leaks on the first exception",
                scope=scope_qualname(node), detail=name)

    def _owned(self, node: ast.Call) -> bool:
        stmt = statement_of(node)
        func = enclosing_function(node)
        # Direct return: ownership transfers to the caller.
        if isinstance(stmt, ast.Return) and stmt.value is node:
            return True
        # The acquirer may sit inside the assigned expression (a list
        # comprehension of handles, a wrapping call) — ownership is
        # judged by where the value lands, not the exact expression.
        if isinstance(stmt, ast.Assign) and stmt.value is not None \
                and any(sub is node for sub in ast.walk(stmt.value)):
            for target in stmt.targets:
                attr = is_self_attribute(target)
                if attr is not None:
                    cls = enclosing_class(node)
                    if cls is not None and _class_has_teardown(cls):
                        return True
                if isinstance(target, ast.Name) and func is not None:
                    if target.id in _names_closed_in_finally(func):
                        return True
                    if target.id in _names_returned(func):
                        return True
        return False
