"""Shared AST plumbing for the invariant checkers.

Python's :mod:`ast` gives children, not parents; every checker here
reasons "upward" (is this write inside a ``with self._lock`` block?
what class owns this method?), so :func:`attach_parents` stamps a
parent pointer on every node once per module and the helpers below
walk it. Nothing in this module knows about any specific invariant.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple, Type

_PARENT = "_repro_parent"


def attach_parents(tree: ast.AST) -> ast.AST:
    """Stamp a parent pointer on every node (idempotent)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT, node)
    return tree


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, _PARENT, None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The chain of enclosing nodes, innermost first."""
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def enclosing(node: ast.AST,
              kinds: Tuple[Type[ast.AST], ...]) -> Optional[ast.AST]:
    """Nearest ancestor of one of ``kinds``, or ``None``."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, kinds):
            return ancestor
    return None


FUNCTION_KINDS = (ast.FunctionDef, ast.AsyncFunctionDef)
SCOPE_KINDS = FUNCTION_KINDS + (ast.ClassDef,)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    return enclosing(node, FUNCTION_KINDS)


def enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    found = enclosing(node, (ast.ClassDef,))
    return found if isinstance(found, ast.ClassDef) else None


def scope_qualname(node: ast.AST) -> str:
    """Dotted qualname of the scopes enclosing ``node``.

    ``Daemon.start`` for a statement in a method, ``_fetch`` for one
    in a module function, ``""`` at module level. The node itself
    contributes when it *is* a scope.
    """
    parts: List[str] = []
    current: Optional[ast.AST] = node
    while current is not None:
        if isinstance(current, SCOPE_KINDS):
            parts.append(current.name)
        current = parent(current)
    return ".".join(reversed(parts))


def is_self_attribute(node: ast.AST,
                      self_name: str = "self") -> Optional[str]:
    """``attr`` when ``node`` is ``self.attr``, else ``None``."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == self_name:
        return node.attr
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``"a.b.c"`` for nested Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target (``"threading.Lock"``)."""
    return dotted_name(node.func)


def assign_targets(node: ast.AST) -> List[ast.AST]:
    """Store-context target expressions of an assignment statement.

    Tuple/list targets are flattened; ``Starred`` is unwrapped. Works
    for ``Assign``, ``AugAssign``, ``AnnAssign``, ``For``, ``withitem``
    ``as`` bindings and walrus targets.
    """
    raw: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        raw.extend(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        raw.append(node.target)
    elif isinstance(node, ast.NamedExpr):
        raw.append(node.target)
    flat: List[ast.AST] = []
    stack = raw[::-1]
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts[::-1])
        elif isinstance(target, ast.Starred):
            stack.append(target.value)
        else:
            flat.append(target)
    return flat


#: Method names that mutate their receiver in place — used to treat
#: ``self.pending.append(x)`` as a write to ``pending``.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "move_to_end", "sort",
    "reverse", "appendleft", "extendleft", "popleft",
})


def statement_of(node: ast.AST) -> Optional[ast.stmt]:
    """The smallest enclosing statement (the node itself if one)."""
    current: Optional[ast.AST] = node
    while current is not None and not isinstance(current, ast.stmt):
        current = parent(current)
    return current


def withs_containing(node: ast.AST) -> Iterator[ast.With]:
    """Enclosing ``with`` statements whose *body* contains ``node``.

    A node inside a ``with`` statement's context expressions (the
    ``withitem`` side of the colon) is not "inside" the block, so the
    walk checks which side of each ancestor the path came through.
    """
    below: ast.AST = node
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.With) \
                and any(entry is below for entry in ancestor.body):
            yield ancestor
        below = ancestor
