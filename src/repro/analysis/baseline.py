"""Committed baseline of grandfathered findings.

A baseline is a JSON file holding the findings that existed when a
checker was introduced. ``repro analyze`` subtracts it from the live
run so a new checker can land strict without a flag-day fixing spree;
the debt stays visible in the file and shrinks over time (fixed
findings show up as *stale baseline entries* so the file cannot rot).

Matching is line-independent — see :meth:`Finding.key` — and treats
equal keys as a multiset: a baseline entry absorbs exactly one live
finding, so regressions past the grandfathered count still fail.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Tuple

from .findings import Finding

_FORMAT_VERSION = 1


@dataclass
class BaselineResult:
    """Live findings split against a baseline."""

    new: Tuple[Finding, ...]        #: findings not covered by baseline
    matched: Tuple[Finding, ...]    #: grandfathered findings
    #: baseline keys with no live finding left — fixed debt that
    #: should be removed from the file.
    stale: Tuple[Tuple[str, str, str, str], ...]


class Baseline:
    """A multiset of grandfathered finding keys."""

    def __init__(self, findings: Iterable[Finding] = ()):
        self.entries: List[Finding] = sorted(findings)

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}")
        return cls(Finding.from_dict(entry)
                   for entry in payload.get("findings", ()))

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "comment": ("Grandfathered repro-analyze findings. Entries"
                        " match by (code, path, scope, detail), not"
                        " line numbers. Shrink me, never grow me."),
            "findings": [entry.to_dict() for entry in self.entries],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")

    def apply(self, findings: Iterable[Finding]) -> BaselineResult:
        budget = Counter(entry.key() for entry in self.entries)
        new: List[Finding] = []
        matched: List[Finding] = []
        for finding in sorted(findings):
            if budget.get(finding.key(), 0) > 0:
                budget[finding.key()] -= 1
                matched.append(finding)
            else:
                new.append(finding)
        stale = sorted(key for key, count in budget.items()
                       for _ in range(count))
        return BaselineResult(new=tuple(new), matched=tuple(matched),
                              stale=tuple(stale))
