"""Finding objects and their stable identities.

A :class:`Finding` is one checker verdict anchored to a source
location. Two identities matter:

* the **location** (``path:line:col``) — what humans and editors
  consume;
* the **key** (:meth:`Finding.key`) — ``path``, ``code``, enclosing
  ``scope`` and a short ``detail`` token, deliberately *excluding*
  line numbers so a committed baseline keeps matching after unrelated
  edits shift the file around.

Checkers fill ``detail`` with the smallest token that pins the finding
down (an attribute name, a function name, a call target); together
with the scope qualname that is almost always unique, and when it is
not, the baseline treats equal keys as a multiset (two grandfathered
findings absorb two live ones, a third still fails the build).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation reported by a checker."""

    path: str          #: repo-relative posix path of the module
    line: int          #: 1-based source line
    col: int           #: 0-based column
    code: str          #: checker code, e.g. ``RPA001``
    message: str       #: human-readable explanation
    scope: str = ""    #: dotted qualname of the enclosing def/class
    detail: str = ""   #: short stable token (attribute / call name)

    def key(self) -> Tuple[str, str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.code, self.path, self.scope, self.detail)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def render(self) -> str:
        where = f" [{self.scope}]" if self.scope else ""
        return f"{self.location()}: {self.code}{where} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path, "line": self.line, "col": self.col,
            "code": self.code, "message": self.message,
            "scope": self.scope, "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(path=str(payload["path"]),
                   line=int(payload.get("line", 0)),
                   col=int(payload.get("col", 0)),
                   code=str(payload["code"]),
                   message=str(payload.get("message", "")),
                   scope=str(payload.get("scope", "")),
                   detail=str(payload.get("detail", "")))


@dataclass
class ModuleReport:
    """Per-module outcome: findings plus suppression accounting."""

    path: str
    findings: Tuple[Finding, ...] = ()
    ignored: Tuple[Finding, ...] = ()
    #: inline ignore comments that suppressed nothing — reported so
    #: stale escapes cannot silently accumulate.
    unused_ignores: Tuple[Tuple[int, str], ...] = ()
    error: Optional[str] = field(default=None)
