"""ASCII rendering for experiment output.

The benchmark harness regenerates the paper's tables and figure series as
text; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

Number = Union[int, float]
Cell = Union[str, Number, None]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None, precision: int = 4) -> str:
    """Render rows as a fixed-width ASCII table.

    ``None`` cells render as ``n/a`` (the paper uses this for methods that
    are inapplicable, e.g. Doubly Stochastic on non-squarable networks).
    """
    formatted_rows = [[_format_cell(cell, precision) for cell in row]
                      for row in rows]
    columns = [list(column) for column in
               zip(*([list(headers)] + formatted_rows))] if formatted_rows \
        else [[h] for h in headers]
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted_rows:
        lines.append("  ".join(value.ljust(width)
                               for value, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[Number]],
                  x_label: str, x_values: Sequence[Number],
                  title: Optional[str] = None, precision: int = 4) -> str:
    """Render named y-series over shared x-values as an ASCII table.

    Used for "figure" outputs: one row per x, one column per series.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: list = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, title=title, precision=precision)


def _format_cell(cell: Cell, precision: int) -> str:
    if cell is None:
        return "n/a"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        return f"{cell:.{precision}f}"
    return str(cell)
