"""Argument-checking helpers shared across the library.

These helpers raise early, with messages that name the offending argument,
so that algorithm code can assume clean inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def as_float_array(values: Iterable[float], name: str) -> np.ndarray:
    """Convert ``values`` to a 1-D float64 array, validating finiteness."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, "
                         f"got shape {array.shape}")
    if array.size and not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite values")
    return array


def as_index_array(values: Iterable[int], name: str) -> np.ndarray:
    """Convert ``values`` to a 1-D int64 array of non-negative indices."""
    array = np.asarray(values)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, "
                         f"got shape {array.shape}")
    if array.size == 0:
        return array.astype(np.int64)
    if not np.issubdtype(array.dtype, np.integer):
        rounded = np.rint(np.asarray(array, dtype=np.float64))
        if not np.allclose(array, rounded):
            raise ValueError(f"{name} must contain integers")
        array = rounded
    array = array.astype(np.int64)
    if array.min() < 0:
        raise ValueError(f"{name} must contain non-negative indices")
    return array


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed unit interval."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is zero or positive."""
    value = float(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_same_length(name_a: str, a: Sequence, name_b: str,
                      b: Sequence) -> None:
    """Validate that two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )
