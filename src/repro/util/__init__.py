"""Shared utilities: validation, ASCII tables and charts, timing, fan-out."""

from .ascii_plot import ascii_chart
from .parallel import chunked, parallel_map, resolve_workers
from .tables import format_series, format_table
from .timing import Timer
from .validation import (as_float_array, as_index_array, check_non_negative,
                         check_positive, check_probability,
                         check_same_length, require)

__all__ = [
    "Timer",
    "chunked",
    "parallel_map",
    "resolve_workers",
    "as_float_array",
    "ascii_chart",
    "as_index_array",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_same_length",
    "format_series",
    "format_table",
    "require",
]
