"""Wall-clock timing for the scalability experiment (paper Fig. 9)."""

from __future__ import annotations

import time
from typing import Callable, Tuple


class Timer:
    """Context manager measuring elapsed wall-clock seconds."""

    def __init__(self):
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_call(function: Callable, *args, repeats: int = 1,
              **kwargs) -> Tuple[float, object]:
    """Run ``function`` ``repeats`` times; return (mean seconds, last result).

    The paper reports the average of ten runs per network size; this is
    the equivalent harness hook.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    total = 0.0
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function(*args, **kwargs)
        total += time.perf_counter() - start
    return total / repeats, result
