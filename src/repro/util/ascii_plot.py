"""Plain-text charts for figure-style experiment output.

The paper's figures are log-log line plots; in a text-only harness we
render them as fixed-size character grids. One glyph per series, row
per y-bucket, column per x-position, with optional log scaling on
either axis.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

#: Glyphs assigned to series in insertion order.
SERIES_GLYPHS = "ox+*#@%&"


def ascii_chart(series: Mapping[str, Sequence[float]],
                x_values: Sequence[float], width: int = 64,
                height: int = 16, log_x: bool = False,
                log_y: bool = False,
                title: Optional[str] = None) -> str:
    """Render named y-series over shared x-values as a character chart.

    NaN values and (under log scaling) non-positive values are skipped.
    Later series overwrite earlier ones where they collide.
    """
    if width < 8 or height < 4:
        raise ValueError("chart needs width >= 8 and height >= 4")
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(SERIES_GLYPHS):
        raise ValueError(f"at most {len(SERIES_GLYPHS)} series supported")

    points: Dict[str, List[tuple]] = {}
    xs_all: List[float] = []
    ys_all: List[float] = []
    for name, ys in series.items():
        kept = []
        for x, y in zip(x_values, ys):
            if y != y:  # NaN
                continue
            if log_x and x <= 0:
                continue
            if log_y and y <= 0:
                continue
            tx = math.log10(x) if log_x else float(x)
            ty = math.log10(y) if log_y else float(y)
            kept.append((tx, ty))
            xs_all.append(tx)
            ys_all.append(ty)
        points[name] = kept
    if not xs_all:
        raise ValueError("no plottable points")

    x_low, x_high = min(xs_all), max(xs_all)
    y_low, y_high = min(ys_all), max(ys_all)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, kept) in zip(SERIES_GLYPHS, points.items()):
        for tx, ty in kept:
            column = int(round((tx - x_low) / x_span * (width - 1)))
            row = int(round((ty - y_low) / y_span * (height - 1)))
            grid[height - 1 - row][column] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = f"{(10 ** y_high if log_y else y_high):.3g}"
    y_bottom = f"{(10 ** y_low if log_y else y_low):.3g}"
    label_width = max(len(y_top), len(y_bottom))
    for index, row in enumerate(grid):
        if index == 0:
            label = y_top.rjust(label_width)
        elif index == height - 1:
            label = y_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    x_left = f"{(10 ** x_low if log_x else x_low):.3g}"
    x_right = f"{(10 ** x_high if log_x else x_high):.3g}"
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    gap = width - len(x_left) - len(x_right)
    lines.append(" " * (label_width + 2) + x_left + " " * max(gap, 1)
                 + x_right)
    legend = "  ".join(f"{glyph}={name}" for glyph, name
                       in zip(SERIES_GLYPHS, points))
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
