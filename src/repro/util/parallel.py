"""Process-based fan-out shared by the shortest-path engine and sweeps.

Heavy root-parallel work (one shortest-path tree per root in the
High-Salience Skeleton) splits naturally into independent chunks. This
module is the single home of the ``workers=`` knob: callers hand over a
picklable chunk function and a list of chunk payloads, and either get a
plain serial map (``workers`` unset, zero or one) or a
``multiprocessing`` pool map.

The pool uses the ``fork`` start method when the platform offers it, so
read-only numpy arrays bound into the chunk function are shared
copy-on-write instead of being re-pickled into every worker.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers=`` knob into a concrete process count.

    ``None``, ``0`` and ``1`` mean "stay serial"; a negative value means
    "one per available CPU"; anything else is used as given.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers in (0, 1):
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return workers


def parallel_map(fn: Callable[[_T], _R], items: Iterable[_T],
                 workers: Optional[int] = None) -> List[_R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Serial when :func:`resolve_workers` says so or there is at most one
    item; otherwise a ``multiprocessing`` pool is used, which requires
    ``fn`` and every item to be picklable. Result order matches item
    order either way.
    """
    items = list(items)
    count = min(resolve_workers(workers), len(items))
    if count <= 1:
        return [fn(item) for item in items]
    ctx = _pool_context()
    with ctx.Pool(processes=count) as pool:
        return pool.map(fn, items)


def chunked(items: Sequence[_T], size: int) -> List[Sequence[_T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    size = max(1, int(size))
    return [items[start:start + size] for start in range(0, len(items), size)]


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])
