"""Process-based fan-out shared by the shortest-path engine and sweeps.

Heavy root-parallel work (one shortest-path tree per root in the
High-Salience Skeleton) splits naturally into independent chunks. This
module is the single home of the ``workers=`` knob: callers hand over a
picklable chunk function and a list of chunk payloads, and either get a
plain serial map (``workers`` unset, zero or one) or a process-pool map.

The pool uses the ``fork`` start method when the platform offers it, so
read-only numpy arrays bound into the chunk function are shared
copy-on-write instead of being re-pickled into every worker.

Worker-pool *infrastructure* failures — a worker process killed by the
OS (OOM, signal), a task that cannot cross the process boundary — are
distinct from the chunk function raising: the chunk function's own
exceptions propagate unchanged, while pool failures surface as a typed
:class:`WorkerPoolError` carrying the ids (input indices) of the tasks
whose results were lost. Callers that must survive worker death pass
``retry_serial=True`` and the lost tasks are transparently re-run in
the parent process instead — the documented degradation path the serve
daemon and the sweep executor rely on.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (Any, Callable, Iterable, List, NamedTuple, Optional,
                    Sequence, Tuple, TypeVar)

from ..obs.metrics import get_registry
from ..obs.trace import (SpanContext, activate, add_attributes,
                         current_context, extend_current)

_T = TypeVar("_T")
_R = TypeVar("_R")

# Declared at import so every series exists (at 0) on first scrape.
_REGISTRY = get_registry()
_POOL_TASKS = _REGISTRY.counter(
    "repro_pool_tasks_total",
    "Tasks dispatched to worker pools (parallel_map, workers > 1).")
_POOL_LOST = _REGISTRY.counter(
    "repro_pool_tasks_lost_total",
    "Tasks whose results were lost to a pool infrastructure fault.")
_POOL_RETRIES = _REGISTRY.counter(
    "repro_pool_serial_retries_total",
    "Lost tasks transparently re-run serially in the parent process.")
_POOL_ERRORS = _REGISTRY.counter(
    "repro_pool_errors_total",
    "WorkerPoolError raised to callers (no retry_serial requested).")


class WorkerPoolError(RuntimeError):
    """The worker pool itself failed (dead worker, unpicklable task).

    ``failed`` holds the input indices (task ids) whose results were
    lost; completed tasks' results are gone with the call. ``cause`` is
    the underlying pool exception (``BrokenProcessPool``, a pickling
    error). Raised only for infrastructure faults — exceptions raised
    *by* the mapped function propagate as themselves.
    """

    def __init__(self, message: str, failed: Sequence[int] = (),
                 cause: Optional[BaseException] = None):
        super().__init__(message)
        self.failed: Tuple[int, ...] = tuple(failed)
        self.cause = cause


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers=`` knob into a concrete process count.

    ``None``, ``0`` and ``1`` mean "stay serial"; a negative value means
    "one per available CPU"; anything else is used as given.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers in (0, 1):
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return workers


def parallel_map(fn: Callable[[_T], _R], items: Iterable[_T],
                 workers: Optional[int] = None,
                 retry_serial: bool = False) -> List[_R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Serial when :func:`resolve_workers` says so or there is at most one
    item; otherwise a process pool is used, which requires ``fn`` and
    every item to be picklable. Result order matches item order either
    way, and exceptions raised by ``fn`` propagate unchanged.

    Pool *infrastructure* failures — a worker process dying mid-task
    (``BrokenProcessPool``), a payload that fails to pickle — raise
    :class:`WorkerPoolError` naming the lost task ids. With
    ``retry_serial=True`` the lost tasks are re-run serially in the
    parent process instead, so a crashed worker degrades to slower,
    not broken: the returned list is complete and identical to a fully
    serial run (``fn`` is deterministic for every caller in this
    codebase).

    When a trace is active in the caller (:mod:`repro.obs`), its
    :class:`SpanContext` ships with every task; spans the mapped
    function opens in a worker are recorded under that parent and
    adopted back into the caller's trace with the results, and serial
    retries stamp a ``pool.retry_serial`` attribute on the enclosing
    span so healed worker deaths stay visible.
    """
    items = list(items)
    count = min(resolve_workers(workers), len(items))
    if count <= 1:
        return [fn(item) for item in items]

    ctx = current_context()
    if ctx is not None:
        payloads: List[Any] = [_TracedTask(fn, item, ctx)
                               for item in items]
        run: Callable[[Any], Any] = _traced_call
    else:
        payloads, run = items, fn
    _POOL_TASKS.inc(len(items))

    results: List[Optional[_R]] = [None] * len(items)
    failed: List[int] = []
    cause: Optional[BaseException] = None
    executor = ProcessPoolExecutor(max_workers=count,
                                   mp_context=_pool_context())
    try:
        try:
            futures = [executor.submit(run, payload)
                       for payload in payloads]
        except (BrokenProcessPool, pickle.PicklingError) as error:
            _POOL_ERRORS.inc()
            raise WorkerPoolError(
                f"could not dispatch tasks to the worker pool: {error}",
                failed=range(len(items)), cause=error) from error
        fn_error: Optional[BaseException] = None
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except BaseException as error:
                if _is_pool_failure(error):
                    failed.append(index)
                    cause = error
                elif fn_error is None:  # fn's own exception
                    fn_error = error
        if fn_error is not None:
            raise fn_error
    finally:
        executor.shutdown(wait=False, cancel_futures=True)

    if failed:
        _POOL_LOST.inc(len(failed))
        if not retry_serial:
            _POOL_ERRORS.inc()
            raise WorkerPoolError(
                f"worker pool lost {len(failed)} of {len(items)} tasks "
                f"(ids {list(failed)}): {cause}; pass retry_serial=True "
                "to re-run lost tasks serially in the parent process",
                failed=failed, cause=cause)
        _POOL_RETRIES.inc(len(failed))
        add_attributes(**{"pool.retry_serial": len(failed),
                          "pool.retry_ids": sorted(failed)})
        for index in failed:
            results[index] = run(payloads[index])
    if ctx is not None:
        results = [_adopt(wrapped) for wrapped in results]
    return results


class _TracedTask(NamedTuple):
    """A task plus the trace coordinates it must record under."""

    fn: Callable[[Any], Any]
    item: Any
    ctx: SpanContext


class _TaskSpans(NamedTuple):
    """A task result plus the spans recorded while computing it."""

    result: Any
    spans: Tuple[Any, ...]


def _traced_call(task: _TracedTask) -> _TaskSpans:
    """Run one task under a fresh activation of the parent context.

    The activation's sink starts empty in every process, so a forked
    worker ships back only the spans *this* task recorded — never
    state inherited from the parent — and the in-parent serial-retry
    path behaves identically. Spans are dropped when ``fn`` raises;
    the exception itself propagates unchanged.
    """
    with activate(task.ctx) as activation:
        result = task.fn(task.item)
    return _TaskSpans(result, tuple(activation.spans))


def _adopt(wrapped: Any) -> Any:
    if isinstance(wrapped, _TaskSpans):
        extend_current(wrapped.spans)
        return wrapped.result
    return wrapped


def _is_pool_failure(error: BaseException) -> bool:
    """Infrastructure fault (vs. the mapped function's own exception)?

    ``BrokenProcessPool`` is a dead worker; pickling failures of the
    payload surface as ``PicklingError`` or — from the feeder thread —
    as ``AttributeError``/``TypeError`` whose message names pickling.
    """
    if isinstance(error, (BrokenProcessPool, pickle.PicklingError)):
        return True
    return isinstance(error, (AttributeError, TypeError)) \
        and "pickle" in str(error).lower()


def chunked(items: Sequence[_T], size: int) -> List[Sequence[_T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    size = max(1, int(size))
    return [items[start:start + size] for start in range(0, len(items), size)]


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])
