"""Observability end to end: one traced request, one metrics scrape.

Starts a real ``repro.serve.BackboneDaemon`` on a free port with two
scoring workers, then

1. sends one batch of two plans (NC and DF over the same file) with
   ``trace=True`` — the reply carries a JSON trace artifact whose
   span tree covers the admission wait, plan compilation, file
   parsing, the scoring fan-out (spans recorded *inside* the worker
   processes ride back and are adopted into the request trace) and
   per-plan extraction, with per-stage duration totals;
2. scrapes ``GET /v1/metrics`` and shows a few of the Prometheus
   series the daemon exposes (request counters, cache hit/miss,
   latency histograms);
3. shuts the daemon down gracefully over HTTP.

Run:  python examples/observe_request.py
"""

import tempfile
from pathlib import Path

from repro import flow
from repro.generators import erdos_renyi_gnm
from repro.graph.ingest import write_edges
from repro.obs import parse_prometheus
from repro.serve import BackboneDaemon, ServeClient

# A noisy network on disk, and a daemon with real process fan-out.
network = erdos_renyi_gnm(n_nodes=60, n_edges=400, seed=7)
path = Path(tempfile.mkdtemp()) / "edges.csv"
write_edges(network, path)

daemon = BackboneDaemon(port=0, workers=2, batch_window=0.02).start()
client = ServeClient(port=daemon.port)
print(f"daemon up on port {daemon.port} (healthy: {client.healthy()})")

# --- 1. One traced request: two plans, two cold scoring passes.
plans = [flow(path).method("nc", delta=1.64).budget(share=0.2).to_json(),
         flow(path).method("df").budget(share=0.2).to_json()]
reply = client.run(plans, trace=True)
artifact = reply["trace"]
print(f"\ntrace id {artifact['trace_id'][:16]} "
      f"({len(artifact['spans'])} spans, wall {artifact['wall_s']:.3f}s)")
pids = {s["attributes"]["pid"] for s in artifact["spans"]
        if s["name"] == "score"}
print(f"scoring ran in {len(pids)} process(es)")
print("stage durations:")
for name, seconds in sorted(artifact["stages"].items(),
                            key=lambda kv: -kv[1]):
    print(f"  {name:<16} {seconds:.6f}s")

# --- 2. The same story as counters: scrape /v1/metrics.
series = parse_prometheus(client.metrics())
print("\nmetrics scrape (GET /v1/metrics):")
for name in ("repro_daemon_requests_total", "repro_daemon_served_total",
             "repro_cache_misses_total", "repro_cache_hits_total",
             "repro_daemon_request_seconds_count"):
    values = series.get(name, {})
    total = sum(values.values())
    print(f"  {name} = {total:g}")

# --- 3. Graceful shutdown over the wire.
print(f"\nshutdown acknowledged: {client.shutdown()}")
daemon._stopped.wait(timeout=5.0)
print(f"daemon stopped (healthy now: {client.healthy()})")
