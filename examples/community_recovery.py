"""Community recovery: the paper's Fig. 1 demonstration.

A 151-node planted-partition network so dense that label propagation on
the raw data collapses into one giant community. The Noise-Corrected
backbone prunes the noise; the same algorithm then recovers the planted
classes exactly.

Run:  python examples/community_recovery.py
"""

from repro import (NoiseCorrectedBackbone, Partition, label_propagation,
                   normalized_mutual_information, planted_partition)

planted = planted_partition(n_nodes=151, n_communities=5, seed=0)
truth = Partition(planted.labels)
print(f"raw network: {planted.table.m} edges over "
      f"{planted.table.n_nodes} nodes "
      f"({planted.table.m / (151 * 150 / 2):.0%} of all pairs)")

raw_communities = label_propagation(planted.table, seed=0)
print(f"label propagation on the raw hairball: "
      f"{raw_communities.n_communities} community(ies), "
      f"NMI vs truth = "
      f"{normalized_mutual_information(raw_communities, truth):.3f}")

for delta in (1.28, 1.64, 2.32):
    backbone = NoiseCorrectedBackbone(delta=delta).extract(planted.table)
    communities = label_propagation(backbone, seed=0)
    nmi = normalized_mutual_information(communities, truth)
    print(f"NC backbone (delta={delta}): {backbone.m:5d} edges, "
          f"{communities.n_communities} communities, NMI = {nmi:.3f}")

print("\nThe hairball hides the structure; the backbone recovers it.")
