"""Multilayer backboning: the paper's future-work extension in action.

The paper's conclusion (Section VII) proposes extending NC "to consider
multilayer networks, where nodes in different layers are coupled
together and where these couplings influence the backbone structure".
This example backbones the bundled Trade and Business layers together:
under the *coupled* null model, a country that is a hub in trade is
expected to attract business travel too, so only connections exceeding
the pooled propensity survive.

Run:  python examples/multilayer_backbone.py
"""

from repro import datasets
from repro.core import MultilayerNetwork, multilayer_noise_corrected

trade = datasets.load_country_network("trade", 0)
business = datasets.load_country_network("business", 0)
network = MultilayerNetwork({"trade": trade, "business": business})
print(f"layers: {network.layer_names()}, nodes: {network.n_nodes}, "
      f"pooled N..: {network.grand_total():,.0f}")

for null_model in ("independent", "coupled"):
    scored = multilayer_noise_corrected(network, null_model=null_model)
    backbones = scored.backbone(delta=1.64)
    sizes = {name: backbone.m for name, backbone in backbones.items()}
    flattened = scored.flattened_backbone(delta=1.64)
    print(f"\n{null_model} null: per-layer backbone sizes {sizes}, "
          f"flattened union {flattened.m} edges")

independent = multilayer_noise_corrected(network,
                                         null_model="independent")
coupled = multilayer_noise_corrected(network, null_model="coupled")
keys_independent = independent.backbone(1.64)["business"].edge_key_set()
keys_coupled = coupled.backbone(1.64)["business"].edge_key_set()
only_independent = len(keys_independent - keys_coupled)
only_coupled = len(keys_coupled - keys_independent)
print(f"\nbusiness-layer disagreement: {only_independent} edges survive "
      f"only the independent null, {only_coupled} only the coupled null")
print("Edges kept only under independence ride on single-layer hub "
      "propensity; the coupled null discounts them using what the trade "
      "layer already knows about each country.")
