"""Occupation mobility: the paper's Section VI case study end-to-end.

Builds the synthetic O*NET-style skill co-occurrence network, extracts
NC and DF backbones of equal size, and compares them on community
structure (Infomap compression, modularity and NMI against the expert
classification) and on predicting occupational labor flows.

Run:  python examples/occupation_mobility.py
"""

from repro.experiments import case_study
from repro.generators import generate_occupation_study

study = generate_occupation_study(n_occupations=220, n_skills=150,
                                  n_major_groups=8, seed=0)
print(f"occupations: {study.n_occupations}, "
      f"skills: {study.skill_matrix.shape[1]}, "
      f"co-occurrence edges: {study.cooccurrence.m}, "
      f"total switchers: {int(study.flows.sum()):,}")

result = case_study.run(study=study)
print()
print(case_study.format_result(result))
print()
if result.orderings_hold():
    print("All of the paper's orderings hold: the NC backbone compresses "
          "better, aligns better with the expert classification, and "
          "selects occupation pairs whose labor flows are easier to "
          "predict — full < DF < NC.")
else:
    print("Warning: some orderings differ from the paper on this seed.")
