"""Flow requests: one declarative API from source to backbone.

Builds a noisy synthetic network, writes it to disk, and serves a
*batch* of backbone requests over it through ``repro.flow``: plans are
pure fingerprinted descriptions, batches deduplicate scoring by cache
key (eight requests, one scoring pass), and a plan saved as JSON is a
shippable artifact any machine can execute.

Run:  python examples/flow_requests.py
"""

import tempfile
from pathlib import Path

from repro import flow, serve
from repro.generators import erdos_renyi_gnm
from repro.graph.ingest import write_edges
from repro.pipeline import ScoreStore

# A random weighted network, written out the way real data arrives.
network = erdos_renyi_gnm(n_nodes=60, n_edges=400, seed=7)
path = Path(tempfile.mkdtemp()) / "edges.csv"
write_edges(network, path)
print(f"source: {path.name} ({network.m} edges, {network.n_nodes} nodes)")

# --- One request: nothing touches the file until .run().
plan = (flow(path, directed=False).method("nc", delta=1.64)
        .budget(share=0.1).metrics("density", "coverage"))
print(f"\nplan fingerprint: {plan.fingerprint()[:16]}…")
result = plan.run()
print(f"one request: kept {result.backbone.m} edges "
      f"({result.kept_share:.0%}); metrics: "
      + ", ".join(f"{k}={v:.3f}" for k, v in result.metrics.items()))

# --- A batch: eight strictness settings, one scoring pass. The store
# --- verifies the deduplication: one miss, one put.
store = ScoreStore()
variants = (flow(path, directed=False).method("nc")
            .run_many(store=store,
                      delta=[0.5, 1.0, 1.28, 1.64, 2.0, 2.32, 3.0, 4.0]))
sizes = [r.backbone.m for r in variants]
print(f"\nbatched deltas -> backbone sizes: {sizes}")
print(f"store traffic: {store.stats.summary()}")
assert store.stats.puts == 1, "the batch should score exactly once"

# --- Heterogeneous batches deduplicate per method: six requests over
# --- two methods cost two scoring passes.
plans = [flow(path, directed=False).method(code).budget(share=share)
         for code in ("NT", "DF") for share in (0.05, 0.1, 0.2)]
served = serve(plans, store=store)
print("\nmixed batch:")
for item in served:
    spec = item.plan.method_spec.code
    print(f"  {spec} at share {item.plan.budget_spec.share:.2f}: "
          f"{item.backbone.m} edges")

# --- Plans are artifacts: save, reload, run anywhere.
artifact = path.with_name("plan.json")
artifact.write_text(plan.to_json())
from repro.flow import Plan

reloaded = Plan.from_json(artifact.read_text())
assert reloaded.fingerprint() == plan.fingerprint()
print(f"\nplan.json round-trips (fingerprint {reloaded.fingerprint()[:16]}…)"
      "\n-> also runnable via: repro flow run plan.json")
