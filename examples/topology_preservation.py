"""Topology preservation: do backbones keep the network's character?

The paper defines a backbone as a subset that preserves "the substantive
and topological characteristics of the network". This example measures
exactly that on the bundled trade network: clustering, assortativity and
reciprocity of each method's backbone versus the full network, at one
shared edge budget.

Run:  python examples/topology_preservation.py
"""

from repro import datasets, paper_methods
from repro.backbones import SinkhornConvergenceError
from repro.graph import (average_weighted_clustering,
                         degree_assortativity, reciprocity)
from repro.util import format_table


def profile(table):
    return [average_weighted_clustering(table),
            degree_assortativity(table), reciprocity(table)]


trade = datasets.load_country_network("trade", 0)
budget = int(0.15 * trade.m)
print(f"trade network: {trade.m} edges, budget {budget} "
      f"({budget / trade.m:.0%})\n")

rows = [["(full network)", trade.m] + profile(trade)]
for method in paper_methods():
    try:
        if method.parameter_free:
            backbone = method.extract(trade)
        else:
            backbone = method.extract(trade, n_edges=budget)
    except SinkhornConvergenceError:
        rows.append([method.code, None, None, None, None])
        continue
    rows.append([method.code, backbone.m] + profile(backbone))

print(format_table(
    ["method", "edges", "weighted clustering", "degree assortativity",
     "reciprocity"], rows,
    title="Topology preservation at a matched edge budget"))
print("\nA good backbone should sit near the full network's row; "
      "tree-like backbones (MST) erase clustering entirely, and naive "
      "thresholding concentrates on reciprocal hub-hub links.")
