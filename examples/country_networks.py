"""Country networks: compare all backbone methods on gravity-model data.

Generates the synthetic six-network world that substitutes for the
paper's proprietary country data, then evaluates every method on the
paper's three criteria — coverage, quality and stability — for one
network of each kind (flow, stock, co-occurrence).

Run:  python examples/country_networks.py
"""

from repro import SyntheticWorld, coverage, paper_methods
from repro.backbones import SinkhornConvergenceError
from repro.evaluation import (average_stability, backbone_pair_mask,
                              network_design, quality_ratio)
from repro.util import format_table

world = SyntheticWorld(n_countries=80, n_years=3, seed=7)

for name in ("trade", "migration", "country_space"):
    table = world.network(name, 0)
    years = world.years(name)
    y, X, _, src, dst = network_design(world, name)
    budget = int(0.15 * table.m)

    rows = []
    for method in paper_methods():
        try:
            if method.parameter_free:
                backbone = method.extract(table)
            else:
                backbone = method.extract(table, n_edges=budget)
            mask = backbone_pair_mask(backbone, src, dst)
            quality = quality_ratio(y, X, mask).ratio
            rows.append([method.code, backbone.m,
                         coverage(table, backbone), quality,
                         average_stability(years, backbone)])
        except (SinkhornConvergenceError, ValueError) as error:
            rows.append([method.code, None, None, None, None])
            print(f"  ({method.code} not applicable on {name}: {error})")

    print(format_table(
        ["method", "edges", "coverage", "quality", "stability"], rows,
        title=f"\n=== {name} "
              f"({'directed' if table.directed else 'undirected'}, "
              f"{table.m} edges, budget {budget}) ==="))
