"""Noise recovery: the paper's Fig. 4 synthetic benchmark, hands-on.

Plants a Barabási–Albert backbone, buries it under increasing noise and
watches each method try to dig it back out at a fixed edge budget.

Run:  python examples/noise_recovery.py
"""

from repro import add_noise, barabasi_albert, paper_methods, recovery_jaccard
from repro.backbones import SinkhornConvergenceError
from repro.util import format_table

truth = barabasi_albert(150, 1.5, seed=1)
print(f"planted BA network: {truth.n_nodes} nodes, {truth.m} edges "
      f"(avg degree {truth.degree().mean():.2f})")

rows = []
for eta in (0.0, 0.1, 0.2, 0.3):
    noisy = add_noise(truth, eta, seed=2)
    row = [eta]
    for method in paper_methods():
        try:
            row.append(recovery_jaccard(noisy, method))
        except SinkhornConvergenceError:
            row.append(None)
    rows.append(row)

codes = [method.code for method in paper_methods()]
print()
print(format_table(["eta"] + codes, rows,
                   title="Jaccard recovery of the planted edge set "
                         "(1.0 = perfect)"))
print("\nAs eta grows the noise and signal distributions overlap; the "
      "Noise-Corrected backbone degrades the most gracefully (paper "
      "Fig. 4).")
