"""Edge significance: confidence intervals and edge-vs-edge tests.

Beyond pruning, the NC framework attaches a standard deviation to every
edge score (paper Section I), enabling questions the other backbones
cannot answer: *is this connection significantly stronger than that
one?* This example asks exactly that on a synthetic trade network.

Run:  python examples/edge_significance.py
"""

import numpy as np

from repro import NoiseCorrectedBackbone, SyntheticWorld, compare_edges
from repro.core import confidence_intervals

world = SyntheticWorld(n_countries=60, seed=3)
trade = world.network("trade", 0)
scored = NoiseCorrectedBackbone().score(trade)

# 95% confidence intervals for the five most salient edges.
lower, upper = confidence_intervals(scored, level=0.95)
top = np.argsort(-scored.score)[:5]
print("top-5 edges by NC score, with 95% confidence intervals:")
for row in top:
    u, v = scored.table.src[row], scored.table.dst[row]
    print(f"  {scored.table.label_of(u)} -> {scored.table.label_of(v)}"
          f"  score={scored.score[row]:+.4f}"
          f"  CI=[{lower[row]:+.4f}, {upper[row]:+.4f}]")

# Are the #1 and #2 edges significantly different? And #1 vs #1000?
first, second = int(top[0]), int(top[1])
comparison = compare_edges(scored, first, second)
print(f"\n#1 vs #2: difference={comparison.difference:+.4f}, "
      f"z={comparison.z_statistic:.2f}, p={comparison.p_value:.3f} -> "
      f"{'different' if comparison.significant() else 'not distinguishable'}")

middling = int(np.argsort(-scored.score)[1000])
comparison = compare_edges(scored, first, middling)
print(f"#1 vs #1000: difference={comparison.difference:+.4f}, "
      f"z={comparison.z_statistic:.2f}, p={comparison.p_value:.2e} -> "
      f"{'different' if comparison.significant() else 'not distinguishable'}")

print("\nThis is the capability the p-value variant (footnote 2) gives "
      "up: without standard deviations there is no edge-vs-edge test.")
