"""The backbone daemon end to end: serve, coalesce, degrade, recover.

Starts a real ``repro.serve.BackboneDaemon`` on a free port, then
walks the service story of ISSUE 6:

1. concurrent clients request eight NC strictnesses over one file and
   the daemon's admission window coalesces them into a single scoring
   pass (the shared store proves it: one miss, one put);
2. a warm repeat of the same requests is served from cache;
3. the cache backend is taken down mid-session — the daemon degrades
   to memory-only operation, flags it in every response, and recovers
   when the backend comes back;
4. a malformed request fails its slot while its batchmates are served;
5. the daemon shuts down gracefully over HTTP.

Run:  python examples/serve_daemon.py
"""

import tempfile
import threading
from pathlib import Path

from repro import flow
from repro.generators import erdos_renyi_gnm
from repro.graph.ingest import write_edges
from repro.pipeline import ScoreStore
from repro.pipeline.backends import InMemoryKVServer, KVBackend
from repro.serve import BackboneDaemon, ServeClient
from repro.serve.faults import FlakyBackend

DELTAS = (0.5, 1.0, 1.28, 1.64, 2.0, 2.32, 3.0, 4.0)

# A noisy network on disk, and a store whose backend we can sabotage.
network = erdos_renyi_gnm(n_nodes=80, n_edges=600, seed=3)
path = Path(tempfile.mkdtemp()) / "edges.csv"
write_edges(network, path)
flaky = FlakyBackend(KVBackend(InMemoryKVServer()))
store = ScoreStore(backend=flaky)

daemon = BackboneDaemon(port=0, store=store, batch_window=0.1).start()
client = ServeClient(port=daemon.port)
print(f"daemon up on port {daemon.port} "
      f"(healthy: {client.healthy()})")

# --- 1. Eight concurrent clients, one scoring pass.
replies = [None] * len(DELTAS)


def one_client(index, delta):
    plan = flow(path, directed=False).method("nc", delta=delta)
    replies[index] = ServeClient(port=daemon.port) \
        .run([plan.to_json()])


threads = [threading.Thread(target=one_client, args=(i, d))
           for i, d in enumerate(DELTAS)]
for thread in threads:
    thread.start()
for thread in threads:
    thread.join()

kept = [r["results"][0]["backbone"]["m"] for r in replies]
print(f"\ncoalesced batch: {len(DELTAS)} clients, kept edges {kept}")
print(f"scoring passes (store puts): {store.stats.puts}")

# --- 2. Warm repeat: served from cache.
warm = client.run([flow(path, directed=False)
                   .method("nc", delta=1.64).to_json()])
print(f"warm repeat ok: {warm['results'][0]['ok']} "
      f"(store hits now {store.stats.hits})")

# --- 3. Backend outage: degrade, flag, recover.
flaky.outage()
degraded = client.run([flow(path, directed=False)
                       .method("df").budget(share=0.1).to_json()])
print(f"\nbackend down -> served anyway: "
      f"{degraded['results'][0]['ok']}, "
      f"response degraded flag: {degraded['degraded']}")
flaky.restore()
print(f"backend restored; probe clears the flag: "
      f"{store.probe_backend()}")

# --- 4. One bad plan does not poison the batch.
good = flow(path, directed=False).method("nc", delta=1.0)
mixed = client.run([{"not": "a plan"}, good.to_json()])
slot_bad, slot_good = mixed["results"]
print(f"\nmixed batch: bad slot error={slot_bad['error']['type']}, "
      f"good slot ok={slot_good['ok']}")

# --- 5. Graceful shutdown over the wire.
print(f"\nshutdown acknowledged: {client.shutdown()}")
daemon._stopped.wait(timeout=5.0)
print(f"daemon stopped (healthy now: {client.healthy()})")
